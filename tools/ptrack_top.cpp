// ptrack_top: live watcher for a running ptrack_serve. Polls the admin
// plane's /metrics.json and /sessions endpoints, computes windowed rates
// and histogram percentiles between consecutive polls (obs::delta) and
// redraws a compact dashboard — top(1) for step-tracking ingest, with no
// curses dependency (plain ANSI clear + reprint).
//
// Usage:
//   ptrack_top --uds /tmp/ptrack-admin.sock
//   ptrack_top --host 127.0.0.1 --port 7441 --interval 1
//   ptrack_top --uds ... --once        # one snapshot, no screen control
//   ptrack_top --uds ... --raw         # dump /metrics.json verbatim
//
// Exit status: 0 after --count polls (or SIGINT in a terminal), 1 when the
// admin endpoint cannot be reached on a --once/--raw poll or on three
// consecutive refresh failures (the server is gone, not just busy).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"
#include "obs/export.hpp"

using namespace ptrack;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One fetched-and-parsed poll of the admin plane.
struct Poll {
  obs::Snapshot snapshot;
  json::Value sessions;  ///< ptrack.sessions.v1 document (Null if absent)
};

bool fetch(const net::Endpoint& ep, Poll& out, std::string& error) {
  const net::HttpGetResult metrics = net::http_get(ep, "/metrics.json");
  if (!metrics.ok || metrics.status != 200) {
    error = metrics.ok ? "/metrics.json returned HTTP " +
                             std::to_string(metrics.status)
                       : metrics.error;
    return false;
  }
  const net::HttpGetResult sessions = net::http_get(ep, "/sessions");
  if (!sessions.ok || sessions.status != 200) {
    error = sessions.ok ? "/sessions returned HTTP " +
                              std::to_string(sessions.status)
                        : sessions.error;
    return false;
  }
  try {
    out.snapshot = obs::Snapshot::from_json(json::parse(metrics.body),
                                            now_s());
    out.sessions = json::parse(sessions.body);
  } catch (const Error& e) {
    error = e.what();
    return false;
  }
  return true;
}

double rate_of(const obs::SnapshotDelta& d, const std::string& name) {
  const auto it = d.counter_rates.find(name);
  return it == d.counter_rates.end() ? 0.0 : it->second;
}

std::uint64_t counter_of(const obs::Snapshot& s, const std::string& name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

double num_or(const json::Value& obj, const std::string& key, double fb) {
  return obj.is_object() && obj.contains(key) ? obj.at(key).as_number() : fb;
}

void render(const Poll& poll, const obs::SnapshotDelta& d, bool first) {
  const json::Value& doc = poll.sessions;
  std::printf("ptrack_top — up %.0fs%s   interval %.1fs%s\n",
              num_or(doc, "uptime_s", 0.0),
              doc.is_object() && doc.contains("draining") &&
                      doc.at("draining").as_bool()
                  ? " [DRAINING]"
                  : "",
              d.interval_s, first ? " (first poll: totals only)" : "");
  if (doc.is_object() && doc.contains("server")) {
    const json::Value& s = doc.at("server");
    std::printf(
        "sessions %-5.0f accepted %-8.0f shed %-5.0f evicted %-5.0f "
        "errors %-5.0f mem %.1f MiB\n",
        num_or(s, "sessions_active", 0.0), num_or(s, "accepted", 0.0),
        num_or(s, "shed", 0.0),
        num_or(s, "evicted_idle", 0.0) + num_or(s, "evicted_stall", 0.0) +
            num_or(s, "evicted_slow", 0.0),
        num_or(s, "session_errors", 0.0),
        num_or(s, "memory_charged_bytes", 0.0) / (1024.0 * 1024.0));
  }
  if (first) {
    std::printf(
        "totals   samples %llu   events %llu   bytes_in %llu   "
        "frames_ok %llu\n",
        static_cast<unsigned long long>(
            counter_of(poll.snapshot, "ptrack.net.samples.in")),
        static_cast<unsigned long long>(
            counter_of(poll.snapshot, "ptrack.net.events.out")),
        static_cast<unsigned long long>(
            counter_of(poll.snapshot, "ptrack.net.bytes.in")),
        static_cast<unsigned long long>(
            counter_of(poll.snapshot, "ptrack.net.frames.ok")));
  } else {
    std::printf(
        "rates    samples/s %-10.1f events/s %-8.1f bytes_in/s %-10.0f "
        "frames/s %-8.1f scrapes/s %.1f\n",
        rate_of(d, "ptrack.net.samples.in"),
        rate_of(d, "ptrack.net.events.out"),
        rate_of(d, "ptrack.net.bytes.in"),
        rate_of(d, "ptrack.net.frames.ok"),
        rate_of(d, "ptrack.net.admin.requests"));
    for (const auto& [name, h] : d.histograms) {
      if (h.count == 0) continue;
      std::printf(
          "hist     %-32s n %-7llu p50 %-9.0f p90 %-9.0f p99 %.0f\n",
          name.c_str(), static_cast<unsigned long long>(h.count), h.p50,
          h.p90, h.p99);
    }
  }
  if (!doc.is_object() || !doc.contains("sessions")) return;
  const std::vector<json::Value>& rows = doc.at("sessions").items();
  std::printf(
      "\n%6s %-11s %6s %7s %10s %8s %8s %8s %3s %6s %8s\n", "id", "state",
      "fs", "up_s", "samples", "events", "lag_B", "queue_B", "bp", "degr",
      "dist_m");
  for (const json::Value& r : rows) {
    std::printf(
        "%6.0f %-11s %6.0f %7.1f %10.0f %8.0f %8.0f %8.0f %3s %6.3f "
        "%8.2f\n",
        num_or(r, "id", 0.0), r.at("state").as_string().c_str(),
        num_or(r, "fs", 0.0), num_or(r, "uptime_s", 0.0),
        num_or(r, "samples", 0.0), num_or(r, "events", 0.0),
        num_or(r, "out_pending_bytes", 0.0),
        num_or(r, "queue_depth_bytes", 0.0),
        r.contains("backpressured") && r.at("backpressured").as_bool()
            ? "yes"
            : "no",
        num_or(r, "degraded_fraction", 0.0), num_or(r, "distance_m", 0.0));
  }
}

int run(const cli::Args& args) {
  net::Endpoint ep = net::Endpoint::uds("");
  if (args.has("uds")) {
    ep = net::Endpoint::uds(args.get_string("uds"));
  } else if (args.has("port")) {
    const long port = args.get_int("port");
    if (port < 0 || port > 65535) {
      std::cerr << "ptrack_top: --port out of range\n";
      return 2;
    }
    ep = net::Endpoint::tcp(args.get_string("host"),
                            static_cast<std::uint16_t>(port));
  } else {
    std::cerr << "ptrack_top: need --uds or --port\n";
    return 2;
  }

  if (args.get_bool("raw")) {
    const net::HttpGetResult r = net::http_get(ep, "/metrics.json");
    if (!r.ok || r.status != 200) {
      std::cerr << "ptrack_top: " << (r.ok ? "HTTP " + std::to_string(r.status)
                                           : r.error)
                << "\n";
      return 1;
    }
    std::cout << r.body;
    return 0;
  }

  const bool once = args.get_bool("once");
  const double interval = args.get_double("interval");
  const long count = once ? 1 : args.get_int("count");
  if (interval <= 0.0 && !once) {
    std::cerr << "ptrack_top: --interval must be positive\n";
    return 2;
  }

  obs::Snapshot prev;
  bool have_prev = false;
  int consecutive_failures = 0;
  for (long i = 0; count == 0 || i < count; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
    Poll poll;
    std::string error;
    if (!fetch(ep, poll, error)) {
      std::cerr << "ptrack_top: " << error << "\n";
      if (once || ++consecutive_failures >= 3) return 1;
      continue;
    }
    consecutive_failures = 0;
    const obs::SnapshotDelta d =
        have_prev ? obs::delta(prev, poll.snapshot) : obs::SnapshotDelta{};
    if (!once) std::fputs("\x1b[H\x1b[2J", stdout);
    render(poll, d, !have_prev);
    std::fflush(stdout);
    prev = poll.snapshot;
    have_prev = true;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<cli::OptionSpec> specs = {
      {"uds", "admin-plane Unix domain socket path", "", false},
      {"host", "admin-plane TCP host", "127.0.0.1", false},
      {"port", "admin-plane TCP port", "", false},
      {"interval", "seconds between polls", "2", false},
      {"count", "number of polls (0 = until interrupted)", "0", false},
      {"once", "poll once, print without screen control, exit", "", true},
      {"raw", "dump the /metrics.json document verbatim and exit", "", true},
  };
  try {
    const cli::Args args(argc, argv, specs);
    if (args.help_requested()) {
      std::cout << args.usage("ptrack_top");
      return 0;
    }
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "ptrack_top: " << e.what() << "\n";
    return 1;
  }
}
