#include <iostream>
#include "bench_util.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"
using namespace ptrack;
int main() {
  Rng rng(999);
  for (auto& user : bench::make_users(3)) {
    auto r = synth::synthesize(synth::Scenario{}.run(60.0), user, bench::standard_options(), rng);
    core::PTrackConfig cfg; cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
    cfg.counter.min_step_interval_s = 0.25;  // run-tuned refractory
    core::PTrack pt(cfg);
    auto res = pt.process(r.trace);
    std::cout << "truth=" << r.truth.step_count() << " counted=" << res.steps
              << " dist_true=" << r.truth.total_distance() << " dist=" << res.distance() << "\n";
  }
}
