#!/usr/bin/env bash
# clang-tidy driver over the exported compile database.
#
# Usage:
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir defaults to $PTRACK_BUILD_DIR, then ./build. It must have
# been configured by this repo's CMakeLists (compile_commands.json export is
# always on). Checks come from the committed .clang-tidy; any finding is an
# error (WarningsAsErrors: '*'), so exit 0 == zero violations.
#
# When no clang-tidy binary is available (e.g. a gcc-only container) the
# gate reports SKIPPED and exits 0: the warnings-as-errors build and the
# sanitizer jobs still run, and CI provides the tidy toolchain.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${PTRACK_BUILD_DIR:-${repo_root}/build}"
if [[ $# -ge 1 && "$1" != "--" ]]; then
  build_dir="$1"
  shift
fi
if [[ "${1:-}" == "--" ]]; then
  shift
fi

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-{21,20,19,18,17,16,15}; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_tidy: SKIPPED — no clang-tidy binary found (set CLANG_TIDY or" \
       "install clang-tidy); 0 violations reported" >&2
  exit 0
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "run_tidy: ${db} not found — configure first:" >&2
  echo "  cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 2
fi

# First-party translation units only: third-party and generated code are
# not ours to lint.
mapfile -t sources < <(
  cd "${repo_root}" &&
  find src apps bench tools fuzz examples -name '*.cpp' | sort
)

echo "run_tidy: ${tidy_bin} over ${#sources[@]} files (database: ${db})"
status=0
"${tidy_bin}" -p "${build_dir}" --quiet "$@" \
  "${sources[@]/#/${repo_root}/}" || status=$?

if [[ ${status} -eq 0 ]]; then
  echo "run_tidy: zero violations"
else
  echo "run_tidy: violations found (exit ${status})" >&2
fi
exit ${status}
