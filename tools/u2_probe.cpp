#include <iostream>
#include "bench_util.hpp"
#include "core/ptrack.hpp"
#include "nav/route.hpp"
#include "synth/synthesizer.hpp"
using namespace ptrack;
int main() {
  const nav::Route route = nav::shopping_center_route();
  auto users = bench::make_users(3);
  Rng rng(bench::kBenchSeed ^ 0x99);
  for (size_t u = 0; u < 3; ++u) {
    auto& user = users[u];
    synth::Scenario sc;
    for (size_t leg = 0; leg < route.legs(); ++leg)
      sc.walk(route.leg_length(leg) / user.speed, 0.0, route.leg_heading(leg));
    auto r = synth::synthesize(sc, user, bench::standard_options(), rng);
    if (u != 1) continue;
    core::PTrackConfig cfg;
    cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
    cfg.counter.anterior_window_s = 10.0;
    core::PTrack pt(cfg);
    auto res = pt.process(r.trace);
    int w=0,s=0,i=0; for (auto& c : res.cycles){ if(c.type==core::GaitType::Walking)w++; else if(c.type==core::GaitType::Stepping)s++; else i++; }
    std::cout << "user2: swing=" << user.swing_amplitude << " cad=" << user.cadence
              << " truth=" << r.truth.step_count() << " counted=" << res.steps
              << " W/S/I=" << w << "/" << s << "/" << i << "\n";
    // where are interference cycles / gaps?
    size_t covered = 0;
    for (auto& c : res.cycles) covered += c.end - c.begin;
    std::cout << "samples covered by candidates: " << covered << " / " << r.trace.size() << "\n";
    // mean stride of events vs truth
    double acc=0; for (auto& e : res.events) acc += e.stride;
    std::cout << "mean stride est="
              << (res.events.empty()
                      ? 0.0
                      : acc / static_cast<double>(res.events.size()))
              << " truth=" << user.mean_stride() << "\n";
  }
}
