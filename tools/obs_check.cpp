// obs_check — CI validator for the observability outputs of ptrack_cli.
//
//   obs_check --metrics m.json [--trace t.json] [--allow-empty] [--net]
//
// Metrics snapshot checks:
//   - the file parses with common/json and carries schema
//     "ptrack.metrics.v1" plus the obs_compiled marker;
//   - every metric name matches the ptrack.<layer>.<name> scheme;
//   - unless --allow-empty (or obs_compiled=false), the counters every
//     batch run must touch (load, quality, process, projection,
//     segmentation, critical points, stride, batch bookkeeping) are present
//     and non-zero, at least one gait decision was recorded, and the batch
//     latency histograms saw at least one observation;
//   - with --net the required set switches to the ptrack.net.* ingest
//     counters ptrack_serve drives (sessions accepted/closed, bytes in/out,
//     the active-sessions gauge, the queue-depth histogram) — the serve
//     smoke job's variant of the same gate.
//
// Chrome trace checks:
//   - the file parses and has the trace_event envelope;
//   - every event carries name/ph/ts/tid with ph one of "B"/"E";
//   - per tid the B/E events nest like balanced parentheses (matching
//     names), with nothing left open — the invariant the exporter's
//     re-balancing promises;
//   - unless --allow-empty, at least one "ptrack.core.process" span is present.
//
// Exit code 0 when everything holds, 1 with a message on the first
// violation — cheap enough to run on every CI batch smoke.

#include <cstddef>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

using namespace ptrack;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("obs_check: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Same scheme Registry enforces: ptrack.<layer>.<name>, lowercase
/// [a-z0-9_] segments, at least three of them.
bool valid_name(const std::string& name) {
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  ++segments;
  return segments >= 3 && name.rfind("ptrack.", 0) == 0;
}

/// Counters a batch run over at least one loadable trace always drives.
const std::vector<std::string>& required_counters() {
  static const std::vector<std::string> k = {
      "ptrack.imu.load.traces",
      "ptrack.imu.quality.traces",
      "ptrack.core.traces",
      "ptrack.core.projections",
      "ptrack.core.cycles",
      "ptrack.core.critical_points.calls",
      "ptrack.core.stride.estimates",
      "ptrack.runtime.batch.runs",
      "ptrack.runtime.batch.traces_ok",
  };
  return k;
}

/// Counters a ptrack_serve run that served at least one complete healthy
/// session always drives (shed/evicted/errors legitimately stay zero).
const std::vector<std::string>& required_net_counters() {
  static const std::vector<std::string> k = {
      "ptrack.net.sessions.accepted",
      "ptrack.net.sessions.closed",
      "ptrack.net.bytes.in",
      "ptrack.net.bytes.out",
  };
  return k;
}

int check_metrics(const std::string& path, bool allow_empty, bool net) {
  const json::Value doc = json::parse(slurp(path));
  if (doc.at("schema").as_string() != "ptrack.metrics.v1") {
    std::cerr << "obs_check: " << path << ": unexpected schema\n";
    return 1;
  }
  const bool compiled = doc.at("obs_compiled").as_bool();
  const json::Value& metrics = doc.at("metrics");
  const auto& counters = metrics.at("counters").members();
  const auto& gauges = metrics.at("gauges").members();
  const auto& histograms = metrics.at("histograms").members();

  for (const auto* group : {&counters, &gauges, &histograms}) {
    for (const auto& [name, value] : *group) {
      static_cast<void>(value);
      if (!valid_name(name)) {
        std::cerr << "obs_check: " << path << ": bad metric name '" << name
                  << "'\n";
        return 1;
      }
    }
  }
  for (const auto& [name, h] : histograms) {
    // Internal consistency: bucket counts sum to the total count.
    double bucket_sum = h.at("overflow").as_number();
    for (const json::Value& b : h.at("buckets").items()) {
      bucket_sum += b.at("count").as_number();
    }
    if (bucket_sum != h.at("count").as_number()) {
      std::cerr << "obs_check: " << path << ": histogram '" << name
                << "' buckets do not sum to count\n";
      return 1;
    }
  }

  if (allow_empty || !compiled) {
    std::cout << "obs_check: " << path << ": structure OK ("
              << counters.size() << " counters)\n";
    return 0;
  }

  if (net) {
    for (const std::string& name : required_net_counters()) {
      const auto it = counters.find(name);
      if (it == counters.end() || it->second.as_number() <= 0.0) {
        std::cerr << "obs_check: " << path << ": required counter '" << name
                  << "' missing or zero\n";
        return 1;
      }
    }
    if (gauges.find("ptrack.net.sessions.active") == gauges.end()) {
      std::cerr << "obs_check: " << path
                << ": gauge 'ptrack.net.sessions.active' missing\n";
      return 1;
    }
    const auto it = histograms.find("ptrack.net.queue.depth_bytes");
    if (it == histograms.end() ||
        it->second.at("count").as_number() <= 0.0) {
      std::cerr << "obs_check: " << path
                << ": histogram 'ptrack.net.queue.depth_bytes' missing or "
                   "empty\n";
      return 1;
    }
    std::cout << "obs_check: " << path << ": net OK (" << counters.size()
              << " counters, " << gauges.size() << " gauges, "
              << histograms.size() << " histograms)\n";
    return 0;
  }

  for (const std::string& name : required_counters()) {
    const auto it = counters.find(name);
    if (it == counters.end() || it->second.as_number() <= 0.0) {
      std::cerr << "obs_check: " << path << ": required counter '" << name
                << "' missing or zero\n";
      return 1;
    }
  }
  double gait = 0.0;
  for (const char* name : {"ptrack.core.gait.walking",
                           "ptrack.core.gait.stepping",
                           "ptrack.core.gait.interference"}) {
    const auto it = counters.find(name);
    if (it != counters.end()) gait += it->second.as_number();
  }
  if (gait <= 0.0) {
    std::cerr << "obs_check: " << path << ": no gait decisions recorded\n";
    return 1;
  }
  for (const char* name : {"ptrack.runtime.batch.exec_us",
                           "ptrack.runtime.batch.queue_wait_us"}) {
    const auto it = histograms.find(name);
    if (it == histograms.end() ||
        it->second.at("count").as_number() <= 0.0) {
      std::cerr << "obs_check: " << path << ": histogram '" << name
                << "' missing or empty\n";
      return 1;
    }
  }
  std::cout << "obs_check: " << path << ": OK (" << counters.size()
            << " counters, " << gauges.size() << " gauges, "
            << histograms.size() << " histograms)\n";
  return 0;
}

int check_trace(const std::string& path, bool allow_empty) {
  const json::Value doc = json::parse(slurp(path));
  const auto& events = doc.at("traceEvents").items();

  // Per-thread span stacks: B pushes, E must match the top's name.
  std::map<double, std::vector<std::string>> stacks;
  std::size_t spans = 0;
  bool saw_process = false;
  for (const json::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    const std::string& name = e.at("name").as_string();
    const double ts = e.at("ts").as_number();
    const double tid = e.at("tid").as_number();
    if (ph != "B" && ph != "E") {
      std::cerr << "obs_check: " << path << ": unexpected phase '" << ph
                << "'\n";
      return 1;
    }
    if (ts < 0.0) {
      std::cerr << "obs_check: " << path << ": negative timestamp\n";
      return 1;
    }
    auto& stack = stacks[tid];
    if (ph == "B") {
      stack.push_back(name);
    } else {
      if (stack.empty() || stack.back() != name) {
        std::cerr << "obs_check: " << path << ": unbalanced span '" << name
                  << "' on tid " << tid << "\n";
        return 1;
      }
      stack.pop_back();
      ++spans;
      if (name == "ptrack.core.process") saw_process = true;
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) {
      std::cerr << "obs_check: " << path << ": tid " << tid << " left '"
                << stack.back() << "' open\n";
      return 1;
    }
  }
  if (!allow_empty && spans == 0) {
    std::cerr << "obs_check: " << path << ": no spans recorded\n";
    return 1;
  }
  if (!allow_empty && !saw_process) {
    std::cerr << "obs_check: " << path << ": no ptrack.core.process span\n";
    return 1;
  }
  std::cout << "obs_check: " << path << ": OK (" << spans
            << " balanced spans, " << stacks.size() << " threads)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(
        argc, argv,
        {{"metrics", "metrics snapshot JSON written by --metrics-out", "",
          false},
         {"trace", "Chrome trace JSON written by --trace-out", "", false},
         {"allow-empty",
          "only check structure, not that the pipeline counters are "
          "non-zero (for PTRACK_OBS=OFF builds)",
          "", true},
         {"net",
          "the metrics file comes from ptrack_serve: require the "
          "ptrack.net.* ingest counters instead of the batch pipeline set",
          "", true}});
    if (args.help_requested()) {
      std::cout << args.usage("obs_check");
      return 0;
    }
    const bool allow_empty = args.get_bool("allow-empty");
    if (!args.has("metrics") && !args.has("trace")) {
      std::cerr << "obs_check: pass --metrics and/or --trace\n";
      return 1;
    }
    int rc = 0;
    if (args.has("metrics")) {
      rc = check_metrics(args.get_string("metrics"), allow_empty,
                         args.get_bool("net"));
    }
    if (rc == 0 && args.has("trace")) {
      rc = check_trace(args.get_string("trace"), allow_empty);
    }
    return rc;
  } catch (const Error& e) {
    std::cerr << "obs_check: " << e.what() << "\n";
    return 1;
  }
}
