// obs_check — CI validator for the observability outputs of ptrack_cli
// and ptrack_serve.
//
//   obs_check --metrics m.json [--trace t.json] [--allow-empty] [--net|--sched]
//   obs_check --prom scrape.txt [--net]
//
// Metrics snapshot checks:
//   - the file parses with common/json and carries schema
//     "ptrack.metrics.v1" plus the obs_compiled marker;
//   - every metric name matches the ptrack.<layer>.<name> scheme;
//   - every histogram's exported bucket boundaries are strictly ascending
//     and its per-bucket counts (plus overflow) sum to its total count;
//   - unless --allow-empty (or obs_compiled=false), the counters every
//     batch run must touch (load, quality, process, projection,
//     segmentation, critical points, stride, batch bookkeeping) are present
//     and non-zero, at least one gait decision was recorded, and the batch
//     latency histograms saw at least one observation;
//   - with --net the required set switches to the ptrack.net.* ingest
//     counters ptrack_serve drives (sessions accepted/closed, bytes in/out,
//     the active-sessions gauge, the queue-depth histogram) — the serve
//     smoke job's variant of the same gate;
//   - with --sched it switches to the ptrack.runtime.sched.* set the
//     scheduler drives (per-lane submission counters, parks/wakeups/steals,
//     the worker and queue-depth gauges, non-empty per-lane queue-wait and
//     exec histograms) — the sched smoke job's variant, fed by
//     bench/sched_latency --metrics-out.
//
// Prometheus exposition checks (--prom, a live /metrics scrape):
//   - every sample name is ptrack_[a-z0-9_]* and its family carries a
//     preceding `# TYPE` of counter, gauge or histogram;
//   - every histogram family: `le` labels parse, ascend strictly and end
//     at +Inf, the cumulative bucket values are monotone non-decreasing,
//     `_sum` is present and `_count` equals the `+Inf` bucket — the
//     self-consistency a live scrape must keep even while writers run;
//   - with --net, ptrack_net_sessions_accepted and ptrack_net_bytes_in
//     must be positive (the serve smoke scrapes mid-storm).
//
// Chrome trace checks:
//   - the file parses and has the trace_event envelope;
//   - every event carries name/ph/ts/tid with ph one of "B"/"E";
//   - per tid the B/E events nest like balanced parentheses (matching
//     names), with nothing left open — the invariant the exporter's
//     re-balancing promises;
//   - unless --allow-empty, at least one "ptrack.core.process" span is present.
//
// Exit code 0 when everything holds, 1 with a message on the first
// violation — cheap enough to run on every CI batch smoke.

#include <cmath>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

using namespace ptrack;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("obs_check: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Same scheme Registry enforces: ptrack.<layer>.<name>, lowercase
/// [a-z0-9_] segments, at least three of them.
bool valid_name(const std::string& name) {
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    ++seg_len;
  }
  if (seg_len == 0) return false;
  ++segments;
  return segments >= 3 && name.rfind("ptrack.", 0) == 0;
}

/// Counters a batch run over at least one loadable trace always drives.
const std::vector<std::string>& required_counters() {
  static const std::vector<std::string> k = {
      "ptrack.imu.load.traces",
      "ptrack.imu.quality.traces",
      "ptrack.core.traces",
      "ptrack.core.projections",
      "ptrack.core.cycles",
      "ptrack.core.critical_points.calls",
      "ptrack.core.stride.estimates",
      "ptrack.runtime.batch.runs",
      "ptrack.runtime.batch.traces_ok",
  };
  return k;
}

/// Counters a ptrack_serve run that served at least one complete healthy
/// session always drives (shed/evicted/errors legitimately stay zero).
const std::vector<std::string>& required_net_counters() {
  static const std::vector<std::string> k = {
      "ptrack.net.sessions.accepted",
      "ptrack.net.sessions.closed",
      "ptrack.net.bytes.in",
      "ptrack.net.bytes.out",
  };
  return k;
}

/// Counters a sched_latency bench run always drives: hops on the latency
/// lane, batch claimers on the throughput lane, park/wake cycles between
/// measurement rounds, and the steal-probe phase's migrations (spills and
/// task_exceptions legitimately stay zero).
const std::vector<std::string>& required_sched_counters() {
  static const std::vector<std::string> k = {
      "ptrack.runtime.sched.submitted.latency",
      "ptrack.runtime.sched.submitted.throughput",
      "ptrack.runtime.sched.parks",
      "ptrack.runtime.sched.wakeups",
      "ptrack.runtime.sched.steals",
  };
  return k;
}

int check_sched_metrics(const std::string& path,
                        const std::map<std::string, json::Value>& counters,
                        const std::map<std::string, json::Value>& gauges,
                        const std::map<std::string, json::Value>& histograms) {
  for (const std::string& name : required_sched_counters()) {
    const auto it = counters.find(name);
    if (it == counters.end() || it->second.as_number() <= 0.0) {
      std::cerr << "obs_check: " << path << ": required counter '" << name
                << "' missing or zero\n";
      return 1;
    }
  }
  for (const char* name : {"ptrack.runtime.sched.workers",
                           "ptrack.runtime.sched.depth.latency",
                           "ptrack.runtime.sched.depth.throughput"}) {
    if (gauges.find(name) == gauges.end()) {
      std::cerr << "obs_check: " << path << ": gauge '" << name
                << "' missing\n";
      return 1;
    }
  }
  for (const char* name : {"ptrack.runtime.sched.latency.queue_wait_us",
                           "ptrack.runtime.sched.latency.exec_us",
                           "ptrack.runtime.sched.throughput.queue_wait_us",
                           "ptrack.runtime.sched.throughput.exec_us"}) {
    const auto it = histograms.find(name);
    if (it == histograms.end() ||
        it->second.at("count").as_number() <= 0.0) {
      std::cerr << "obs_check: " << path << ": histogram '" << name
                << "' missing or empty\n";
      return 1;
    }
  }
  std::cout << "obs_check: " << path << ": sched OK (" << counters.size()
            << " counters, " << gauges.size() << " gauges, "
            << histograms.size() << " histograms)\n";
  return 0;
}

int check_metrics(const std::string& path, bool allow_empty, bool net,
                  bool sched) {
  const json::Value doc = json::parse(slurp(path));
  if (doc.at("schema").as_string() != "ptrack.metrics.v1") {
    std::cerr << "obs_check: " << path << ": unexpected schema\n";
    return 1;
  }
  const bool compiled = doc.at("obs_compiled").as_bool();
  const json::Value& metrics = doc.at("metrics");
  const auto& counters = metrics.at("counters").members();
  const auto& gauges = metrics.at("gauges").members();
  const auto& histograms = metrics.at("histograms").members();

  for (const auto* group : {&counters, &gauges, &histograms}) {
    for (const auto& [name, value] : *group) {
      static_cast<void>(value);
      if (!valid_name(name)) {
        std::cerr << "obs_check: " << path << ": bad metric name '" << name
                  << "'\n";
        return 1;
      }
    }
  }
  for (const auto& [name, h] : histograms) {
    // Exported boundaries must be strictly ascending — the quantile code
    // and every scraper assume it.
    bool first_bound = true;
    double prev_bound = 0.0;
    for (const json::Value& b : h.at("buckets").items()) {
      const double le = b.at("le").as_number();
      if (!first_bound && le <= prev_bound) {
        std::cerr << "obs_check: " << path << ": histogram '" << name
                  << "' bucket boundaries not strictly ascending\n";
        return 1;
      }
      first_bound = false;
      prev_bound = le;
    }
    // Internal consistency: bucket counts sum to the total count.
    double bucket_sum = h.at("overflow").as_number();
    for (const json::Value& b : h.at("buckets").items()) {
      bucket_sum += b.at("count").as_number();
    }
    if (bucket_sum != h.at("count").as_number()) {
      std::cerr << "obs_check: " << path << ": histogram '" << name
                << "' buckets do not sum to count\n";
      return 1;
    }
  }

  if (allow_empty || !compiled) {
    std::cout << "obs_check: " << path << ": structure OK ("
              << counters.size() << " counters)\n";
    return 0;
  }

  if (sched) return check_sched_metrics(path, counters, gauges, histograms);

  if (net) {
    for (const std::string& name : required_net_counters()) {
      const auto it = counters.find(name);
      if (it == counters.end() || it->second.as_number() <= 0.0) {
        std::cerr << "obs_check: " << path << ": required counter '" << name
                  << "' missing or zero\n";
        return 1;
      }
    }
    if (gauges.find("ptrack.net.sessions.active") == gauges.end()) {
      std::cerr << "obs_check: " << path
                << ": gauge 'ptrack.net.sessions.active' missing\n";
      return 1;
    }
    const auto it = histograms.find("ptrack.net.queue.depth_bytes");
    if (it == histograms.end() ||
        it->second.at("count").as_number() <= 0.0) {
      std::cerr << "obs_check: " << path
                << ": histogram 'ptrack.net.queue.depth_bytes' missing or "
                   "empty\n";
      return 1;
    }
    std::cout << "obs_check: " << path << ": net OK (" << counters.size()
              << " counters, " << gauges.size() << " gauges, "
              << histograms.size() << " histograms)\n";
    return 0;
  }

  for (const std::string& name : required_counters()) {
    const auto it = counters.find(name);
    if (it == counters.end() || it->second.as_number() <= 0.0) {
      std::cerr << "obs_check: " << path << ": required counter '" << name
                << "' missing or zero\n";
      return 1;
    }
  }
  double gait = 0.0;
  for (const char* name : {"ptrack.core.gait.walking",
                           "ptrack.core.gait.stepping",
                           "ptrack.core.gait.interference"}) {
    const auto it = counters.find(name);
    if (it != counters.end()) gait += it->second.as_number();
  }
  if (gait <= 0.0) {
    std::cerr << "obs_check: " << path << ": no gait decisions recorded\n";
    return 1;
  }
  for (const char* name : {"ptrack.runtime.batch.exec_us",
                           "ptrack.runtime.batch.queue_wait_us"}) {
    const auto it = histograms.find(name);
    if (it == histograms.end() ||
        it->second.at("count").as_number() <= 0.0) {
      std::cerr << "obs_check: " << path << ": histogram '" << name
                << "' missing or empty\n";
      return 1;
    }
  }
  std::cout << "obs_check: " << path << ": OK (" << counters.size()
            << " counters, " << gauges.size() << " gauges, "
            << histograms.size() << " histograms)\n";
  return 0;
}

/// Prometheus metric-name charset (after the repo's `.` -> `_` mangling).
bool valid_prom_name(const std::string& name) {
  if (name.rfind("ptrack_", 0) != 0) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int check_prom(const std::string& path, bool net) {
  const std::string text = slurp(path);

  std::map<std::string, std::string> types;  ///< family -> TYPE
  struct HistSeries {
    std::vector<std::pair<double, double>> buckets;  ///< (le, cumulative)
    bool have_sum = false;
    bool have_count = false;
    double count = 0.0;
  };
  std::map<std::string, HistSeries> hists;
  std::map<std::string, double> scalars;

  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& why) {
    std::cerr << "obs_check: " << path << ":" << lineno << ": " << why
              << "\n";
    return 1;
  };
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream parts(line);
      std::string hash, kind, family, type;
      parts >> hash >> kind >> family >> type;
      if (kind != "TYPE") continue;  // HELP/comments are legal, ignored
      if (!valid_prom_name(family)) {
        return fail("bad family name '" + family + "' in TYPE line");
      }
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail("unexpected TYPE '" + type + "'");
      }
      if (!types.emplace(family, type).second) {
        return fail("duplicate TYPE for '" + family + "'");
      }
      continue;
    }

    // Sample: name[{labels}] value
    const std::size_t brace = line.find('{');
    std::string name, le_label;
    std::string value_text;
    if (brace != std::string::npos) {
      name = line.substr(0, brace);
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) return fail("unterminated label set");
      const std::string labels = line.substr(brace + 1, close - brace - 1);
      const std::string le_prefix = "le=\"";
      const std::size_t le_at = labels.find(le_prefix);
      if (le_at != std::string::npos) {
        const std::size_t le_end =
            labels.find('"', le_at + le_prefix.size());
        if (le_end == std::string::npos) return fail("unterminated le label");
        le_label = labels.substr(le_at + le_prefix.size(),
                                 le_end - le_at - le_prefix.size());
      }
      value_text = line.substr(close + 1);
    } else {
      const std::size_t sp = line.find(' ');
      if (sp == std::string::npos) return fail("sample line without value");
      name = line.substr(0, sp);
      value_text = line.substr(sp);
    }
    if (!valid_prom_name(name)) {
      return fail("bad sample name '" + name + "'");
    }
    double value = 0.0;
    try {
      value = std::stod(value_text);
    } catch (const std::exception&) {
      return fail("unparseable value for '" + name + "'");
    }

    // Histogram component or scalar? Resolve via the declared TYPEs.
    bool handled = false;
    for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (!ends_with(name, suffix)) continue;
      const std::string family =
          name.substr(0, name.size() - suffix.size());
      const auto t = types.find(family);
      if (t == types.end() || t->second != "histogram") continue;
      HistSeries& h = hists[family];
      if (suffix == "_bucket") {
        if (le_label.empty()) return fail("'" + name + "' without le");
        const double le = le_label == "+Inf"
                              ? std::numeric_limits<double>::infinity()
                              : std::stod(le_label);
        h.buckets.emplace_back(le, value);
      } else if (suffix == "_sum") {
        h.have_sum = true;
      } else {
        h.have_count = true;
        h.count = value;
      }
      handled = true;
      break;
    }
    if (handled) continue;
    const auto t = types.find(name);
    if (t == types.end()) {
      return fail("sample '" + name + "' has no preceding TYPE");
    }
    if (t->second == "histogram") {
      return fail("bare sample for histogram family '" + name + "'");
    }
    scalars[name] = value;
  }

  for (const auto& [family, type] : types) {
    if (type != "histogram") {
      if (scalars.find(family) == scalars.end()) {
        std::cerr << "obs_check: " << path << ": TYPE '" << family
                  << "' declared but no sample followed\n";
        return 1;
      }
      continue;
    }
    const auto it = hists.find(family);
    if (it == hists.end() || it->second.buckets.empty()) {
      std::cerr << "obs_check: " << path << ": histogram '" << family
                << "' has no buckets\n";
      return 1;
    }
    const HistSeries& h = it->second;
    for (std::size_t i = 1; i < h.buckets.size(); ++i) {
      if (h.buckets[i].first <= h.buckets[i - 1].first) {
        std::cerr << "obs_check: " << path << ": histogram '" << family
                  << "' le labels not strictly ascending\n";
        return 1;
      }
      if (h.buckets[i].second < h.buckets[i - 1].second) {
        std::cerr << "obs_check: " << path << ": histogram '" << family
                  << "' cumulative buckets decrease\n";
        return 1;
      }
    }
    if (!std::isinf(h.buckets.back().first)) {
      std::cerr << "obs_check: " << path << ": histogram '" << family
                << "' does not end at le=\"+Inf\"\n";
      return 1;
    }
    if (!h.have_sum || !h.have_count) {
      std::cerr << "obs_check: " << path << ": histogram '" << family
                << "' missing _sum or _count\n";
      return 1;
    }
    if (h.count != h.buckets.back().second) {
      std::cerr << "obs_check: " << path << ": histogram '" << family
                << "' _count != +Inf bucket\n";
      return 1;
    }
  }

  if (net) {
    for (const char* name :
         {"ptrack_net_sessions_accepted", "ptrack_net_bytes_in"}) {
      const auto it = scalars.find(name);
      if (it == scalars.end() || it->second <= 0.0) {
        std::cerr << "obs_check: " << path << ": required sample '" << name
                  << "' missing or zero\n";
        return 1;
      }
    }
  }
  std::cout << "obs_check: " << path << ": prom OK (" << types.size()
            << " families, " << hists.size() << " histograms)\n";
  return 0;
}

int check_trace(const std::string& path, bool allow_empty) {
  const json::Value doc = json::parse(slurp(path));
  const auto& events = doc.at("traceEvents").items();

  // Per-thread span stacks: B pushes, E must match the top's name.
  std::map<double, std::vector<std::string>> stacks;
  std::size_t spans = 0;
  bool saw_process = false;
  for (const json::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    const std::string& name = e.at("name").as_string();
    const double ts = e.at("ts").as_number();
    const double tid = e.at("tid").as_number();
    if (ph != "B" && ph != "E") {
      std::cerr << "obs_check: " << path << ": unexpected phase '" << ph
                << "'\n";
      return 1;
    }
    if (ts < 0.0) {
      std::cerr << "obs_check: " << path << ": negative timestamp\n";
      return 1;
    }
    auto& stack = stacks[tid];
    if (ph == "B") {
      stack.push_back(name);
    } else {
      if (stack.empty() || stack.back() != name) {
        std::cerr << "obs_check: " << path << ": unbalanced span '" << name
                  << "' on tid " << tid << "\n";
        return 1;
      }
      stack.pop_back();
      ++spans;
      if (name == "ptrack.core.process") saw_process = true;
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) {
      std::cerr << "obs_check: " << path << ": tid " << tid << " left '"
                << stack.back() << "' open\n";
      return 1;
    }
  }
  if (!allow_empty && spans == 0) {
    std::cerr << "obs_check: " << path << ": no spans recorded\n";
    return 1;
  }
  if (!allow_empty && !saw_process) {
    std::cerr << "obs_check: " << path << ": no ptrack.core.process span\n";
    return 1;
  }
  std::cout << "obs_check: " << path << ": OK (" << spans
            << " balanced spans, " << stacks.size() << " threads)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(
        argc, argv,
        {{"metrics", "metrics snapshot JSON written by --metrics-out", "",
          false},
         {"trace", "Chrome trace JSON written by --trace-out", "", false},
         {"prom",
          "Prometheus text exposition scraped from the admin plane's "
          "/metrics",
          "", false},
         {"allow-empty",
          "only check structure, not that the pipeline counters are "
          "non-zero (for PTRACK_OBS=OFF builds)",
          "", true},
         {"net",
          "the metrics file comes from ptrack_serve: require the "
          "ptrack.net.* ingest counters instead of the batch pipeline set",
          "", true},
         {"sched",
          "the metrics file comes from bench/sched_latency: require the "
          "ptrack.runtime.sched.* scheduler counters, depth gauges and "
          "per-lane latency histograms instead of the batch pipeline set",
          "", true}});
    if (args.help_requested()) {
      std::cout << args.usage("obs_check");
      return 0;
    }
    const bool allow_empty = args.get_bool("allow-empty");
    if (!args.has("metrics") && !args.has("trace") && !args.has("prom")) {
      std::cerr << "obs_check: pass --metrics, --trace and/or --prom\n";
      return 1;
    }
    int rc = 0;
    if (args.has("metrics")) {
      rc = check_metrics(args.get_string("metrics"), allow_empty,
                         args.get_bool("net"), args.get_bool("sched"));
    }
    if (rc == 0 && args.has("prom")) {
      rc = check_prom(args.get_string("prom"), args.get_bool("net"));
    }
    if (rc == 0 && args.has("trace")) {
      rc = check_trace(args.get_string("trace"), allow_empty);
    }
    return rc;
  } catch (const Error& e) {
    std::cerr << "obs_check: " << e.what() << "\n";
    return 1;
  }
}
