#include <iostream>
#include "bench_util.hpp"
#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "models/montage.hpp"
#include "synth/synthesizer.hpp"
using namespace ptrack;
int main() {
  Rng rng(555);
  for (auto& user : bench::make_users(6)) {
    auto r = synth::synthesize(synth::Scenario::pure_walking(120), user, bench::standard_options(), rng);
    models::PeakCounter gfit(models::gfit_watch_config());
    models::MontageCounter mt;
    core::PTrack pt;
    auto res = pt.process(r.trace);
    int w=0,s=0,i=0;
    for (auto& c : res.cycles){ if(c.type==core::GaitType::Walking)w++; else if(c.type==core::GaitType::Stepping)s++; else i++; }
    std::cout << "truth=" << r.truth.step_count()
              << " gfit=" << gfit.count_steps(r.trace).count
              << " mtage=" << mt.count_steps(r.trace).count
              << " ptrack=" << res.steps << " (W/S/I=" << w << "/" << s << "/" << i << ")"
              << " cad=" << user.cadence << " speed=" << user.speed << " swing=" << user.swing_amplitude << "\n";
  }
}
