#include <iostream>
#include "bench_util.hpp"
#include "core/frontend.hpp"
#include "core/gait_id.hpp"
#include "core/segmentation.hpp"
#include "core/critical_points.hpp"
#include "synth/synthesizer.hpp"
using namespace ptrack;

int main() {
  core::StepCounterConfig cfg;
  Rng rng(42);
  auto user = bench::make_users(1)[0];
  for (auto kind : {synth::ActivityKind::Walking, synth::ActivityKind::Eating,
                    synth::ActivityKind::SwingOnly, synth::ActivityKind::Poker}) {
    synth::Scenario sc;
    if (kind == synth::ActivityKind::Walking) sc = synth::Scenario::pure_walking(30);
    else sc = synth::Scenario{}.activity(kind, 30, synth::Posture::Standing);
    auto r = synth::synthesize(sc, user, bench::standard_options(), rng);
    auto proj = core::project_trace(r.trace, cfg.lowpass_hz);
    auto cycles = core::segment_cycles(proj.vertical, proj.fs, cfg);
    std::cout << "=== " << to_string(kind) << " (" << cycles.size() << " cycles)\n";
    int shown = 0;
    for (auto& c : cycles) {
      size_t n = c.end - c.begin;
      if (n < 8) continue;
      std::span<const double> v(proj.vertical.data()+c.begin, n);
      std::span<const double> a(proj.anterior.data()+c.begin, n);
      core::CriticalPointOptions qo; qo.prominence_fraction = cfg.query_prominence;
      core::CriticalPointOptions mo; mo.prominence_fraction = cfg.match_prominence; mo.hysteresis_fraction = cfg.match_hysteresis;
      auto vp = core::critical_points(v, qo, false);
      auto ap = core::critical_points(a, mo, true);
      auto an = core::analyze_cycle(v, a, cfg);
      if (shown++ >= 4) break;
      std::cout << "n=" << n << " offset=" << an.offset << "  q:[";
      for (auto& p : vp) std::cout << p.index << (p.kind==core::CriticalKind::Maximum?"M ":"m ");
      std::cout << "]  m:[";
      for (auto& p : ap) std::cout << p.index << (p.kind==core::CriticalKind::Zero?"z ":(p.kind==core::CriticalKind::Maximum?"M ":"m "));
      std::cout << "]\n";
      // per-query distances
      std::cout << "   dist:";
      size_t prev=0;
      const double nd = static_cast<double>(n);
      for (auto& q : vp) {
        double best=nd;
        for (auto& mpt : ap) best = std::min(best, std::abs((double)mpt.index-(double)q.index));
        std::cout << " " << best << "(w=" << static_cast<double>(q.index-prev)/nd << ")";
        prev=q.index;
      }
      std::cout << "\n";
    }
  }
}
