#include <iostream>
#include "bench_util.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"
using namespace ptrack;
int main() {
  synth::UserProfile user;
  Rng rng(77);
  synth::Scenario day;
  day.walk(90.0).activity(synth::ActivityKind::Gaming, 120.0, synth::Posture::Seated)
     .activity(synth::ActivityKind::Eating, 120.0, synth::Posture::Seated)
     .step(60.0).activity(synth::ActivityKind::Photo, 60.0, synth::Posture::Standing).walk(90.0);
  auto r = synth::synthesize(day, user, rng);
  core::PTrack pt;
  auto res = pt.process(r.trace);
  for (auto& c : res.cycles) {
    double t = (double)c.begin / 100.0;
    if (t > 385 && t < 455 && c.type != core::GaitType::Interference)
      std::cout << "t=" << t << " type=" << to_string(c.type) << " offset=" << c.offset
                << " C=" << c.half_cycle_corr << " phase=" << c.phase_ok << "\n";
  }
}
