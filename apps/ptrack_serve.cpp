// ptrack_serve: long-running ingest daemon. Devices connect over TCP or a
// Unix domain socket, speak the PTrack wire protocol (net/wire.hpp) and
// stream IMU samples; the daemon multiplexes every connection onto an
// incremental core::StreamingTracker and streams finalized step events
// back. net/server.hpp documents the robustness policy (admission control,
// backpressure, eviction, fault isolation, graceful drain).
//
// Usage:
//   ptrack_serve --uds /tmp/ptrack.sock
//   ptrack_serve --tcp 7440 [--host 0.0.0.0]
//
// Lifecycle: the daemon prints one "listening on ..." line to stdout once
// every endpoint is bound (CI waits for it), then serves until SIGTERM or
// SIGINT. Both signals trigger a graceful drain: stop accepting, flush
// every live tracker's finalization margins as EVENT/DRAINED frames, then
// exit 0. A second signal is not needed — the drain deadline bounds the
// shutdown.
//
// Observability (DESIGN.md §17):
//   * --admin-uds / --admin-tcp bind the read-only HTTP admin plane
//     (GET /metrics, /metrics.json, /healthz, /readyz, /sessions) inside
//     the same reactor; tools/ptrack_top watches it live.
//   * --log-level SPEC sets structured-logging levels ("debug" or
//     "info,net=debug"); records are JSON lines on stderr.
//   * --metrics-out FILE writes a ptrack.metrics.v1 snapshot (the same
//     schema as ptrack_cli) after the drain, covering the ptrack.net.*
//     counters; tools/obs_check --net-metrics validates it. SIGUSR1 dumps
//     the same snapshot (plus buffered log records) on demand, without
//     draining the server.

#include <cstdint>
#include <cstdio>
#include <csignal>
#include <fcntl.h>
#include <fstream>
#include <iostream>
#include <string>
#include <unistd.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

using namespace ptrack;

namespace {

/// Write end of the signal self-pipe; the only state a handler touches.
volatile int g_signal_pipe_wr = -1;

extern "C" void on_shutdown_signal(int) {
  // async-signal-safe: one write(2), no locks, no allocation.
  const std::uint8_t byte = 1;
  if (g_signal_pipe_wr >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe_wr, &byte, 1);
  }
}

extern "C" void on_dump_signal(int) {
  // Byte 2 = dump request: the reactor invokes cfg.dump_hook, so the
  // snapshot is written on the reactor thread, not in the handler.
  const std::uint8_t byte = 2;
  if (g_signal_pipe_wr >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe_wr, &byte, 1);
  }
}

void write_metrics(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open " + path);
  obs::write_metrics_document(out);
}

int run(const cli::Args& args) {
  if (!obs::log::apply_level_spec(args.get_string("log-level"))) {
    std::cerr << "ptrack_serve: bad --log-level (want \"debug\" or "
                 "\"info,net=debug\")\n";
    return 2;
  }

  net::ServerConfig cfg;
  cfg.max_sessions = static_cast<std::size_t>(args.get_int("max-sessions"));
  cfg.memory_budget_bytes =
      static_cast<std::size_t>(args.get_int("memory-budget-mb")) << 20;
  cfg.idle_timeout_s = args.get_double("idle-timeout");
  cfg.stall_timeout_s = args.get_double("stall-timeout");
  cfg.drain_deadline_s = args.get_double("drain-deadline");
  cfg.session.streaming.hop_s = args.get_double("hop");
  cfg.session.allow_f32 = !args.get_bool("no-f32");

  // SIGUSR1 snapshot: runs on the reactor thread between poll iterations,
  // so it sees a consistent registry and may use streams freely.
  const std::string metrics_path =
      args.has("metrics-out") ? args.get_string("metrics-out") : "";
  cfg.dump_hook = [&metrics_path]() {
    if (metrics_path.empty()) {
      PTRACK_LOG_WARN("serve", "dump_skipped",
                      kv("reason", "no --metrics-out path"));
      return;
    }
    write_metrics(metrics_path);
    obs::log::drain();
    PTRACK_LOG_INFO("serve", "metrics_dumped",
                    kv("path", metrics_path.c_str()));
  };

  // Signal self-pipe: the handler writes one byte, the reactor's poll set
  // sees the read end become readable and starts the drain.
  int sig_pipe[2];
  if (::pipe(sig_pipe) != 0) {
    std::cerr << "ptrack_serve: cannot create the signal pipe\n";
    return 1;
  }
  for (const int fd : {sig_pipe[0], sig_pipe[1]}) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  g_signal_pipe_wr = sig_pipe[1];
  cfg.shutdown_fd = sig_pipe[0];

  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction sa_dump = {};
  sa_dump.sa_handler = on_dump_signal;
  ::sigemptyset(&sa_dump.sa_mask);
  ::sigaction(SIGUSR1, &sa_dump, nullptr);

  net::Server server(std::move(cfg));
  if (args.has("uds")) {
    server.listen(net::Endpoint::uds(args.get_string("uds")));
    std::cout << "ptrack_serve: listening on uds:" << args.get_string("uds")
              << "\n";
  }
  if (args.has("tcp")) {
    const long port = args.get_int("tcp");
    if (port < 0 || port > 65535) {
      std::cerr << "ptrack_serve: --tcp out of range\n";
      return 2;
    }
    server.listen(net::Endpoint::tcp(
        args.get_string("host"), static_cast<std::uint16_t>(port)));
    std::cout << "ptrack_serve: listening on tcp:" << args.get_string("host")
              << ":" << server.tcp_port() << "\n";
  }
  if (args.has("admin-uds")) {
    server.listen_admin(net::Endpoint::uds(args.get_string("admin-uds")));
    std::cout << "ptrack_serve: admin on uds:" << args.get_string("admin-uds")
              << "\n";
  }
  if (args.has("admin-tcp")) {
    const long port = args.get_int("admin-tcp");
    if (port < 0 || port > 65535) {
      std::cerr << "ptrack_serve: --admin-tcp out of range\n";
      return 2;
    }
    server.listen_admin(net::Endpoint::tcp(
        args.get_string("host"), static_cast<std::uint16_t>(port)));
    std::cout << "ptrack_serve: admin on tcp:" << args.get_string("host")
              << ":" << server.admin_tcp_port() << "\n";
  }
  std::cout.flush();

  server.run();  // returns after a completed drain (SIGTERM/SIGINT)

  if (!metrics_path.empty()) write_metrics(metrics_path);
  obs::log::drain();  // flush records buffered since the reactor exited

  if (!args.get_bool("quiet")) {
    const net::ServerStats s = server.stats();
    std::cout << "ptrack_serve: drained. accepted=" << s.accepted
              << " shed=" << s.shed << " closed=" << s.closed
              << " evicted=" << (s.evicted_idle + s.evicted_stall +
                                 s.evicted_slow)
              << " session_errors=" << s.session_errors
              << " frames_ok=" << s.frames_ok
              << " frames_rejected=" << s.frames_rejected
              << " samples=" << s.samples_in << " events=" << s.events_out
              << "\n";
  }
  g_signal_pipe_wr = -1;
  ::close(sig_pipe[0]);
  ::close(sig_pipe[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<cli::OptionSpec> specs = {
      {"uds", "listen on a Unix domain socket at this path", "", false},
      {"tcp", "listen on this TCP port (0 = ephemeral)", "", false},
      {"host", "TCP bind address", "127.0.0.1", false},
      {"max-sessions", "admission limit on concurrent sessions", "4096",
       false},
      {"memory-budget-mb", "global session-memory budget (MiB)", "512",
       false},
      {"idle-timeout", "evict after this many seconds without a complete "
                       "frame", "30", false},
      {"stall-timeout", "deadline (s) for a partial frame or an unfinished "
                        "HELLO", "10", false},
      {"drain-deadline", "graceful-shutdown flush budget (s)", "2", false},
      {"hop", "streaming hop interval (s)", "1", false},
      {"no-f32", "reject float32-precision HELLOs", "", true},
      {"admin-uds", "serve the HTTP admin plane on a Unix domain socket "
                    "at this path", "", false},
      {"admin-tcp", "serve the HTTP admin plane on this TCP port "
                    "(0 = ephemeral)", "", false},
      {"log-level", "structured-log levels: LEVEL or "
                    "LEVEL,subsys=LEVEL,...", "info", false},
      {"metrics-out", "write a metrics snapshot (JSON) here after the "
                      "drain (and on SIGUSR1)", "", false},
      {"quiet", "suppress the exit summary", "", true},
  };
  try {
    const cli::Args args(argc, argv, specs);
    if (args.help_requested()) {
      std::cout << args.usage("ptrack_serve");
      return 0;
    }
    if (!args.has("uds") && !args.has("tcp")) {
      std::cerr << "ptrack_serve: need --uds and/or --tcp\n"
                << args.usage("ptrack_serve");
      return 2;
    }
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "ptrack_serve: " << e.what() << "\n";
    return 1;
  }
}
