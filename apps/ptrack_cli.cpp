// ptrack_cli — run the PTrack pipeline over recorded traces.
//
// Single-trace mode:
//   ptrack_cli --input trace.csv --arm 0.72 --leg 0.93 [--json out.json]
//              [--events out.csv] [--self-train-distance 140]
//
// Streaming replay mode:
//   ptrack_cli --input trace.csv --streaming [--hop 2.0]
//
// --streaming replays the trace sample-by-sample through the incremental
// core::StreamingTracker (the smartwatch operating mode) instead of the
// batch facade: events print as they are confirmed, with their emission
// latency behind the simulated stream clock. Same events, same oracle —
// see DESIGN.md "Incremental pipeline architecture".
//
// Batch mode (cohort-scale processing):
//   ptrack_cli --batch traces_dir [--threads 4] [--json out.json] [--strict]
//
// --batch processes every .csv file in the directory (sorted by file name)
// through the multi-threaded runtime::BatchRunner and prints one summary
// line per trace; --threads picks the worker count (0 = one per hardware
// thread). Results are deterministic and independent of the thread count.
// With --json the per-trace summaries (name, steps, distance, quality) are
// written as a JSON object with "traces" and "errors" arrays.
//
// Fault isolation: a trace that fails to load (malformed CSV) or fails in
// the pipeline is skipped and reported; the rest of the batch completes.
// By default the exit code stays 0 and the failures are listed on stderr
// and in the JSON "errors" array. With --strict any per-trace failure
// makes the run exit 2 (after still processing everything), for pipelines
// that must not silently drop subjects.
//
// Observability (both modes): --metrics-out FILE writes a JSON snapshot of
// every pipeline counter/gauge/histogram; --trace-out FILE writes the
// recorded stage spans as Chrome trace_event JSON (open in chrome://tracing
// or Perfetto). With -DPTRACK_OBS=OFF both flags still work but produce
// empty documents. See DESIGN.md "Observability".
//
// The input is the CSV interchange format of imu::save_csv (header
// t,ax,ay,az,gx,gy,gz with a leading metadata row carrying the sample
// rate). With --self-train-distance the arm/leg options are ignored and
// the profile is learned from the trace itself (which must contain gait
// and is treated as a calibration walk of the given length in metres;
// single-trace mode only).

#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/ptrack.hpp"
#include "core/self_training.hpp"
#include "core/streaming.hpp"
#include "imu/trace_io.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/batch_runner.hpp"

using namespace ptrack;

namespace {

/// Writes the observability outputs requested on the command line: a
/// metrics snapshot (--metrics-out) and a Chrome trace_event document
/// (--trace-out). Called once, after all pipeline work has finished, so no
/// spans are open and the worker threads are quiescent.
void write_obs_outputs(const cli::Args& args) {
  if (args.has("metrics-out")) {
    const std::string path = args.get_string("metrics-out");
    std::ofstream out(path);
    if (!out) throw Error("cannot open " + path);
    obs::write_metrics_document(out);
  }
  if (args.has("trace-out")) {
    const std::string path = args.get_string("trace-out");
    std::ofstream out(path);
    if (!out) throw Error("cannot open " + path);
    obs::write_chrome_trace(out);
    out << '\n';
  }
}

/// Emits a TrackResult's per-stage wall-clock block (all zeros when the
/// observability layer is off). Telemetry, not payload: these are the one
/// run-dependent part of the batch JSON, excluded from the thread-count
/// determinism contract.
void write_timing(json::Writer& w, const core::StageTiming& t) {
  w.key("timing").begin_object();
  w.key("quality_us").value(t.quality_us);
  w.key("project_us").value(t.project_us);
  w.key("count_us").value(t.count_us);
  w.key("stride_us").value(t.stride_us);
  w.key("total_us").value(t.total_us);
  w.end_object();
}

int run_streaming(const cli::Args& args, const core::PTrackConfig& config,
                  const imu::Trace& trace) {
  core::StreamingConfig scfg;
  scfg.pipeline = config;
  scfg.hop_s = args.get_double("hop");
  core::StreamingTracker stream(trace.fs(), scfg);

  const bool quiet = args.get_bool("quiet");
  std::vector<core::StepEvent> events;
  const auto drain = [&](double now) {
    for (const core::StepEvent& e : stream.poll()) {
      if (!quiet) {
        std::cout << "t=" << e.t << " s  " << core::to_string(e.type)
                  << " step, stride " << e.stride << " m (latency "
                  << now - e.t << " s)\n";
      }
      events.push_back(e);
    }
  };
  // Replay sample-by-sample, polling once per simulated second.
  const auto poll_every = static_cast<std::size_t>(trace.fs());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    stream.push(trace[i]);
    if (poll_every > 0 && (i + 1) % poll_every == 0) {
      drain(static_cast<double>(i + 1) / trace.fs());
    }
  }
  for (const core::StepEvent& e : stream.finish()) events.push_back(e);

  const core::StreamingStats stats = stream.stats();
  if (!quiet) {
    std::cout << "streamed: " << trace.duration() << " s @ " << trace.fs()
              << " Hz, " << stats.windows_processed << " hops of "
              << scfg.hop_s << " s\n";
    std::cout << "steps:    " << stream.steps() << "\n";
    std::cout << "distance: " << stream.distance() << " m\n";
    if (stream.degraded_steps() > 0) {
      std::cout << "degraded: " << stream.degraded_steps() << " steps\n";
    }
  }

  if (args.has("events")) {
    std::vector<std::vector<double>> rows;
    rows.reserve(events.size());
    for (const core::StepEvent& e : events) {
      rows.push_back({e.t, e.stride,
                      static_cast<double>(static_cast<int>(e.type))});
    }
    csv::write(args.get_string("events"), {"t", "stride", "type"}, rows);
  }

  if (args.has("json")) {
    std::ofstream out(args.get_string("json"));
    if (!out) throw Error("cannot open " + args.get_string("json"));
    json::Writer w(out);
    w.begin_object();
    w.key("mode").value(std::string("streaming"));
    w.key("hop_s").value(scfg.hop_s);
    w.key("steps").value(stream.steps());
    w.key("distance_m").value(stream.distance());
    w.key("degraded_steps").value(stream.degraded_steps());
    w.key("hops").value(stats.windows_processed);
    w.key("events").begin_array();
    for (const core::StepEvent& e : events) {
      w.begin_object();
      w.key("t").value(e.t);
      w.key("stride").value(e.stride);
      w.key("type").value(std::string(core::to_string(e.type)));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    check(w.complete(), "ptrack_cli: complete JSON document");
    out << '\n';
  }
  write_obs_outputs(args);
  return 0;
}

int run_batch(const cli::Args& args, const core::PTrackConfig& config) {
  const std::string dir = args.get_string("batch");
  runtime::TraceDirListing listing = runtime::load_trace_dir(dir);
  if (listing.traces.empty() && listing.errors.empty()) {
    std::cerr << "ptrack_cli: no .csv traces in " << dir << "\n";
    write_obs_outputs(args);
    return 1;
  }

  std::vector<imu::Trace> traces;
  traces.reserve(listing.traces.size());
  for (const auto& nt : listing.traces) traces.push_back(nt.trace);

  runtime::BatchOptions opt;
  opt.threads = static_cast<std::size_t>(args.get_int("threads"));
  runtime::BatchRunner runner(config, opt);
  const auto results = runner.run(traces);

  // Collect every per-trace failure — load-stage errors keep the file name
  // BatchRunner never saw; process-stage errors get theirs attached here.
  std::vector<runtime::TraceError> errors = listing.errors;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].has_value()) continue;
    runtime::TraceError err = results[i].error();
    err.trace = listing.traces[i].name;
    errors.push_back(std::move(err));
  }

  if (!args.get_bool("quiet")) {
    std::cout << "batch:    " << listing.traces.size() << " traces, "
              << runner.threads() << " worker thread(s)\n";
    for (std::size_t i = 0; i < listing.traces.size(); ++i) {
      if (!results[i].has_value()) continue;
      const core::TrackResult& r = *results[i];
      std::cout << listing.traces[i].name << ": " << r.steps << " steps, "
                << r.distance() << " m";
      if (r.quality.degraded()) {
        std::cout << " (degraded: " << r.quality.clean_fraction * 100.0
                  << "% clean, " << r.degraded_steps() << " masked steps)";
      }
      std::cout << "\n";
    }
  }
  for (const runtime::TraceError& err : errors) {
    std::cerr << "ptrack_cli: " << err.trace << ": "
              << runtime::to_string(err.stage) << " error: " << err.message
              << "\n";
  }
  if (!errors.empty()) {
    std::cerr << "ptrack_cli: " << errors.size() << " of "
              << (listing.traces.size() + listing.errors.size())
              << " trace(s) failed"
              << (args.get_bool("strict") ? "" : " (skipped)") << "\n";
  }

  if (args.has("json")) {
    std::ofstream out(args.get_string("json"));
    if (!out) throw Error("cannot open " + args.get_string("json"));
    json::Writer w(out);
    w.begin_object();
    w.key("traces").begin_array();
    for (std::size_t i = 0; i < listing.traces.size(); ++i) {
      if (!results[i].has_value()) continue;
      const core::TrackResult& r = *results[i];
      w.begin_object();
      w.key("trace").value(listing.traces[i].name);
      w.key("steps").value(r.steps);
      w.key("distance_m").value(r.distance());
      w.key("clean_fraction").value(r.quality.clean_fraction);
      w.key("repaired_fraction").value(r.quality.repaired_fraction);
      w.key("masked_fraction").value(r.quality.masked_fraction);
      w.key("degraded_steps").value(r.degraded_steps());
      write_timing(w, r.timing);
      w.end_object();
    }
    w.end_array();
    w.key("errors").begin_array();
    for (const runtime::TraceError& err : errors) {
      w.begin_object();
      w.key("trace").value(err.trace);
      w.key("stage").value(std::string(runtime::to_string(err.stage)));
      w.key("message").value(err.message);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    check(w.complete(), "ptrack_cli: complete JSON document");
    out << '\n';
  }
  write_obs_outputs(args);
  if (!errors.empty() && args.get_bool("strict")) return 2;
  return 0;
}

int run(int argc, char** argv) {
  cli::Args args(argc, argv,
                 {{"input", "trace CSV (imu::save_csv format)", "", false},
                  {"batch",
                   "process every .csv in this directory instead of --input",
                   "", false},
                  {"threads",
                   "batch worker threads (0 = one per hardware thread)", "0",
                   false},
                  {"arm", "arm length m in metres", "0.70", false},
                  {"leg", "leg length l in metres", "0.90", false},
                  {"k", "Eq. (2) calibration factor", "2.0", false},
                  {"self-train-distance",
                   "treat the trace as a calibration walk of this many "
                   "metres and learn arm/leg from it",
                   "", false},
                  {"json", "write the full result as JSON to this file", "",
                   false},
                  {"events", "write per-step events as CSV to this file", "",
                   false},
                  {"metrics-out",
                   "write an observability metrics snapshot (JSON) to this "
                   "file",
                   "", false},
                  {"trace-out",
                   "write pipeline stage spans as Chrome trace_event JSON "
                   "(chrome://tracing, Perfetto) to this file",
                   "", false},
                  {"streaming",
                   "replay the input through the incremental streaming "
                   "tracker instead of the batch pipeline",
                   "", true},
                  {"hop",
                   "streaming mode: advance the pipeline every this many "
                   "seconds of samples",
                   "2.0", false},
                  {"strict",
                   "batch mode: exit 2 when any trace fails (default: skip "
                   "failed traces and report them)",
                   "", true},
                  {"quiet", "suppress the console summary", "", true}});
  if (args.help_requested()) {
    std::cout << args.usage("ptrack_cli");
    return 0;
  }

  core::PTrackConfig config;
  config.stride.profile.arm_length = args.get_double("arm");
  config.stride.profile.leg_length = args.get_double("leg");
  config.stride.profile.k = args.get_double("k");

  if (args.has("batch")) return run_batch(args, config);

  const imu::Trace trace = imu::load_csv(args.get_string("input"));

  core::SelfTrainingResult trained{};
  const bool self_trained = args.has("self-train-distance");
  if (self_trained) {
    trained = core::self_train(trace, args.get_double("self-train-distance"));
    config.stride.profile.arm_length = trained.arm_length;
    config.stride.profile.leg_length = trained.leg_length;
  }

  if (args.get_bool("streaming")) return run_streaming(args, config, trace);

  core::PTrack tracker(config);
  const core::TrackResult result = tracker.process(trace);

  if (!args.get_bool("quiet")) {
    std::cout << "trace:    " << trace.duration() << " s @ " << trace.fs()
              << " Hz (" << trace.size() << " samples)\n";
    if (self_trained) {
      std::cout << "profile:  self-trained arm=" << trained.arm_length
                << " m leg=" << trained.leg_length << " m\n";
    } else {
      std::cout << "profile:  arm=" << config.stride.profile.arm_length
                << " m leg=" << config.stride.profile.leg_length << " m\n";
    }
    std::cout << "steps:    " << result.steps << "\n";
    std::cout << "distance: " << result.distance() << " m\n";
    std::size_t walking = 0;
    std::size_t stepping = 0;
    std::size_t others = 0;
    for (const core::CycleRecord& c : result.cycles) {
      switch (c.type) {
        case core::GaitType::Walking: ++walking; break;
        case core::GaitType::Stepping: ++stepping; break;
        case core::GaitType::Interference: ++others; break;
      }
    }
    std::cout << "cycles:   " << walking << " walking, " << stepping
              << " stepping, " << others << " excluded\n";
  }

  if (args.has("events")) {
    std::vector<std::vector<double>> rows;
    rows.reserve(result.events.size());
    for (const core::StepEvent& e : result.events) {
      rows.push_back({e.t, e.stride,
                      static_cast<double>(static_cast<int>(e.type))});
    }
    csv::write(args.get_string("events"), {"t", "stride", "type"}, rows);
  }

  if (args.has("json")) {
    std::ofstream out(args.get_string("json"));
    if (!out) throw Error("cannot open " + args.get_string("json"));
    json::Writer w(out);
    w.begin_object();
    w.key("steps").value(result.steps);
    w.key("distance_m").value(result.distance());
    w.key("profile").begin_object();
    w.key("arm_length").value(config.stride.profile.arm_length);
    w.key("leg_length").value(config.stride.profile.leg_length);
    w.key("self_trained").value(self_trained);
    w.end_object();
    w.key("events").begin_array();
    for (const core::StepEvent& e : result.events) {
      w.begin_object();
      w.key("t").value(e.t);
      w.key("stride").value(e.stride);
      w.key("type").value(std::string(core::to_string(e.type)));
      w.end_object();
    }
    w.end_array();
    write_timing(w, result.timing);
    w.end_object();
    check(w.complete(), "ptrack_cli: complete JSON document");
    out << '\n';
  }
  write_obs_outputs(args);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::cerr << "ptrack_cli: " << e.what() << "\n";
    return 1;
  }
}
