// synth_cli — generate wrist-IMU traces with ground truth from the
// bundled biomechanical synthesizer.
//
//   synth_cli --scenario "walk:60,eat:30,step:45" --seed 7
//             --output trace.csv [--truth truth.csv] [--user-seed 3]
//
// Scenario syntax: comma-separated "<activity>:<seconds>" with activities
// walk, run, step, swing, eat, poker, photo, game, spoof, idle. The
// output trace is the imu::save_csv interchange format; --truth writes
// per-step ground truth (t, stride, bounce).

#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "imu/trace_io.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::ActivityKind parse_activity(const std::string& name) {
  if (name == "walk") return synth::ActivityKind::Walking;
  if (name == "run") return synth::ActivityKind::Running;
  if (name == "step") return synth::ActivityKind::Stepping;
  if (name == "swing") return synth::ActivityKind::SwingOnly;
  if (name == "eat") return synth::ActivityKind::Eating;
  if (name == "poker") return synth::ActivityKind::Poker;
  if (name == "photo") return synth::ActivityKind::Photo;
  if (name == "game") return synth::ActivityKind::Gaming;
  if (name == "spoof") return synth::ActivityKind::Spoofer;
  if (name == "idle") return synth::ActivityKind::Idle;
  throw InvalidArgument("unknown activity '" + name + "'");
}

synth::Scenario parse_scenario(const std::string& text) {
  synth::Scenario scenario;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const auto colon = part.find(':');
    if (colon == std::string::npos) {
      throw InvalidArgument("scenario segment '" + part +
                            "' is not <activity>:<seconds>");
    }
    const synth::ActivityKind kind = parse_activity(part.substr(0, colon));
    double seconds = 0.0;
    try {
      seconds = std::stod(part.substr(colon + 1));
    } catch (const std::exception&) {
      throw InvalidArgument("bad duration in scenario segment '" + part + "'");
    }
    scenario.add({kind, seconds, synth::Posture::Standing, 0.0, 0.0});
  }
  expects(!scenario.segments().empty(), "scenario has at least one segment");
  return scenario;
}

int run(int argc, char** argv) {
  cli::Args args(
      argc, argv,
      {{"scenario", "comma-separated <activity>:<seconds> script", "walk:60",
        false},
       {"output", "trace CSV output path", "", false},
       {"truth", "ground-truth CSV output path (t,stride,bounce)", "", false},
       {"seed", "synthesis RNG seed", "1", false},
       {"user-seed", "draw a random user from this seed (0 = default user)",
        "0", false},
       {"fs", "device sample rate Hz", "100", false},
       {"noise-scale", "sensor error model scale (0 = ideal sensor)", "1.0",
        false},
       {"print-profile", "print the user's profile to stdout", "", true}});
  if (args.help_requested()) {
    std::cout << args.usage("synth_cli");
    return 0;
  }

  const synth::Scenario scenario = parse_scenario(args.get_string("scenario"));

  Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  synth::UserProfile user;
  const long user_seed = args.get_int("user-seed");
  if (user_seed != 0) {
    Rng user_rng(static_cast<std::uint64_t>(user_seed));
    user = synth::random_user(user_rng);
  }

  synth::SynthOptions options;
  options.device_fs = args.get_double("fs");
  options.internal_fs = std::max(4.0 * options.device_fs, 400.0);
  const double noise_scale = args.get_double("noise-scale");
  options.noise.accel_bias_stddev *= noise_scale;
  options.noise.accel_noise_stddev *= noise_scale;
  options.noise.accel_quantization *= noise_scale;
  options.noise.gyro_bias_stddev *= noise_scale;
  options.noise.gyro_noise_stddev *= noise_scale;

  const synth::SynthResult result =
      synth::synthesize(scenario, user, options, rng);

  imu::save_csv(result.trace, args.get_string("output"));
  std::cout << "wrote " << result.trace.size() << " samples ("
            << result.trace.duration() << " s @ " << options.device_fs
            << " Hz) with " << result.truth.step_count()
            << " true steps over " << result.truth.total_distance()
            << " m\n";

  if (args.has("truth")) {
    std::vector<std::vector<double>> rows;
    rows.reserve(result.truth.steps.size());
    for (const synth::StepTruth& s : result.truth.steps) {
      rows.push_back({s.t, s.stride, s.bounce});
    }
    csv::write(args.get_string("truth"), {"t", "stride", "bounce"}, rows);
  }

  if (args.get_bool("print-profile")) {
    std::cout << "user: arm=" << user.arm_length << " leg=" << user.leg_length
              << " height=" << user.height << " speed=" << user.speed
              << " cadence=" << user.cadence << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::cerr << "synth_cli: " << e.what() << "\n";
    return 1;
  }
}
