// Observability overhead gate: the instrumented pipeline, with metrics and
// spans ENABLED but never scraped, must cost at most 3% over the same
// binary with the runtime kill switch off. This is the budget DESIGN.md
// "Observability" promises; the gate keeps instrumentation creep honest.
//
// Method: one synthetic walking trace is pushed through core::PTrack
// repeatedly, in alternating blocks of runs with obs::set_enabled(true) /
// false. Alternation cancels slow drift (thermal, frequency scaling); the
// minimum block time per arm estimates each arm's true cost with the noise
// floor removed, and overhead = min_on / min_off - 1. Span rings are reset
// between blocks so the ON arm measures steady-state recording, not
// ring-allocation one-offs.
//
// Flags:
//   --reduced     shorter trace and fewer blocks (the CI smoke
//                 configuration)
//   --gate G      fail (exit 1) when overhead exceeds G (default 0.03;
//                 0 disables the gate)
//   --json PATH   write {"bench":"obs_overhead","metrics":{...}} (also via
//                 the PTRACK_BENCH_JSON environment variable)
//
// With -DPTRACK_OBS=OFF both arms run the same uninstrumented code; the
// measured overhead is pure noise around 0 and the gate trivially holds.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/ptrack.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One block: `runs` full pipeline passes; returns the block's wall time.
double run_block(const core::PTrack& tracker, const imu::Trace& trace,
                 std::size_t runs) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < runs; ++i) {
    const core::TrackResult r = tracker.process(trace);
    if (r.steps == 0) throw Error("obs_overhead: pipeline counted no steps");
  }
  return seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(
        argc, argv,
        {{"reduced", "shorter trace and fewer blocks (CI smoke)", "", true},
         {"gate",
          "maximum allowed enabled/disabled overhead fraction (0 = report "
          "only)",
          "0.03", false},
         {"json", "output JSON path (overrides PTRACK_BENCH_JSON)", "",
          false}});
    if (args.help_requested()) {
      std::cout << args.usage("obs_overhead");
      return 0;
    }
    const bool reduced = args.get_bool("reduced");
    const double gate = args.get_double("gate");
    const double seconds = reduced ? 20.0 : 60.0;
    const std::size_t blocks_per_arm = reduced ? 9 : 15;
    const std::size_t runs_per_block = reduced ? 4 : 6;

    Rng rng(bench::kBenchSeed ^ 0x0b5);
    const auto user = bench::make_users(1).front();
    const imu::Trace trace =
        synth::synthesize(synth::Scenario::pure_walking(seconds), user,
                          bench::standard_options(), rng)
            .trace;
    const core::PTrack tracker;

    // Warm-up with obs on: registers every metric, allocates the span ring
    // and the workspace buffers, faults in the code. Neither arm should pay
    // these one-offs inside a measured block.
    obs::set_enabled(true);
    run_block(tracker, trace, 2);

    double min_on = std::numeric_limits<double>::infinity();
    double min_off = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < blocks_per_arm; ++b) {
      // ON first, then OFF, so neither arm systematically lands on the
      // warmer half of each pair.
      obs::set_enabled(true);
      obs::reset_trace();  // steady-state ring recording, never full
      min_on = std::min(min_on, run_block(tracker, trace, runs_per_block));
      obs::set_enabled(false);
      min_off = std::min(min_off, run_block(tracker, trace, runs_per_block));
    }
    obs::set_enabled(true);

    const double overhead = min_on / min_off - 1.0;
    std::printf("obs_overhead: %zu blocks x %zu runs of a %.0f s trace\n",
                blocks_per_arm, runs_per_block, seconds);
    std::printf("  enabled:  %.3f ms/block (min)\n", 1e3 * min_on);
    std::printf("  disabled: %.3f ms/block (min)\n", 1e3 * min_off);
    std::printf("  overhead: %.2f%% (gate %.0f%%)\n", 100.0 * overhead,
                100.0 * gate);

    std::string path = "BENCH_obs_overhead.json";
    if (args.has("json")) {
      path = args.get_string("json");
    } else if (const char* env = std::getenv("PTRACK_BENCH_JSON")) {
      path = env;
    }
    {
      std::ofstream out(path);
      if (!out) throw Error("obs_overhead: cannot open " + path);
      json::Writer w(out);
      w.begin_object();
      w.key("bench").value(std::string("obs_overhead"));
      w.key("metrics").begin_object();
      w.key("reduced").value(reduced);
      w.key("obs_compiled").value(PTRACK_OBS_ENABLED != 0);
      w.key("enabled_s").value(min_on);
      w.key("disabled_s").value(min_off);
      w.key("overhead").value(overhead);
      w.key("gate").value(gate);
      w.end_object();
      w.end_object();
      out << '\n';
    }
    std::printf("wrote %s\n", path.c_str());

    if (gate > 0.0 && overhead > gate) {
      std::printf("OVERHEAD GATE VIOLATION: %.2f%% > %.0f%%\n",
                  100.0 * overhead, 100.0 * gate);
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "obs_overhead: " << e.what() << "\n";
    return 1;
  }
}
