// Fig. 7(a): mis-counted steps during 60 s of interfering activities.
// Paper: GFit and Montage mis-tick 20-39 times; SCAR stays near zero on
// activities it was trained on but jumps to ~26 on the withheld "photo";
// PTrack stays at 0-2 everywhere without any training.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "models/montage.hpp"
#include "models/scar.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout,
               "Fig. 7(a): mis-counted steps in 60 s of interference");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x7a);

  const std::vector<synth::ActivityKind> activities = {
      synth::ActivityKind::Eating, synth::ActivityKind::Poker,
      synth::ActivityKind::Photo, synth::ActivityKind::Gaming};

  Table table({"activity", "GFit", "Mtage", "SCAR", "PTrack", "paper(G/M/S/P)"});
  const std::vector<std::string> paper = {"28/26/0/0", "29/26/0/0",
                                          "39/36/26/2", "38/45/7/0"};

  for (std::size_t a = 0; a < activities.size(); ++a) {
    double sum_gfit = 0;
    double sum_mtage = 0;
    double sum_scar = 0;
    double sum_ptrack = 0;
    for (const auto& user : users) {
      const synth::SynthResult r = synth::synthesize(
          synth::Scenario::interference(activities[a], 60.0,
                                        synth::Posture::Standing),
          user, bench::standard_options(), rng);

      models::PeakCounter gfit(models::gfit_watch_config());
      models::MontageCounter mtage;
      // SCAR deliberately *not* trained on Photo (the paper's withheld
      // class); it sees eating/poker/gaming plus the gait classes.
      Rng scar_rng = rng.fork();
      models::ScarCounter scar(
          bench::train_scar(user,
                            {synth::ActivityKind::Walking,
                             synth::ActivityKind::Stepping,
                             synth::ActivityKind::Eating,
                             synth::ActivityKind::Poker,
                             synth::ActivityKind::Gaming},
                            40.0, scar_rng),
          bench::scar_gait_labels());
      core::PTrackCounterAdapter ptrack;

      sum_gfit += static_cast<double>(gfit.count_steps(r.trace).count);
      sum_mtage += static_cast<double>(mtage.count_steps(r.trace).count);
      sum_scar += static_cast<double>(scar.count_steps(r.trace).count);
      sum_ptrack += static_cast<double>(ptrack.count_steps(r.trace).count);
    }
    const double n = static_cast<double>(users.size());
    table.add_row({std::string(to_string(activities[a])),
                   Table::num(sum_gfit / n, 1), Table::num(sum_mtage / n, 1),
                   Table::num(sum_scar / n, 1), Table::num(sum_ptrack / n, 1),
                   paper[a]});
  }
  table.print(std::cout);
  std::cout << "mean mis-counted steps per 60 s over " << users.size()
            << " users (true steps = 0).\n";
  return 0;
}
