// Shared helpers for the figure-reproduction benches: standard user cohort,
// standard synthesis options, SCAR training-set construction, and accuracy
// scoring.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "models/scar.hpp"
#include "synth/profile.hpp"
#include "synth/scenario.hpp"
#include "synth/synthesizer.hpp"

namespace ptrack::bench {

/// The deterministic base seed of all benches.
inline constexpr std::uint64_t kBenchSeed = 0x9e3779b97f4a7c15ULL;

/// A cohort of n random users (deterministic).
std::vector<synth::UserProfile> make_users(std::size_t n,
                                           std::uint64_t seed = kBenchSeed);

/// Standard synthesis options used by all benches (100 Hz device,
/// consumer-grade noise).
synth::SynthOptions standard_options();

/// Trains a SCAR classifier on the given activity kinds for one user
/// (seconds of data per class). Gait classes are labeled "walking" and
/// "stepping"; interference classes get their activity name.
models::ScarClassifier train_scar(const synth::UserProfile& user,
                                  const std::vector<synth::ActivityKind>& kinds,
                                  double seconds_per_class, Rng& rng);

/// The gait labels SCAR counts steps in.
std::vector<std::string> scar_gait_labels();

/// Step-count accuracy as the paper reports it: 1 - |counted - true|/true.
double count_accuracy(std::size_t counted, std::size_t truth);

}  // namespace ptrack::bench
