// Ablation: sensitivity to user-profile errors.
//
// The paper's motivation for self-training: "measurement errors made by
// inexperienced users could lead to continuous performance deterioration."
// This bench quantifies exactly that — per-step stride error as a function
// of the error in the arm and leg lengths fed to the estimator.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

double stride_error_cm(const std::vector<synth::SynthResult>& corpus,
                       const std::vector<synth::UserProfile>& users,
                       double arm_error_m, double leg_error_m) {
  std::vector<double> errs;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    core::PTrackConfig cfg;
    cfg.stride.profile = {users[i].arm_length + arm_error_m,
                          users[i].leg_length + leg_error_m, 2.0};
    core::PTrack tracker(cfg);
    const auto res = tracker.process(corpus[i].trace);
    for (const core::StepEvent& e : res.events) {
      if (e.stride <= 0.0) continue;
      double best = 1e9;
      double s_true = 0.0;
      for (const auto& st : corpus[i].truth.steps) {
        if (std::abs(st.t - e.t) < best) {
          best = std::abs(st.t - e.t);
          s_true = st.stride;
        }
      }
      if (best < 0.6) errs.push_back(std::abs(e.stride - s_true) * 100.0);
    }
  }
  return errs.empty() ? -1.0 : stats::mean(errs);
}

}  // namespace

int main() {
  print_banner(std::cout, "Ablation: profile-error sensitivity (stride err, cm)");
  const auto users = bench::make_users(4);
  Rng rng(bench::kBenchSeed ^ 0x9e);
  std::vector<synth::SynthResult> corpus;
  for (const auto& user : users) {
    corpus.push_back(synth::synthesize(synth::Scenario::pure_walking(60.0),
                                       user, bench::standard_options(), rng));
  }

  Table arm({"arm error (cm)", "stride err (cm)"});
  for (double err_cm : {-10.0, -5.0, -2.0, 0.0, 2.0, 5.0, 10.0}) {
    arm.add_row({Table::num(err_cm, 0),
                 Table::num(stride_error_cm(corpus, users, err_cm / 100.0, 0.0), 1)});
  }
  arm.print(std::cout);

  std::cout << "\n";
  Table leg({"leg error (cm)", "stride err (cm)"});
  for (double err_cm : {-10.0, -5.0, -2.0, 0.0, 2.0, 5.0, 10.0}) {
    leg.add_row({Table::num(err_cm, 0),
                 Table::num(stride_error_cm(corpus, users, 0.0, err_cm / 100.0), 1)});
  }
  leg.print(std::cout);
  std::cout << "the paper's self-training exists to avoid exactly these"
               " curves (tape-measure errors of a few cm are typical).\n";
  return 0;
}
