// Fig. 6(a): step-counting accuracy of GFit / Montage / SCAR / PTrack on
// walking-only, stepping-only and mixed gait, without intended
// interference. Paper: all four accurate — walking 0.97/0.97/0.99/0.98,
// stepping 0.98/0.99/1.0/0.98, mixed 0.91/0.92/0.90/0.93.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "models/montage.hpp"
#include "models/scar.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Fig. 6(a): step counting accuracy by gait type");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x6a);

  struct Case {
    std::string name;
    synth::Scenario scenario;
    std::string paper;
  };
  const std::vector<Case> cases = {
      {"walking", synth::Scenario::pure_walking(120.0), "0.97/0.97/0.99/0.98"},
      {"stepping", synth::Scenario::pure_stepping(120.0), "0.98/0.99/1.0/0.98"},
      {"mixed", synth::Scenario::mixed_gait(120.0), "0.91/0.92/0.90/0.93"},
  };

  Table table({"gait", "GFit", "Mtage", "SCAR", "PTrack", "paper(G/M/S/P)"});
  for (const Case& c : cases) {
    std::vector<double> acc_gfit;
    std::vector<double> acc_mtage;
    std::vector<double> acc_scar;
    std::vector<double> acc_ptrack;
    for (const auto& user : users) {
      const synth::SynthResult r =
          synth::synthesize(c.scenario, user, bench::standard_options(), rng);
      const std::size_t truth = r.truth.step_count();

      models::PeakCounter gfit(models::gfit_watch_config());
      models::MontageCounter mtage;
      Rng scar_rng = rng.fork();
      models::ScarCounter scar(
          bench::train_scar(user,
                            {synth::ActivityKind::Walking,
                             synth::ActivityKind::Stepping,
                             synth::ActivityKind::Eating,
                             synth::ActivityKind::Poker,
                             synth::ActivityKind::Gaming},
                            40.0, scar_rng),
          bench::scar_gait_labels());
      core::PTrackCounterAdapter ptrack;

      acc_gfit.push_back(
          bench::count_accuracy(gfit.count_steps(r.trace).count, truth));
      acc_mtage.push_back(
          bench::count_accuracy(mtage.count_steps(r.trace).count, truth));
      acc_scar.push_back(
          bench::count_accuracy(scar.count_steps(r.trace).count, truth));
      acc_ptrack.push_back(
          bench::count_accuracy(ptrack.count_steps(r.trace).count, truth));
    }
    table.add_row({c.name, Table::num(stats::mean(acc_gfit), 3),
                   Table::num(stats::mean(acc_mtage), 3),
                   Table::num(stats::mean(acc_scar), 3),
                   Table::num(stats::mean(acc_ptrack), 3), c.paper});
  }
  table.print(std::cout);
  std::cout << "accuracy = 1 - |counted - true| / true, averaged over "
            << users.size() << " users.\n";
  return 0;
}
