#include "bench_util.hpp"

#include <cmath>
#include <string>

namespace ptrack::bench {

std::vector<synth::UserProfile> make_users(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<synth::UserProfile> users;
  users.reserve(n);
  for (std::size_t i = 0; i < n; ++i) users.push_back(synth::random_user(rng));
  return users;
}

synth::SynthOptions standard_options() {
  synth::SynthOptions opt;
  opt.device_fs = 100.0;
  opt.internal_fs = 400.0;
  return opt;
}

models::ScarClassifier train_scar(const synth::UserProfile& user,
                                  const std::vector<synth::ActivityKind>& kinds,
                                  double seconds_per_class, Rng& rng) {
  std::vector<models::LabeledTrace> examples;
  for (synth::ActivityKind kind : kinds) {
    synth::Scenario scenario;
    if (kind == synth::ActivityKind::Walking) {
      scenario = synth::Scenario::pure_walking(seconds_per_class);
    } else if (kind == synth::ActivityKind::Stepping) {
      scenario = synth::Scenario::pure_stepping(seconds_per_class);
    } else {
      scenario = synth::Scenario::interference(kind, seconds_per_class,
                                               synth::Posture::Standing);
    }
    synth::SynthResult r =
        synth::synthesize(scenario, user, standard_options(), rng);
    examples.push_back({std::move(r.trace), std::string(to_string(kind))});
  }
  models::ScarClassifier clf;
  clf.fit(examples);
  return clf;
}

std::vector<std::string> scar_gait_labels() { return {"walking", "stepping"}; }

double count_accuracy(std::size_t counted, std::size_t truth) {
  if (truth == 0) return counted == 0 ? 1.0 : 0.0;
  const double err = std::abs(static_cast<double>(counted) -
                              static_cast<double>(truth)) /
                     static_cast<double>(truth);
  return 1.0 - err;
}

}  // namespace ptrack::bench
