// Fig. 8(a): CDF of per-step stride errors — PTrack vs Montage on wrist
// data. Paper: PTrack ~5 cm mean; Montage deteriorates badly because the
// wrist measures arm+body, violating its body-attachment assumption.

#include <iostream>

#include "bench_util.hpp"
#include "common/cdf.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "models/montage.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

void collect_errors(const std::vector<std::pair<double, double>>& estimates,
                    const synth::GroundTruth& truth,
                    std::vector<double>& errs) {
  for (const auto& [t, stride] : estimates) {
    double best = 1e9;
    double s_true = 0.0;
    for (const synth::StepTruth& st : truth.steps) {
      const double dist = std::abs(st.t - t);
      if (dist < best) {
        best = dist;
        s_true = st.stride;
      }
    }
    if (best < 0.6) errs.push_back(std::abs(stride - s_true) * 100.0);  // cm
  }
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 8(a): per-step stride error CDF (cm)");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x8a);

  std::vector<double> err_ptrack;
  std::vector<double> err_mtage;
  for (const auto& user : users) {
    // Indoor and outdoor trajectories: a few walks at different speeds.
    synth::Scenario scenario;
    scenario.walk(45.0).walk(35.0, user.speed * 0.9).walk(35.0, user.speed * 1.1);
    const synth::SynthResult r =
        synth::synthesize(scenario, user, bench::standard_options(), rng);

    core::PTrackConfig cfg;
    cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
    core::PTrack tracker(cfg);
    const core::TrackResult res = tracker.process(r.trace);
    std::vector<std::pair<double, double>> est;
    for (const core::StepEvent& e : res.events) {
      if (e.stride > 0.0) est.emplace_back(e.t, e.stride);
    }
    collect_errors(est, r.truth, err_ptrack);

    models::MontageStride mtage(user.leg_length, 2.0);
    std::vector<std::pair<double, double>> mest;
    for (const models::StrideEstimate& e : mtage.estimate(r.trace)) {
      mest.emplace_back(e.t, e.stride);
    }
    collect_errors(mest, r.truth, err_mtage);
  }

  const EmpiricalCdf cp(err_ptrack);
  const EmpiricalCdf cm(err_mtage);
  Table table({"estimator", "mean", "p50", "p90", "paper mean"});
  table.add_row({"PTrack", Table::num(cp.mean(), 1), Table::num(cp.quantile(0.5), 1),
                 Table::num(cp.quantile(0.9), 1), "~5 cm"});
  table.add_row({"Mtage", Table::num(cm.mean(), 1), Table::num(cm.quantile(0.5), 1),
                 Table::num(cm.quantile(0.9), 1), "much larger"});
  table.print(std::cout);

  std::cout << "\nCDF series (error cm -> cumulative probability):\n";
  for (const auto& [name, cdf] : {std::pair{"PTrack", &cp}, {"Mtage", &cm}}) {
    std::cout << name << ": ";
    for (const auto& [x, p] : cdf->series(8)) {
      std::cout << "(" << Table::num(x, 1) << "," << Table::num(p, 2) << ") ";
    }
    std::cout << "\n";
  }
  return 0;
}
