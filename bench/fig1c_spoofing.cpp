// Fig. 1(c): a motorized spoofing rig (unfitbits-style) accumulates ~48-49
// false steps in only 40 s on every existing counter — wearable and phone
// alike. PTrack (previewed here, formally in Fig. 7(b)) rejects it.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "models/montage.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Fig. 1(c): spoofed step counts in 40 s");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x1c);

  double watch = 0;
  double band = 0;
  double copro = 0;
  double soft = 0;
  double ptrack = 0;
  for (const auto& user : users) {
    const synth::SynthResult r = synth::synthesize(
        synth::Scenario::interference(synth::ActivityKind::Spoofer, 40.0,
                                      synth::Posture::Standing),
        user, bench::standard_options(), rng);
    models::PeakCounter w(models::gfit_watch_config());
    models::PeakCounter b(models::miband_config());
    models::PeakCounter c(models::phone_coprocessor_config());
    models::PeakCounter s(models::phone_software_config());
    core::PTrackCounterAdapter p;
    watch += static_cast<double>(w.count_steps(r.trace).count);
    band += static_cast<double>(b.count_steps(r.trace).count);
    copro += static_cast<double>(c.count_steps(r.trace).count);
    soft += static_cast<double>(s.count_steps(r.trace).count);
    ptrack += static_cast<double>(p.count_steps(r.trace).count);
  }
  const double n = static_cast<double>(users.size());
  Table table({"counter", "steps in 40 s", "paper"});
  table.add_row({"Watch", Table::num(watch / n, 1), "~48"});
  table.add_row({"Band", Table::num(band / n, 1), "~49"});
  table.add_row({"Coprocessor", Table::num(copro / n, 1), "~49"});
  table.add_row({"Software", Table::num(soft / n, 1), "~48"});
  table.add_row({"PTrack", Table::num(ptrack / n, 1), "0 (Fig. 7(b))"});
  table.print(std::cout);
  std::cout << "the rig alternates at 2 Hz; a vulnerable counter ticks ~"
            << 2 * 40 * 0.6 << "+ times.\n";
  return 0;
}
