// Ablation: sensor quality.
//
// Scales the sensor error model (bias + white noise + quantization) and
// reports counting accuracy and per-step stride error — how much sensor
// does PTrack actually need?

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Ablation: sensor noise scale");
  const auto users = bench::make_users(4);

  Table table({"noise scale", "walk accuracy", "stride err mean (cm)"});
  for (double scale : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    Rng rng(bench::kBenchSeed ^ 0x45);
    double acc = 0.0;
    std::vector<double> errs;
    for (const auto& user : users) {
      synth::SynthOptions opt = bench::standard_options();
      opt.noise.accel_bias_stddev *= scale;
      opt.noise.accel_noise_stddev *= scale;
      opt.noise.accel_quantization *= scale;
      const synth::SynthResult r = synth::synthesize(
          synth::Scenario::pure_walking(60.0), user, opt, rng);

      core::PTrackConfig cfg;
      cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
      core::PTrack tracker(cfg);
      const core::TrackResult res = tracker.process(r.trace);
      acc += bench::count_accuracy(res.steps, r.truth.step_count());
      for (const core::StepEvent& e : res.events) {
        if (e.stride <= 0.0) continue;
        double best = 1e9;
        double s_true = 0.0;
        for (const synth::StepTruth& st : r.truth.steps) {
          if (std::abs(st.t - e.t) < best) {
            best = std::abs(st.t - e.t);
            s_true = st.stride;
          }
        }
        if (best < 0.6) errs.push_back(std::abs(e.stride - s_true) * 100.0);
      }
    }
    acc /= static_cast<double>(users.size());
    table.add_row({Table::num(scale, 1) + (scale == 1.0 ? " (consumer)" : ""),
                   Table::num(acc, 3),
                   errs.empty() ? "-" : Table::num(stats::mean(errs), 1)});
  }
  table.print(std::cout);
  return 0;
}
