// Ablation: the offset threshold delta.
//
// The paper fixes delta = 0.0325 empirically (and names adaptive tuning as
// future work). This sweep shows the trade-off the value sits on: a small
// delta sends borderline walking cycles to the stepping test (hurting
// walking recall); a large delta lets rigid activities through (hurting
// interference rejection).

#include <iostream>

#include "bench_util.hpp"
#include "core/adaptive_delta.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Ablation: offset threshold delta");
  const auto users = bench::make_users(5);

  // Pre-synthesize the corpora once.
  Rng rng(bench::kBenchSeed ^ 0xd5);
  std::vector<std::pair<imu::Trace, std::size_t>> walking;  // trace, true steps
  std::vector<imu::Trace> interference;
  for (const auto& user : users) {
    const synth::SynthResult w = synth::synthesize(
        synth::Scenario::pure_walking(60.0), user, bench::standard_options(),
        rng);
    walking.emplace_back(w.trace, w.truth.step_count());
    for (synth::ActivityKind kind :
         {synth::ActivityKind::Photo, synth::ActivityKind::Poker,
          synth::ActivityKind::Spoofer}) {
      interference.push_back(
          synth::synthesize(synth::Scenario::interference(
                                kind, 60.0, synth::Posture::Standing),
                            user, bench::standard_options(), rng)
              .trace);
    }
  }

  Table table({"delta", "walking accuracy", "interference miscounts / 60 s"});
  for (double delta : {0.010, 0.020, 0.0325, 0.050, 0.080, 0.120}) {
    core::PTrackConfig cfg;
    cfg.counter.delta = delta;
    core::PTrackCounterAdapter tracker(cfg);

    double acc = 0.0;
    for (const auto& [trace, truth] : walking) {
      acc += bench::count_accuracy(tracker.count_steps(trace).count, truth);
    }
    acc /= static_cast<double>(walking.size());

    double miscounts = 0.0;
    for (const imu::Trace& trace : interference) {
      miscounts += static_cast<double>(tracker.count_steps(trace).count);
    }
    miscounts /= static_cast<double>(interference.size());

    std::string label = Table::num(delta, 4);
    if (delta == 0.0325) label += " (paper)";
    table.add_row({label, Table::num(acc, 3), Table::num(miscounts, 1)});
  }
  table.print(std::cout);

  // The paper's future work, implemented: tune delta per session from the
  // unlabeled offset distribution (Otsu). Calibrate on a mixed session and
  // report where the tuned threshold lands.
  Rng cal_rng(bench::kBenchSeed ^ 0xad);
  synth::Scenario session;
  session.walk(60.0).activity(synth::ActivityKind::Spoofer, 60.0).walk(30.0);
  const auto cal = synth::synthesize(session, users.front(),
                                     bench::standard_options(), cal_rng);
  const auto tuned = core::tune_delta(cal.trace);
  std::cout << "\nadaptive delta (Otsu over an unlabeled mixed session): "
            << Table::num(tuned.delta, 4) << " (separation "
            << Table::num(tuned.separation, 2) << ", " << tuned.cycles
            << " cycles; paper's empirical value: 0.0325)\n";
  return 0;
}
