// Fig. 1(a): built-in wearable step counters (LG smartwatch "Watch", Mi
// Band "Band") mis-triggered by eating and poker, with the user standing
// ("1") and seated ("2"). Paper: 40-80 false steps in 2 minutes.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "models/gfit.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout,
               "Fig. 1(a): wearable counters mis-triggered in 2 min");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x1a);

  Table table({"activity", "posture", "Watch", "Band", "paper"});
  for (synth::ActivityKind kind :
       {synth::ActivityKind::Eating, synth::ActivityKind::Poker}) {
    for (synth::Posture posture :
         {synth::Posture::Standing, synth::Posture::Seated}) {
      double watch = 0;
      double band = 0;
      for (const auto& user : users) {
        const synth::SynthResult r = synth::synthesize(
            synth::Scenario::interference(kind, 120.0, posture), user,
            bench::standard_options(), rng);
        models::PeakCounter w(models::gfit_watch_config());
        models::PeakCounter b(models::miband_config());
        watch += static_cast<double>(w.count_steps(r.trace).count);
        band += static_cast<double>(b.count_steps(r.trace).count);
      }
      const double n = static_cast<double>(users.size());
      table.add_row({std::string(to_string(kind)),
                     posture == synth::Posture::Standing ? "standing (1)"
                                                         : "seated (2)",
                     Table::num(watch / n, 1), Table::num(band / n, 1),
                     "40-80"});
    }
  }
  table.print(std::cout);
  std::cout << "mean false steps per 2 min over " << users.size()
            << " users; the counter should stay at 0.\n";
  return 0;
}
