// Ablation: stride post-processing.
//
// Sweeps the stride median window and the swing-energy routing threshold —
// the two engineering guards layered on the paper's estimator — and shows
// each one's contribution to the final per-step error.

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

double stride_error_cm(const std::vector<synth::SynthResult>& corpus,
                       const std::vector<synth::UserProfile>& users,
                       std::size_t window, double swing_threshold) {
  std::vector<double> errs;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    core::PTrackConfig cfg;
    cfg.stride.profile = {users[i].arm_length, users[i].leg_length, 2.0};
    cfg.stride.smooth_window = window;
    cfg.stride.swing_velocity_threshold = swing_threshold;
    core::PTrack tracker(cfg);
    const core::TrackResult res = tracker.process(corpus[i].trace);
    for (const core::StepEvent& e : res.events) {
      if (e.stride <= 0.0) continue;
      double best = 1e9;
      double s_true = 0.0;
      for (const synth::StepTruth& st : corpus[i].truth.steps) {
        if (std::abs(st.t - e.t) < best) {
          best = std::abs(st.t - e.t);
          s_true = st.stride;
        }
      }
      if (best < 0.6) errs.push_back(std::abs(e.stride - s_true) * 100.0);
    }
  }
  return errs.empty() ? -1.0 : stats::mean(errs);
}

}  // namespace

int main() {
  print_banner(std::cout, "Ablation: stride smoothing and swing routing");
  const auto users = bench::make_users(4);
  Rng rng(bench::kBenchSeed ^ 0x55);
  std::vector<synth::SynthResult> corpus;
  for (const auto& user : users) {
    corpus.push_back(synth::synthesize(synth::Scenario::pure_walking(60.0),
                                       user, bench::standard_options(), rng));
  }

  Table table({"median window", "swing routing", "stride err mean (cm)"});
  for (std::size_t window : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                             std::size_t{9}}) {
    table.add_row({std::to_string(window) + (window == 5 ? " (default)" : ""),
                   "on",
                   Table::num(stride_error_cm(corpus, users, window, 0.7), 1)});
  }
  // Swing routing off (threshold 0): trust the counter's gait label.
  table.add_row(
      {"5", "off", Table::num(stride_error_cm(corpus, users, 5, 0.0), 1)});
  table.print(std::cout);
  return 0;
}
