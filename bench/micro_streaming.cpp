// Streaming hot-path microbenchmark: per-hop latency and steady-state
// capacity of the incremental stage graph vs. the legacy full-window
// recompute wrapper — the measurement behind the refactor's claim that a
// hop costs O(new samples), independent of any analysis-window length.
//
// Method: one synthetic walking trace is replayed sample-by-sample through
// a core::StreamingTracker per configuration (incremental and recompute,
// each at window_s in {10, 20, 40}; window/guard only bind in recompute
// mode, but the incremental arms sweep them anyway to demonstrate the
// independence). Every push is timed individually; a push is attributed to
// the per-hop distribution when the tracker's windows_processed counter
// advanced during it, yielding a per-hop latency distribution (p50/p90/p99)
// per arm. Steady-state
// streams-per-core = stream duration / total CPU time spent pushing — how
// many live 100 Hz streams one core sustains.
//
// Flags:
//   --reduced     shorter trace, fewer repeats (the CI smoke configuration)
//   --gate        fail (exit 1) unless BOTH hold:
//                   1. incremental mean per-hop cost < recompute mean
//                      per-hop cost at the 40 s window (strictly);
//                   2. incremental mean per-hop at "40 s window" <= 1.5x
//                      incremental at "10 s window" (hop cost does not
//                      scale with the configured window).
//   --json PATH   write {"bench":"micro_streaming","metrics":{...}} (also
//                 via the PTRACK_BENCH_JSON environment variable)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/streaming.hpp"
#include "dsp/simd.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct ArmResult {
  std::string name;
  double hop_p50_us = 0.0;
  double hop_p90_us = 0.0;
  double hop_p99_us = 0.0;
  double hop_mean_us = 0.0;
  double streams_per_core = 0.0;
  std::size_t steps = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

/// Replays the trace through one tracker configuration `repeats` times,
/// timing every hop-triggering push; keeps the per-hop distribution of the
/// fastest repeat (by total time) to shed scheduler noise.
ArmResult run_arm(const std::string& name, const imu::Trace& trace,
                  const core::StreamingConfig& cfg, std::size_t repeats) {
  using clock = std::chrono::steady_clock;
  const auto hop_every = static_cast<std::size_t>(cfg.hop_s * trace.fs());

  ArmResult best;
  double best_total = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    core::StreamingTracker stream(trace.fs(), cfg);
    std::vector<double> hop_us;
    hop_us.reserve(trace.size() / std::max<std::size_t>(1, hop_every) + 1);
    double total_s = 0.0;
    std::size_t hops_seen = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto t0 = clock::now();
      stream.push(trace[i]);
      const double dt = std::chrono::duration<double>(clock::now() - t0)
                            .count();
      total_s += dt;
      const std::size_t hops_now = stream.stats().windows_processed;
      if (hops_now != hops_seen) {
        hops_seen = hops_now;
        hop_us.push_back(1e6 * dt);
      }
    }
    stream.finish();
    if (rep == 0 || total_s < best_total) {
      best_total = total_s;
      ArmResult r;
      r.name = name;
      double sum = 0.0;
      for (const double us : hop_us) sum += us;
      r.hop_mean_us = hop_us.empty()
                          ? 0.0
                          : sum / static_cast<double>(hop_us.size());
      r.hop_p50_us = percentile(hop_us, 0.50);
      r.hop_p90_us = percentile(hop_us, 0.90);
      r.hop_p99_us = percentile(hop_us, 0.99);
      r.streams_per_core = trace.duration() / total_s;
      r.steps = stream.steps();
      best = r;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(
        argc, argv,
        {{"reduced", "shorter trace and fewer repeats (CI smoke)", "", true},
         {"gate",
          "fail unless incremental beats recompute at the 40 s window and "
          "its hop cost is window-independent",
          "", true},
         {"json", "output JSON path (overrides PTRACK_BENCH_JSON)", "",
          false}});
    if (args.help_requested()) {
      std::cout << args.usage("micro_streaming");
      return 0;
    }
    const bool reduced = args.get_bool("reduced");
    const bool gate = args.get_bool("gate");
    const double seconds = reduced ? 60.0 : 180.0;
    const std::size_t repeats = reduced ? 3 : 5;

    Rng rng(bench::kBenchSeed ^ 0x57e);
    const auto user = bench::make_users(1).front();
    const imu::Trace trace =
        synth::synthesize(synth::Scenario::pure_walking(seconds), user,
                          bench::standard_options(), rng)
            .trace;

    const double windows[] = {10.0, 20.0, 40.0};
    std::vector<ArmResult> arms;
    for (const bool incremental : {true, false}) {
      for (const double w : windows) {
        core::StreamingConfig cfg;
        cfg.pipeline.stride.profile = {user.arm_length, user.leg_length, 2.0};
        cfg.mode = incremental ? core::StreamingConfig::Mode::kIncremental
                               : core::StreamingConfig::Mode::kRecompute;
        cfg.hop_s = 2.0;
        cfg.window_s = w;
        cfg.guard_s = w / 4.0;
        const std::string name =
            std::string(incremental ? "inc" : "rec") + "_w" +
            std::to_string(static_cast<int>(w));
        arms.push_back(run_arm(name, trace, cfg, repeats));
      }
    }

    // SIMD-off and float32 arms at the 20 s window: the per-PR record of
    // what the vector kernels and the f32 projection variant buy on the
    // incremental hot path (simd-on double = the inc_w20 arm above).
    {
      core::StreamingConfig cfg;
      cfg.pipeline.stride.profile = {user.arm_length, user.leg_length, 2.0};
      cfg.mode = core::StreamingConfig::Mode::kIncremental;
      cfg.hop_s = 2.0;
      cfg.window_s = 20.0;
      cfg.guard_s = 5.0;
      dsp::simd::force_isa(dsp::simd::Isa::kScalar);
      arms.push_back(run_arm("inc_scalar_w20", trace, cfg, repeats));
      dsp::simd::force_isa(dsp::simd::detected());
      cfg.precision = core::Precision::kFloat32;
      arms.push_back(run_arm("inc_f32_w20", trace, cfg, repeats));
    }

    std::printf(
        "micro_streaming: %.0f s walking trace @ %.0f Hz, hop 2 s, best of "
        "%zu repeats\n",
        seconds, trace.fs(), repeats);
    std::printf("  %-8s %10s %10s %10s %10s %14s %6s\n", "arm", "p50 us",
                "p90 us", "p99 us", "mean us", "streams/core", "steps");
    for (const ArmResult& a : arms) {
      std::printf("  %-8s %10.1f %10.1f %10.1f %10.1f %14.1f %6zu\n",
                  a.name.c_str(), a.hop_p50_us, a.hop_p90_us, a.hop_p99_us,
                  a.hop_mean_us, a.streams_per_core, a.steps);
    }

    const auto find = [&](const std::string& name) -> const ArmResult& {
      for (const ArmResult& a : arms) {
        if (a.name == name) return a;
      }
      throw Error("micro_streaming: missing arm " + name);
    };
    const ArmResult& inc10 = find("inc_w10");
    const ArmResult& inc20 = find("inc_w20");
    const ArmResult& inc40 = find("inc_w40");
    const ArmResult& rec40 = find("rec_w40");
    const ArmResult& inc_scalar = find("inc_scalar_w20");
    const ArmResult& inc_f32 = find("inc_f32_w20");
    const bool beats_recompute = inc40.hop_mean_us < rec40.hop_mean_us;
    const bool window_independent =
        inc40.hop_mean_us <= 1.5 * inc10.hop_mean_us;
    std::printf("  inc_w40 vs rec_w40 mean: %.1f us vs %.1f us (%s)\n",
                inc40.hop_mean_us, rec40.hop_mean_us,
                beats_recompute ? "ok" : "VIOLATION");
    std::printf("  inc_w40 vs 1.5 * inc_w10 mean: %.1f us vs %.1f us (%s)\n",
                inc40.hop_mean_us, 1.5 * inc10.hop_mean_us,
                window_independent ? "ok" : "VIOLATION");
    const double simd_speedup =
        inc20.hop_mean_us > 0.0 ? inc_scalar.hop_mean_us / inc20.hop_mean_us
                                : 0.0;
    const double f32_speedup =
        inc_f32.hop_mean_us > 0.0
            ? inc_scalar.hop_mean_us / inc_f32.hop_mean_us
            : 0.0;
    std::printf(
        "  simd %s: scalar %.1f us -> double %.1f us (%.2fx) -> f32 %.1f us "
        "(%.2fx)\n",
        dsp::simd::isa_name(dsp::simd::detected()), inc_scalar.hop_mean_us,
        inc20.hop_mean_us, simd_speedup, inc_f32.hop_mean_us, f32_speedup);

    std::string path = "BENCH_streaming.json";
    if (args.has("json")) {
      path = args.get_string("json");
    } else if (const char* env = std::getenv("PTRACK_BENCH_JSON")) {
      path = env;
    }
    {
      std::ofstream out(path);
      if (!out) throw Error("micro_streaming: cannot open " + path);
      json::Writer w(out);
      w.begin_object();
      w.key("bench").value(std::string("micro_streaming"));
      w.key("metrics").begin_object();
      w.key("reduced").value(reduced);
      w.key("trace_s").value(seconds);
      w.key("hop_s").value(2.0);
      for (const ArmResult& a : arms) {
        w.key(a.name + "_hop_p50_us").value(a.hop_p50_us);
        w.key(a.name + "_hop_p90_us").value(a.hop_p90_us);
        w.key(a.name + "_hop_p99_us").value(a.hop_p99_us);
        w.key(a.name + "_hop_mean_us").value(a.hop_mean_us);
        w.key(a.name + "_streams_per_core").value(a.streams_per_core);
        w.key(a.name + "_steps").value(a.steps);
      }
      w.key("inc_beats_recompute").value(beats_recompute);
      w.key("window_independent").value(window_independent);
      w.key("simd_isa").value(
          std::string(dsp::simd::isa_name(dsp::simd::detected())));
      w.key("simd_hop_speedup").value(simd_speedup);
      w.key("f32_hop_speedup").value(f32_speedup);
      w.end_object();
      w.end_object();
      out << '\n';
    }
    std::printf("wrote %s\n", path.c_str());

    if (gate && !(beats_recompute && window_independent)) {
      std::printf("STREAMING GATE VIOLATION\n");
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "micro_streaming: " << e.what() << "\n";
    return 1;
  }
}
