// Fig. 6(b): breakdown of PTrack's gait-type identification on
// walking-only, stepping-only and mixed corpora. Paper: only 2.3% / 1.7% /
// 7.4% of cycles are mis-identified as "Others" in the three scenarios.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Fig. 6(b): PTrack gait-type breakdown (% cycles)");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x6b);

  struct Case {
    std::string name;
    synth::Scenario scenario;
    std::string paper_others;
  };
  const std::vector<Case> cases = {
      {"walking", synth::Scenario::pure_walking(120.0), "2.3%"},
      {"stepping", synth::Scenario::pure_stepping(120.0), "1.7%"},
      {"mixed", synth::Scenario::mixed_gait(120.0), "7.4%"},
  };

  Table table({"corpus", "walking", "stepping", "others", "paper others"});
  for (const Case& c : cases) {
    std::size_t w = 0;
    std::size_t s = 0;
    std::size_t o = 0;
    for (const auto& user : users) {
      const synth::SynthResult r =
          synth::synthesize(c.scenario, user, bench::standard_options(), rng);
      core::PTrack tracker;
      const core::TrackResult res = tracker.process(r.trace);
      for (const core::CycleRecord& cycle : res.cycles) {
        switch (cycle.type) {
          case core::GaitType::Walking: ++w; break;
          case core::GaitType::Stepping: ++s; break;
          case core::GaitType::Interference: ++o; break;
        }
      }
    }
    const double total = static_cast<double>(w + s + o);
    table.add_row({c.name, Table::pct(static_cast<double>(w) / total),
                   Table::pct(static_cast<double>(s) / total),
                   Table::pct(static_cast<double>(o) / total),
                   c.paper_others});
  }
  table.print(std::cout);
  std::cout << "cycle classification shares; 'others' = excluded as "
               "interference.\n";
  return 0;
}
