// Fig. 3 (design validation): quantifies the paper's key observation — the
// critical points of the vertical and anterior projections are synchronous
// for rigid single-DOF motions (swinging, stepping, all interference
// classes, the spoofer) and asynchronous for walking. Prints the per-cycle
// Eq. (1) offset distribution of every activity against the threshold
// delta = 0.0325.

#include <iostream>

#include "bench_util.hpp"
#include "common/cdf.hpp"
#include "common/table.hpp"
#include "core/frontend.hpp"
#include "core/gait_id.hpp"
#include "core/segmentation.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

std::vector<double> cycle_offsets(const imu::Trace& trace,
                                  const core::StepCounterConfig& cfg) {
  std::vector<double> offsets;
  if (trace.size() < 32) return offsets;
  const core::ProjectedTrace proj =
      core::project_trace(trace, cfg.lowpass_hz);
  for (const core::CycleCandidate& c :
       core::segment_cycles(proj.vertical, proj.fs, cfg)) {
    const std::size_t n = c.end - c.begin;
    if (n < 8) continue;
    const std::span<const double> vert(proj.vertical.data() + c.begin, n);
    const std::span<const double> ant(proj.anterior.data() + c.begin, n);
    offsets.push_back(core::analyze_cycle(vert, ant, cfg).offset);
  }
  return offsets;
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 3 validation: per-cycle offset by activity");
  const core::StepCounterConfig cfg;
  const auto users = bench::make_users(6);

  struct Row {
    synth::ActivityKind kind;
    bool expect_async;  // paper: walking exceeds delta, the rest stay below
  };
  const std::vector<Row> rows = {
      {synth::ActivityKind::Walking, true},
      {synth::ActivityKind::Stepping, false},
      {synth::ActivityKind::SwingOnly, false},
      {synth::ActivityKind::Eating, false},
      {synth::ActivityKind::Poker, false},
      {synth::ActivityKind::Photo, false},
      {synth::ActivityKind::Gaming, false},
      {synth::ActivityKind::Spoofer, false},
  };

  Table table({"activity", "cycles", "offset p10", "median", "p90",
               "frac > delta", "expected"});
  Rng rng(bench::kBenchSeed ^ 0x33);
  for (const Row& row : rows) {
    std::vector<double> offsets;
    for (const auto& user : users) {
      synth::Scenario scenario;
      if (row.kind == synth::ActivityKind::Walking) {
        scenario = synth::Scenario::pure_walking(60.0);
      } else if (row.kind == synth::ActivityKind::Stepping) {
        scenario = synth::Scenario::pure_stepping(60.0);
      } else if (row.kind == synth::ActivityKind::SwingOnly) {
        scenario = synth::Scenario{}.activity(synth::ActivityKind::SwingOnly,
                                              60.0);
      } else {
        scenario = synth::Scenario::interference(row.kind, 60.0,
                                                 synth::Posture::Standing);
      }
      const synth::SynthResult r =
          synth::synthesize(scenario, user, bench::standard_options(), rng);
      const auto o = cycle_offsets(r.trace, cfg);
      offsets.insert(offsets.end(), o.begin(), o.end());
    }
    if (offsets.empty()) {
      table.add_row({std::string(to_string(row.kind)), "0", "-", "-", "-",
                     "-", row.expect_async ? "> delta" : "<= delta"});
      continue;
    }
    const EmpiricalCdf cdf(offsets);
    std::size_t above = 0;
    for (double o : offsets) {
      if (o > cfg.delta) ++above;
    }
    table.add_row({std::string(to_string(row.kind)),
                   Table::num(static_cast<long long>(offsets.size())),
                   Table::num(cdf.quantile(0.10), 4),
                   Table::num(cdf.quantile(0.50), 4),
                   Table::num(cdf.quantile(0.90), 4),
                   Table::pct(static_cast<double>(above) /
                              static_cast<double>(offsets.size())),
                   row.expect_async ? "> delta" : "<= delta"});
  }
  table.print(std::cout);
  std::cout << "delta = " << cfg.delta
            << "  (paper SIII-B1; walking cycles should sit above it,\n"
               " rigid-activity cycles below — their critical points are"
               " synchronized)\n";
  return 0;
}
