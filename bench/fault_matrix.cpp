// Fault-injection robustness matrix: fault type x severity, with the
// quality layer's repair pass on vs off (cfg.quality.enabled — the ablation
// switch). For each cell the cohort's step-count error and distance error
// are reported; the claim under test is that detection + repair strictly
// reduces step-count error wherever the fault is repairable (dropouts,
// spikes), and never makes clipping worse.
//
// Errors are measured against the *clean-trace pipeline output* (the same
// tracker run on the unfaulted trace), not against ground truth: the
// pipeline's own truth-relative bias is identical in every cell and would
// mask the fault effect — a spike storm that happens to offset an
// undercounting user would look like an improvement. Truth-relative error
// is still exported per cell (step_error_truth) for the headline view.
//
// Besides the console table, the binary writes BENCH_robustness.json
// (override the path with the PTRACK_BENCH_JSON environment variable) in
// the shared bench schema {"bench": ..., "metrics": {...}}: one record per
// (fault, severity, repair) cell plus the run's observability counters,
// machine-trackable across PRs like BENCH_throughput.json.
//
// Flags:
//   --reduced      smaller cohort and sweep (the CI smoke configuration)
//   --floor F      exit 1 if any repair-on dropout/spike cell's step-count
//                  accuracy (1 - error) falls below F — the CI regression
//                  gate against silently losing the repair path
//   --json PATH    same as PTRACK_BENCH_JSON

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/ptrack.hpp"
#include "imu/faults.hpp"
#include "obs/metrics.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct Cell {
  std::string fault;     ///< "dropout" | "clip" | "spike"
  std::string severity;  ///< human label, e.g. "60/min"
  bool repair = true;
  double step_error = 0.0;        ///< mean |counted - clean run| / clean run
  double distance_error = 0.0;    ///< mean |distance - clean run| / clean run
  double step_error_truth = 0.0;  ///< mean |counted - truth| / truth
};

struct Subject {
  synth::UserProfile user;
  synth::SynthResult synth;
  std::size_t clean_steps = 0;    ///< pipeline output on the clean trace
  double clean_distance = 0.0;
};

/// Applies one fault configuration to a trace. `level` indexes the
/// severity sweep; seeds are fixed so every (repair on, repair off) pair
/// sees the bit-identical faulty trace.
imu::Trace apply_fault(const std::string& fault, std::size_t level,
                       const imu::Trace& trace, std::uint64_t seed) {
  Rng rng(seed);
  if (fault == "dropout") {
    // 50-250 ms holds — the BLE/driver hiccup regime the repair pass is
    // built for (longer blackouts are masked, not bridged, and are scored
    // by the masked-fraction reporting rather than this matrix).
    static const double kRates[] = {30.0, 60.0, 120.0};
    return imu::inject_dropouts(trace, kRates[level], 5, 25, rng);
  }
  if (fault == "clip") {
    static const double kLimitsG[] = {3.0, 2.0, 1.5};
    return imu::clip_acceleration(trace, kLimitsG[level] * kGravity);
  }
  if (fault == "spike") {
    static const double kRates[] = {60.0, 150.0, 300.0};
    return imu::inject_spikes(trace, kRates[level], 8.0, rng,
                              imu::FaultChannels::Both);
  }
  throw Error("fault_matrix: unknown fault " + fault);
}

std::string severity_label(const std::string& fault, std::size_t level) {
  if (fault == "dropout") {
    static const char* kLabels[] = {"30/min", "60/min", "120/min"};
    return kLabels[level];
  }
  if (fault == "clip") {
    static const char* kLabels[] = {"3g", "2g", "1.5g"};
    return kLabels[level];
  }
  static const char* kLabels[] = {"60/min", "150/min", "300/min"};
  return kLabels[level];
}

Cell evaluate(const std::string& fault, std::size_t level, bool repair,
              const std::vector<Subject>& cohort) {
  core::PTrackConfig cfg;
  cfg.quality.enabled = repair;
  Cell cell;
  cell.fault = fault;
  cell.severity = severity_label(fault, level);
  cell.repair = repair;
  for (std::size_t u = 0; u < cohort.size(); ++u) {
    const auto& subject = cohort[u];
    cfg.stride.profile = {subject.user.arm_length, subject.user.leg_length,
                          2.0};
    const auto faulty = apply_fault(
        fault, level, subject.synth.trace,
        bench::kBenchSeed ^ (0xfa017 + 1000 * level + u));
    core::PTrack tracker(cfg);
    const auto result = tracker.process(faulty);
    const double ref_steps = static_cast<double>(subject.clean_steps);
    const double truth_steps =
        static_cast<double>(subject.synth.truth.step_count());
    cell.step_error +=
        std::abs(static_cast<double>(result.steps) - ref_steps) / ref_steps;
    cell.distance_error +=
        std::abs(result.distance() - subject.clean_distance) /
        subject.clean_distance;
    cell.step_error_truth +=
        std::abs(static_cast<double>(result.steps) - truth_steps) /
        truth_steps;
  }
  cell.step_error /= static_cast<double>(cohort.size());
  cell.distance_error /= static_cast<double>(cohort.size());
  cell.step_error_truth /= static_cast<double>(cohort.size());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(
        argc, argv,
        {{"reduced", "smaller cohort and sweep (CI smoke)", "", true},
         {"floor",
          "minimum repair-on step accuracy for dropout/spike cells "
          "(0 = no gate)",
          "0", false},
         {"json", "output JSON path (overrides PTRACK_BENCH_JSON)", "",
          false}});
    if (args.help_requested()) {
      std::cout << args.usage("fault_matrix");
      return 0;
    }

    const bool reduced = args.get_bool("reduced");
    const double floor = args.get_double("floor");
    const std::size_t cohort_size = reduced ? 2 : 6;
    const double seconds = reduced ? 45.0 : 90.0;
    // The reduced smoke run keeps the two harsher severities: with a tiny
    // cohort the mild cells are dominated by per-user noise, not by the
    // fault, and the dominance check would flap.
    const std::size_t level_begin = reduced ? 1 : 0;
    const std::size_t levels = 3;

    std::vector<Subject> cohort;
    const auto users = bench::make_users(cohort_size);
    for (std::size_t u = 0; u < cohort_size; ++u) {
      Rng rng(bench::kBenchSeed ^ (0xfau + u));
      Subject subject{users[u],
                      synth::synthesize(
                          synth::Scenario::pure_walking(seconds), users[u],
                          bench::standard_options(), rng)};
      core::PTrackConfig cfg;
      cfg.stride.profile = {users[u].arm_length, users[u].leg_length, 2.0};
      core::PTrack tracker(cfg);
      const auto clean = tracker.process(subject.synth.trace);
      subject.clean_steps = clean.steps;
      subject.clean_distance = clean.distance();
      if (subject.clean_steps == 0) {
        throw Error("fault_matrix: clean run counted zero steps");
      }
      cohort.push_back(std::move(subject));
    }

    const std::vector<std::string> faults = {"dropout", "clip", "spike"};
    std::vector<Cell> cells;
    for (const auto& fault : faults) {
      for (std::size_t level = level_begin; level < levels; ++level) {
        cells.push_back(evaluate(fault, level, false, cohort));
        cells.push_back(evaluate(fault, level, true, cohort));
      }
    }

    std::printf("fault matrix (%zu users x %.0f s, %zu severities)\n",
                cohort_size, seconds, levels - level_begin);
    std::printf("(errors vs the clean-trace pipeline run; truth-relative "
                "error exported as step_error_truth)\n");
    std::printf("%-8s %-9s %-7s %11s %14s %11s\n", "fault", "severity",
                "repair", "step error", "distance error", "vs truth");
    for (const auto& c : cells) {
      std::printf("%-8s %-9s %-7s %10.1f%% %13.1f%% %10.1f%%\n",
                  c.fault.c_str(), c.severity.c_str(),
                  c.repair ? "on" : "off", 100.0 * c.step_error,
                  100.0 * c.distance_error, 100.0 * c.step_error_truth);
    }

    // The headline claim: for repairable faults, repair-on strictly
    // dominates repair-off on step-count error.
    bool dominated = true;
    for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
      const Cell& off = cells[i];
      const Cell& on = cells[i + 1];
      if (off.fault == "clip") continue;
      if (on.step_error >= off.step_error) {
        dominated = false;
        std::printf("NOT DOMINATED: %s %s repair-on %.2f%% >= off %.2f%%\n",
                    on.fault.c_str(), on.severity.c_str(),
                    100.0 * on.step_error, 100.0 * off.step_error);
      }
    }
    std::printf("repair-on dominates repair-off (dropout, spike): %s\n",
                dominated ? "yes" : "NO");

    std::string path = "BENCH_robustness.json";
    if (args.has("json")) {
      path = args.get_string("json");
    } else if (const char* env = std::getenv("PTRACK_BENCH_JSON")) {
      path = env;
    }
    {
      std::ofstream out(path);
      if (!out) throw Error("fault_matrix: cannot open " + path);
      json::Writer w(out);
      w.begin_object();
      w.key("bench").value(std::string("fault_matrix"));
      w.key("metrics").begin_object();
      w.key("reduced").value(reduced);
      w.key("repair_dominates").value(dominated);
      w.key("cells").begin_array();
      for (const auto& c : cells) {
        w.begin_object();
        w.key("fault").value(c.fault);
        w.key("severity").value(c.severity);
        w.key("repair").value(c.repair);
        w.key("step_error").value(c.step_error);
        w.key("distance_error").value(c.distance_error);
        w.key("step_error_truth").value(c.step_error_truth);
        w.end_object();
      }
      w.end_array();
      w.key("obs");
      obs::Registry::instance().write_json(w);
      w.end_object();
      w.end_object();
      out << '\n';
    }
    std::printf("wrote %s\n", path.c_str());

    // CI gate: repair-on accuracy floor on the repairable columns.
    if (floor > 0.0) {
      for (const auto& c : cells) {
        if (!c.repair || c.fault == "clip") continue;
        const double accuracy = 1.0 - c.step_error;
        if (accuracy < floor) {
          std::printf("FLOOR VIOLATION: %s %s repair-on accuracy %.3f < "
                      "%.3f\n",
                      c.fault.c_str(), c.severity.c_str(), accuracy, floor);
          return 1;
        }
      }
      std::printf("accuracy floor %.3f held\n", floor);
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "fault_matrix: " << e.what() << "\n";
    return 1;
  }
}
