// Fig. 9: indoor navigation case study. The user walks the 141.5 m
// shopping-center route A -> B -> ... -> G (with the deliberate 4 m
// corridor double-crossing between B and D); PTrack's step/stride events
// are dead-reckoned along the route headings. Paper: tracked distance
// 136.4 m vs 141.5 m, mean per-step error 5.1 cm.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "nav/dead_reckoning.hpp"
#include "nav/route.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Fig. 9: indoor navigation case study");
  const nav::Route route = nav::shopping_center_route();
  const auto users = bench::make_users(3);
  Rng rng(bench::kBenchSeed ^ 0x99);

  Table table({"user", "route (m)", "tracked (m)", "per-step err (cm)",
               "end error (m)", "mean xtrack (m)"});
  std::size_t idx = 0;
  for (const auto& user : users) {
    // Script the walk leg by leg at the user's preferred speed.
    synth::Scenario scenario;
    for (std::size_t leg = 0; leg < route.legs(); ++leg) {
      const double duration = route.leg_length(leg) / user.speed;
      scenario.walk(duration, 0.0, route.leg_heading(leg));
    }
    const synth::SynthResult r =
        synth::synthesize(scenario, user, bench::standard_options(), rng);

    core::PTrackConfig cfg;
    cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
    // A turning route: refit the anterior axis per 10 s window.
    cfg.counter.anterior_window_s = 10.0;
    core::PTrack tracker(cfg);
    const core::TrackResult res = tracker.process(r.trace);

    // Dead-reckon with the scripted headings (as the navigation app that
    // follows the suggested route would) plus compass-grade noise.
    double walked = 0.0;
    std::vector<double> leg_end_time(route.legs());
    {
      double t_acc = 0.0;
      for (std::size_t leg = 0; leg < route.legs(); ++leg) {
        t_acc += route.leg_length(leg) / user.speed;
        leg_end_time[leg] = t_acc;
      }
    }
    const auto heading_at = [&](double t) {
      for (std::size_t leg = 0; leg < route.legs(); ++leg) {
        if (t <= leg_end_time[leg]) return route.leg_heading(leg);
      }
      return route.leg_heading(route.legs() - 1);
    };
    Rng hrng = rng.fork();
    nav::DeadReckoner dr({0.0, 0.0}, [&](double t) {
      return heading_at(t) + hrng.normal(0.0, 0.03);
    });
    for (const core::StepEvent& e : res.events) dr.advance(e);
    walked = dr.traveled();

    // Per-step stride error along the route.
    double err_acc = 0.0;
    std::size_t err_n = 0;
    for (const core::StepEvent& e : res.events) {
      if (e.stride <= 0.0) continue;
      double best = 1e9;
      double s_true = 0.0;
      for (const synth::StepTruth& st : r.truth.steps) {
        const double dist = std::abs(st.t - e.t);
        if (dist < best) {
          best = dist;
          s_true = st.stride;
        }
      }
      if (best < 0.6) {
        err_acc += std::abs(e.stride - s_true) * 100.0;
        ++err_n;
      }
    }

    const nav::RouteErrorStats stats =
        nav::score_trajectory(route, dr.trajectory());
    table.add_row({"user " + std::to_string(++idx),
                   Table::num(route.length(), 1), Table::num(walked, 1),
                   Table::num(err_n ? err_acc / static_cast<double>(err_n) : 0.0, 1),
                   Table::num(stats.end_error, 1),
                   Table::num(stats.mean_cross_track, 2)});
  }
  table.print(std::cout);
  std::cout << "paper: route 141.5 m, PTrack-tracked 136.4 m, per-step error "
               "5.1 cm.\n";
  return 0;
}
