// Ablation: critical-point extraction thresholds.
//
// Sweeps the query-prominence / match-prominence / match-hysteresis knobs
// of the Eq. (1) offset metric and reports, for each setting, how well the
// per-cycle offset separates walking from every rigid activity: the
// fraction of walking cycles above delta (want high) and the worst
// rigid-activity fraction above delta (want ~0). This is the calibration
// evidence behind the defaults in StepCounterConfig.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/frontend.hpp"
#include "core/gait_id.hpp"
#include "core/segmentation.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct Corpus {
  std::vector<imu::Trace> walking;
  std::vector<imu::Trace> rigid;  // everything that must stay below delta
};

Corpus build_corpus() {
  Corpus corpus;
  Rng rng(bench::kBenchSeed ^ 0x77);
  for (const auto& user : bench::make_users(5)) {
    corpus.walking.push_back(
        synth::synthesize(synth::Scenario::pure_walking(45.0), user,
                          bench::standard_options(), rng)
            .trace);
    for (synth::ActivityKind kind :
         {synth::ActivityKind::SwingOnly, synth::ActivityKind::Eating,
          synth::ActivityKind::Poker, synth::ActivityKind::Photo,
          synth::ActivityKind::Gaming, synth::ActivityKind::Spoofer}) {
      corpus.rigid.push_back(
          synth::synthesize(
              synth::Scenario{}.activity(kind, 45.0, synth::Posture::Standing),
              user, bench::standard_options(), rng)
              .trace);
    }
  }
  return corpus;
}

struct Separation {
  double walking_above = 0.0;  ///< fraction of walking cycles above delta
  double rigid_above = 0.0;    ///< fraction of rigid cycles above delta
};

Separation evaluate(const Corpus& corpus, const core::StepCounterConfig& cfg) {
  const auto fraction_above = [&](const std::vector<imu::Trace>& traces) {
    std::size_t above = 0;
    std::size_t total = 0;
    for (const imu::Trace& trace : traces) {
      const core::ProjectedTrace proj =
          core::project_trace(trace, cfg.lowpass_hz);
      for (const core::CycleCandidate& c :
           core::segment_cycles(proj.vertical, proj.fs, cfg)) {
        const std::size_t n = c.end - c.begin;
        if (n < 8) continue;
        const std::span<const double> vert(proj.vertical.data() + c.begin, n);
        const std::span<const double> ant(proj.anterior.data() + c.begin, n);
        ++total;
        if (core::analyze_cycle(vert, ant, cfg).offset > cfg.delta) ++above;
      }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(above) / static_cast<double>(total);
  };
  return {fraction_above(corpus.walking), fraction_above(corpus.rigid)};
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Ablation: critical-point thresholds vs offset separation");
  const Corpus corpus = build_corpus();

  Table table({"sym", "query prom", "match prom", "match hyst",
               "walk > delta", "rigid > delta", "margin"});
  for (bool sym : {false, true}) {
    for (double qp : {0.08, 0.12, 0.18, 0.25}) {
      for (double mp : {0.05, 0.10, 0.20, 0.30}) {
        for (double mh : {0.50, 0.80, 1.20, 2.00}) {
          core::StepCounterConfig cfg;
          cfg.symmetric_offset = sym;
          cfg.query_prominence = qp;
          cfg.match_prominence = mp;
          cfg.match_hysteresis = mh;
          const Separation s = evaluate(corpus, cfg);
          table.add_row({sym ? "y" : "n", Table::num(qp, 2),
                         Table::num(mp, 2), Table::num(mh, 2),
                         Table::pct(s.walking_above), Table::pct(s.rigid_above),
                         Table::num(s.walking_above - s.rigid_above, 3)});
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "margin = walking fraction above delta minus rigid fraction"
               " above delta (1.0 is perfect).\n";
  return 0;
}
