// Ingest-storm benchmark: does a crowd of faulty clients degrade the
// service healthy devices get from ptrack_serve?
//
// Method: a real net::Server runs its reactor on a Unix domain socket.
// Phase A streams N healthy clients (synthetic walking traces) through it
// and records, per SAMPLES frame, the wall-clock time to hand the frame to
// the server (the write completes only once the kernel buffer has room,
// so server-side backpressure shows up directly in this number). Phase B
// repeats the identical healthy workload while M chaos clients per mode
// cycle (corrupt frames, slowloris drips, oversized headers, mid-stream
// disconnects, protocol violations) hammer the same listener in a loop for
// the whole phase. Phase C repeats phase B while a scraper thread polls
// the HTTP admin plane (/metrics, /metrics.json, /sessions, /healthz) at
// 10 Hz — the telemetry-overhead configuration. All phases also verify
// full protocol completion (HELLO_ACK .. DRAINED) and count emitted
// events.
//
// Flags:
//   --reduced     fewer clients, shorter traces (the CI smoke configuration)
//   --gate        fail (exit 1) unless ALL hold:
//                   1. chaos-phase healthy p99 frame latency <= 1.2x the
//                      healthy-only p99 (plus a 300 us absolute floor so
//                      sub-millisecond scheduler noise cannot flake CI);
//                   2. scraped-phase healthy p99 <= 1.1x the unscraped
//                      chaos p99 (same floor) — a 10 Hz scrape may not
//                      tax ingest;
//                   3. every scrape answered (zero failures);
//                   4. every healthy client in all phases completed the
//                      full protocol with the expected event count.
//   --json PATH   write {"bench":"ingest_storm","metrics":{...}} (also via
//                 the PTRACK_BENCH_JSON environment variable)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "net/chaos.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;
using Clock = std::chrono::steady_clock;

namespace {

struct HealthyOutcome {
  bool ok = false;
  std::vector<double> frame_us;  ///< per-SAMPLES-frame handoff latency
  std::size_t events = 0;
  double wall_s = 0.0;
};

/// An instrumented healthy device: nonblocking socket, every SAMPLES frame
/// timed from first write attempt to full handoff, EVENT frames drained
/// between writes, BYE -> DRAINED at the end.
HealthyOutcome run_timed_client(const net::Endpoint& ep, std::uint64_t sid,
                                const imu::Trace& trace) {
  HealthyOutcome out;
  const auto start = Clock::now();
  net::Socket sock = net::connect_to(ep);
  sock.set_nonblocking(true);

  net::FrameDecoder decoder;
  std::vector<std::uint8_t> rx(16 * 1024);
  bool acked = false;
  bool drained = false;
  bool failed = false;
  std::size_t events = 0;
  const auto pump = [&] {
    while (!failed) {
      std::ptrdiff_t n = 0;
      try {
        n = sock.read_some(rx);
      } catch (const Error&) {
        failed = true;
        return;
      }
      if (n < 0) return;   // nothing pending
      if (n == 0) {        // server closed
        failed = !drained;
        return;
      }
      decoder.feed({rx.data(), static_cast<std::size_t>(n)});
      net::Frame frame;
      while (decoder.next(frame) == net::DecodeStatus::kFrame) {
        if (frame.type == net::FrameType::kHelloAck) acked = true;
        if (frame.type == net::FrameType::kError) failed = true;
        if (frame.type == net::FrameType::kDrained) drained = true;
        if (frame.type == net::FrameType::kEvent) {
          std::vector<core::StepEvent> ev;
          if (net::parse_events(frame.payload, ev)) events += ev.size();
        }
      }
      if (decoder.error() != net::ErrorCode::kNone) failed = true;
    }
  };
  const auto send_timed = [&](std::span<const std::uint8_t> bytes,
                              bool timed) {
    const auto t0 = Clock::now();
    std::span<const std::uint8_t> rest = bytes;
    while (!rest.empty() && !failed) {
      std::size_t w = 0;
      try {
        w = sock.write_some(rest);
      } catch (const Error&) {
        failed = true;
        return;
      }
      rest = rest.subspan(w);
      pump();
      if (w == 0) std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    if (timed) {
      out.frame_us.push_back(
          1e6 *
          std::chrono::duration<double>(Clock::now() - t0).count());
    }
  };

  std::vector<std::uint8_t> tx;
  net::append_hello(tx, net::Hello{sid, trace.fs(), 0});
  send_timed(tx, false);
  constexpr std::size_t kPerFrame = 256;
  for (std::size_t i = 0; i < trace.size() && !failed; i += kPerFrame) {
    const std::size_t n = std::min(kPerFrame, trace.size() - i);
    tx.clear();
    net::append_samples(
        tx, std::span<const imu::Sample>(trace.samples().data() + i, n));
    send_timed(tx, true);
  }
  tx.clear();
  net::append_bye(tx);
  send_timed(tx, false);
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  while (!drained && !failed && Clock::now() < deadline) {
    pump();
    if (!drained) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  out.ok = acked && drained && !failed;
  out.events = events;
  out.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

struct PhaseResult {
  std::string name;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double events_per_s = 0.0;
  std::size_t events = 0;
  std::size_t healthy_ok = 0;
  std::size_t chaos_runs = 0;
  std::size_t scrapes = 0;
  std::size_t scrape_failures = 0;
  double wall_s = 0.0;
};

PhaseResult run_phase(const std::string& name, const net::Endpoint& ep,
                      const std::vector<imu::Trace>& traces,
                      std::size_t chaos_threads,
                      const net::Endpoint* admin_ep = nullptr) {
  PhaseResult res;
  res.name = name;
  const auto start = Clock::now();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> scrapes{0};
  std::atomic<std::size_t> scrape_failures{0};
  std::thread scraper;
  if (admin_ep != nullptr) {
    // 10 Hz rotation over every admin route — the documented operating
    // point of an external metrics collector plus a ptrack_top.
    scraper = std::thread([&] {
      const char* kTargets[] = {"/metrics", "/metrics.json", "/sessions",
                                "/healthz"};
      std::size_t k = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const net::HttpGetResult r =
            net::http_get(*admin_ep, kTargets[k++ % std::size(kTargets)]);
        scrapes.fetch_add(1, std::memory_order_relaxed);
        if (!r.ok || r.status != 200 || r.body.empty()) {
          scrape_failures.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }
  std::atomic<std::size_t> chaos_runs{0};
  std::vector<std::thread> chaos;
  const net::ChaosMode kModes[] = {
      net::ChaosMode::kTruncatedFrame,
      net::ChaosMode::kCorruptMagic,
      net::ChaosMode::kCorruptPayload,
      net::ChaosMode::kOversizedFrame,
      net::ChaosMode::kBadVersion,
      net::ChaosMode::kSlowloris,
      net::ChaosMode::kMidStreamDisconnect,
      net::ChaosMode::kSamplesBeforeHello,
  };
  for (std::size_t i = 0; i < chaos_threads; ++i) {
    chaos.emplace_back([&, i] {
      std::size_t k = i;
      while (!stop.load(std::memory_order_relaxed)) {
        net::ChaosConfig ccfg;
        ccfg.mode = kModes[k++ % std::size(kModes)];
        ccfg.session_id = 0xC4A05000 + i;
        ccfg.slowloris_duration_s = 0.5;
        ccfg.slowloris_byte_interval_s = 0.01;
        ccfg.response_timeout_s = 5.0;
        static_cast<void>(net::run_chaos_client(ep, ccfg));
        chaos_runs.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<HealthyOutcome> outcomes(traces.size());
  std::vector<std::thread> healthy;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    healthy.emplace_back([&, i] {
      outcomes[i] = run_timed_client(ep, 1 + i, traces[i]);
    });
  }
  for (std::thread& t : healthy) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : chaos) t.join();
  if (scraper.joinable()) scraper.join();
  res.scrapes = scrapes.load();
  res.scrape_failures = scrape_failures.load();

  std::vector<double> all_us;
  for (const HealthyOutcome& o : outcomes) {
    res.healthy_ok += o.ok ? 1 : 0;
    res.events += o.events;
    all_us.insert(all_us.end(), o.frame_us.begin(), o.frame_us.end());
  }
  res.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  res.p50_us = percentile(all_us, 0.50);
  res.p90_us = percentile(all_us, 0.90);
  res.p99_us = percentile(all_us, 0.99);
  res.events_per_s =
      res.wall_s > 0.0 ? static_cast<double>(res.events) / res.wall_s : 0.0;
  res.chaos_runs = chaos_runs.load();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(
        argc, argv,
        {{"reduced", "fewer clients, shorter traces (CI smoke)", "", true},
         {"gate",
          "fail unless chaos leaves healthy p99 frame latency within 1.2x "
          "of the healthy-only phase and all clients complete",
          "", true},
         {"json", "output JSON path (overrides PTRACK_BENCH_JSON)", "",
          false}});
    if (args.help_requested()) {
      std::cout << args.usage("ingest_storm");
      return 0;
    }
    const bool reduced = args.get_bool("reduced");
    const bool gate = args.get_bool("gate");
    const std::size_t n_healthy = reduced ? 4 : 8;
    const std::size_t n_chaos = reduced ? 4 : 8;
    const double trace_s = reduced ? 20.0 : 60.0;

    const auto users = bench::make_users(n_healthy);
    std::vector<imu::Trace> traces;
    for (std::size_t i = 0; i < n_healthy; ++i) {
      Rng rng(bench::kBenchSeed ^ (0x1157 + i));
      traces.push_back(
          synth::synthesize(synth::Scenario::pure_walking(trace_s),
                            users[i], bench::standard_options(), rng)
              .trace);
    }

    net::ServerConfig cfg;
    cfg.stall_timeout_s = 0.5;  // reclaim chaos stalls fast enough to loop
    net::Server server(std::move(cfg));
    const net::Endpoint ep = net::Endpoint::uds(
        "/tmp/ptrack_ingest_storm_" + std::to_string(::getpid()) + ".sock");
    const net::Endpoint admin_ep = net::Endpoint::uds(
        "/tmp/ptrack_ingest_storm_" + std::to_string(::getpid()) +
        ".admin.sock");
    server.listen(ep);
    server.listen_admin(admin_ep);
    std::thread reactor([&] { server.run(); });
    while (!server.running()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    const PhaseResult a = run_phase("healthy_only", ep, traces, 0);
    const PhaseResult b = run_phase("healthy_plus_chaos", ep, traces,
                                    n_chaos);
    const PhaseResult c = run_phase("healthy_chaos_scraped", ep, traces,
                                    n_chaos, &admin_ep);
    server.request_stop();
    reactor.join();

    std::printf(
        "ingest_storm: %zu healthy x %.0f s traces, %zu chaos threads in "
        "phases B/C, 10 Hz admin scraping in phase C\n",
        n_healthy, trace_s, n_chaos);
    std::printf("  %-22s %10s %10s %10s %12s %9s %8s %6s\n", "phase",
                "p50 us", "p90 us", "p99 us", "events/s", "chaos",
                "scrapes", "ok");
    for (const PhaseResult* p : {&a, &b, &c}) {
      std::printf(
          "  %-22s %10.1f %10.1f %10.1f %12.1f %9zu %8zu %3zu/%zu\n",
          p->name.c_str(), p->p50_us, p->p90_us, p->p99_us, p->events_per_s,
          p->chaos_runs, p->scrapes, p->healthy_ok, n_healthy);
    }

    const double allowed_p99 = 1.2 * a.p99_us + 300.0;
    const bool p99_held = b.p99_us <= allowed_p99;
    const double allowed_scraped_p99 = 1.1 * b.p99_us + 300.0;
    const bool scrape_overhead_held = c.p99_us <= allowed_scraped_p99;
    const bool scrapes_ok = c.scrapes > 0 && c.scrape_failures == 0;
    const bool all_ok = a.healthy_ok == n_healthy &&
                        b.healthy_ok == n_healthy &&
                        c.healthy_ok == n_healthy;
    std::printf("  chaos p99 %.1f us vs allowed %.1f us (%s)\n", b.p99_us,
                allowed_p99, p99_held ? "ok" : "VIOLATION");
    std::printf(
        "  scraped p99 %.1f us vs allowed %.1f us (%s), %zu scrapes, "
        "%zu failed (%s)\n",
        c.p99_us, allowed_scraped_p99,
        scrape_overhead_held ? "ok" : "VIOLATION", c.scrapes,
        c.scrape_failures, scrapes_ok ? "ok" : "VIOLATION");
    const net::ServerStats stats = server.stats();

    std::string path = "BENCH_ingest.json";
    if (args.has("json")) {
      path = args.get_string("json");
    } else if (const char* env = std::getenv("PTRACK_BENCH_JSON")) {
      path = env;
    }
    {
      std::ofstream out(path);
      if (!out) throw Error("ingest_storm: cannot open " + path);
      json::Writer w(out);
      w.begin_object();
      w.key("bench").value(std::string("ingest_storm"));
      w.key("metrics").begin_object();
      w.key("reduced").value(reduced);
      w.key("healthy_clients").value(n_healthy);
      w.key("chaos_threads").value(n_chaos);
      w.key("trace_s").value(trace_s);
      for (const PhaseResult* p : {&a, &b, &c}) {
        w.key(p->name + "_frame_p50_us").value(p->p50_us);
        w.key(p->name + "_frame_p90_us").value(p->p90_us);
        w.key(p->name + "_frame_p99_us").value(p->p99_us);
        w.key(p->name + "_events_per_s").value(p->events_per_s);
        w.key(p->name + "_events").value(p->events);
        w.key(p->name + "_healthy_ok").value(p->healthy_ok);
        w.key(p->name + "_chaos_runs").value(p->chaos_runs);
        w.key(p->name + "_wall_s").value(p->wall_s);
      }
      w.key("scrapes").value(c.scrapes);
      w.key("scrape_failures").value(c.scrape_failures);
      w.key("p99_degradation_held").value(p99_held);
      w.key("scrape_overhead_held").value(scrape_overhead_held);
      w.key("all_healthy_completed").value(all_ok);
      w.key("server_accepted").value(stats.accepted);
      w.key("server_frames_rejected").value(stats.frames_rejected);
      w.key("server_evictions").value(stats.evicted_idle +
                                      stats.evicted_stall +
                                      stats.evicted_slow);
      w.end_object();
      w.end_object();
      out << '\n';
    }
    std::printf("wrote %s\n", path.c_str());

    if (gate && !(p99_held && scrape_overhead_held && scrapes_ok &&
                  all_ok)) {
      std::printf("INGEST GATE VIOLATION\n");
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "ingest_storm: " << e.what() << "\n";
    return 1;
  }
}
