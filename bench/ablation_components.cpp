// Ablation: PTrack's design components.
//
// Toggles each DESIGN.md-flagged mechanism and reports walking / stepping
// counting accuracy plus interference and spoofing robustness:
//   * Eq. (1) weighting w(nv)
//   * the quarter-period phase gate
//   * the stepping confirmation streak depth
//   * the walking hysteresis
//   * the symmetric offset variant

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct Corpus {
  std::vector<std::pair<imu::Trace, std::size_t>> walking;
  std::vector<std::pair<imu::Trace, std::size_t>> stepping;
  std::vector<imu::Trace> interference;
  std::vector<imu::Trace> spoof;
};

Corpus build(const std::vector<synth::UserProfile>& users) {
  Corpus c;
  Rng rng(bench::kBenchSeed ^ 0xab);
  for (const auto& user : users) {
    const synth::SynthResult w = synth::synthesize(
        synth::Scenario::pure_walking(60.0), user, bench::standard_options(),
        rng);
    c.walking.emplace_back(w.trace, w.truth.step_count());
    const synth::SynthResult s = synth::synthesize(
        synth::Scenario::pure_stepping(60.0), user, bench::standard_options(),
        rng);
    c.stepping.emplace_back(s.trace, s.truth.step_count());
    for (synth::ActivityKind kind :
         {synth::ActivityKind::Photo, synth::ActivityKind::Poker}) {
      c.interference.push_back(
          synth::synthesize(synth::Scenario::interference(
                                kind, 60.0, synth::Posture::Standing),
                            user, bench::standard_options(), rng)
              .trace);
    }
    c.spoof.push_back(
        synth::synthesize(synth::Scenario::interference(
                              synth::ActivityKind::Spoofer, 60.0,
                              synth::Posture::Standing),
                          user, bench::standard_options(), rng)
            .trace);
  }
  return c;
}

struct Score {
  double walk_acc = 0.0;
  double step_acc = 0.0;
  double interference = 0.0;
  double spoof = 0.0;
};

Score evaluate(const Corpus& corpus, const core::PTrackConfig& cfg) {
  core::PTrackCounterAdapter tracker(cfg);
  Score s;
  for (const auto& [trace, truth] : corpus.walking) {
    s.walk_acc += bench::count_accuracy(tracker.count_steps(trace).count, truth);
  }
  s.walk_acc /= static_cast<double>(corpus.walking.size());
  for (const auto& [trace, truth] : corpus.stepping) {
    s.step_acc += bench::count_accuracy(tracker.count_steps(trace).count, truth);
  }
  s.step_acc /= static_cast<double>(corpus.stepping.size());
  for (const imu::Trace& trace : corpus.interference) {
    s.interference += static_cast<double>(tracker.count_steps(trace).count);
  }
  s.interference /= static_cast<double>(corpus.interference.size());
  for (const imu::Trace& trace : corpus.spoof) {
    s.spoof += static_cast<double>(tracker.count_steps(trace).count);
  }
  s.spoof /= static_cast<double>(corpus.spoof.size());
  return s;
}

}  // namespace

int main() {
  print_banner(std::cout, "Ablation: PTrack component toggles");
  const Corpus corpus = build(bench::make_users(5));

  Table table({"variant", "walk acc", "step acc", "interf / 60 s",
               "spoof / 60 s"});
  const auto add = [&](const std::string& name, const core::PTrackConfig& cfg) {
    const Score s = evaluate(corpus, cfg);
    table.add_row({name, Table::num(s.walk_acc, 3), Table::num(s.step_acc, 3),
                   Table::num(s.interference, 1), Table::num(s.spoof, 1)});
  };

  add("full design", {});

  {
    core::PTrackConfig cfg;
    cfg.counter.use_weighting = false;
    add("no w(nv) weighting", cfg);
  }
  {
    core::PTrackConfig cfg;
    cfg.counter.use_phase_gate = false;
    add("no phase gate", cfg);
  }
  {
    core::PTrackConfig cfg;
    cfg.counter.walking_hysteresis = false;
    add("no walking hysteresis", cfg);
  }
  {
    core::PTrackConfig cfg;
    cfg.counter.symmetric_offset = true;
    add("symmetric offset", cfg);
  }
  {
    core::PTrackConfig cfg;
    cfg.counter.min_anterior_rms = 0.0;
    add("no anterior-energy gate", cfg);
  }
  for (std::size_t streak : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    core::PTrackConfig cfg;
    cfg.counter.streak = streak;
    add("stepping streak = " + std::to_string(streak), cfg);
  }
  table.print(std::cout);
  std::cout << "paper design: weighting on, phase gate on, streak = 3.\n";
  return 0;
}
