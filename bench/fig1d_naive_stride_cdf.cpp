// Fig. 1(d): CDF of per-step stride errors when existing stride models are
// applied *directly* to wrist data — the empirical (Weinberg) model, the
// biomechanical model fed the raw wrist bounce, and naive double
// integration. Paper: all three are wildly inaccurate (errors up to
// metres for the integral), which motivates the PTrack stride estimator.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/cdf.hpp"
#include "common/table.hpp"
#include "models/stride_baselines.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

std::vector<double> stride_errors(models::IStrideEstimator& estimator,
                                  const synth::SynthResult& r) {
  std::vector<double> errs;
  for (const models::StrideEstimate& e : estimator.estimate(r.trace)) {
    double best = 1e9;
    double truth = 0.0;
    for (const synth::StepTruth& st : r.truth.steps) {
      const double dist = std::abs(st.t - e.t);
      if (dist < best) {
        best = dist;
        truth = st.stride;
      }
    }
    if (best < 0.6) errs.push_back(std::abs(e.stride - truth) * 100.0);  // cm
  }
  return errs;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Fig. 1(d): naive stride models applied to the wrist (errors, cm)");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x1d);

  std::vector<double> emp;
  std::vector<double> bio;
  std::vector<double> integ;
  for (const auto& user : users) {
    const synth::SynthResult r = synth::synthesize(
        synth::Scenario::pure_walking(90.0), user, bench::standard_options(),
        rng);
    models::EmpiricalStride e;
    models::BiomechanicalStride b(user.leg_length, 2.0);
    models::IntegralStride i;
    for (double v : stride_errors(e, r)) emp.push_back(v);
    for (double v : stride_errors(b, r)) bio.push_back(v);
    for (double v : stride_errors(i, r)) integ.push_back(v);
  }

  Table table({"model", "mean", "p50", "p90", "max", "paper"});
  const auto add = [&](const char* name, const std::vector<double>& errs,
                       const char* paper) {
    const EmpiricalCdf cdf(errs);
    table.add_row({name, Table::num(cdf.mean(), 1),
                   Table::num(cdf.quantile(0.5), 1),
                   Table::num(cdf.quantile(0.9), 1), Table::num(cdf.max(), 1),
                   paper});
  };
  add("Empirical", emp, "tens of cm");
  add("Biomechanical", bio, "tens of cm");
  add("Integral", integ, "up to ~200 cm");
  table.print(std::cout);

  std::cout << "\nCDF series (error cm -> cumulative probability):\n";
  for (const auto& [name, errs] :
       {std::pair{"Empirical", emp}, {"Biomechanical", bio},
        {"Integral", integ}}) {
    const EmpiricalCdf cdf(errs);
    std::cout << name << ": ";
    for (const auto& [x, p] : cdf.series(8)) {
      std::cout << "(" << Table::num(x, 0) << "," << Table::num(p, 2) << ") ";
    }
    std::cout << "\n";
  }
  return 0;
}
