// Fig. 8(b): PTrack with self-trained profiles ("PTrack-Automatic") vs
// manually measured profiles ("PTrack-Manual"). Paper: 5.3 cm vs 5.7 cm
// mean per-step error — the automatic profile is *slightly better* because
// manual tape measurements carry their own error, which the self-training
// avoids.

#include <iostream>

#include "bench_util.hpp"
#include "common/cdf.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "core/self_training.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

std::vector<double> run_errors(const synth::SynthResult& r,
                               const core::StrideProfile& profile) {
  core::PTrackConfig cfg;
  cfg.stride.profile = profile;
  core::PTrack tracker(cfg);
  const core::TrackResult res = tracker.process(r.trace);
  std::vector<double> errs;
  for (const core::StepEvent& e : res.events) {
    if (e.stride <= 0.0) continue;
    double best = 1e9;
    double s_true = 0.0;
    for (const synth::StepTruth& st : r.truth.steps) {
      const double dist = std::abs(st.t - e.t);
      if (dist < best) {
        best = dist;
        s_true = st.stride;
      }
    }
    if (best < 0.6) errs.push_back(std::abs(e.stride - s_true) * 100.0);
  }
  return errs;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Fig. 8(b): self-trained vs manually measured profiles");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x8b);

  std::vector<double> err_auto;
  std::vector<double> err_manual;
  std::vector<double> arm_err;
  std::vector<double> leg_err;
  for (const auto& user : users) {
    // Calibration trace (known length, e.g. GPS-measured) for
    // self-training: everyday mixed gait, so stepping segments are present
    // to anchor the arm-length search.
    const synth::SynthResult cal = synth::synthesize(
        synth::Scenario::mixed_gait(120.0), user, bench::standard_options(),
        rng);
    core::SelfTrainingResult trained;
    try {
      trained = core::self_train(cal.trace, cal.truth.total_distance());
    } catch (const Error& e) {
      std::cout << "self-training failed for a user: " << e.what() << "\n";
      continue;
    }
    arm_err.push_back(std::abs(trained.arm_length - user.arm_length) * 100.0);
    leg_err.push_back(std::abs(trained.leg_length - user.leg_length) * 100.0);

    // Evaluation walk.
    const synth::SynthResult eval = synth::synthesize(
        synth::Scenario::pure_walking(90.0), user, bench::standard_options(),
        rng);

    // Manual measurement: tape-measured by an inexperienced user — a
    // centimetre-scale reading error on each limb (paper SII).
    core::StrideProfile manual;
    manual.arm_length = user.arm_length + rng.normal(0.0, 0.02);
    manual.leg_length = user.leg_length + rng.normal(0.0, 0.025);
    manual.k = 2.0;

    core::StrideProfile automatic;
    automatic.arm_length = trained.arm_length;
    automatic.leg_length = trained.leg_length;
    automatic.k = 2.0;

    for (double e : run_errors(eval, automatic)) err_auto.push_back(e);
    for (double e : run_errors(eval, manual)) err_manual.push_back(e);
  }

  const EmpiricalCdf ca(err_auto);
  const EmpiricalCdf cm(err_manual);
  Table table({"profile", "mean", "p50", "p90", "paper mean"});
  table.add_row({"PTrack-Automatic", Table::num(ca.mean(), 1),
                 Table::num(ca.quantile(0.5), 1), Table::num(ca.quantile(0.9), 1),
                 "5.3 cm"});
  table.add_row({"PTrack-Manual", Table::num(cm.mean(), 1),
                 Table::num(cm.quantile(0.5), 1), Table::num(cm.quantile(0.9), 1),
                 "5.7 cm"});
  table.print(std::cout);
  std::cout << "self-trained profile errors: arm mean "
            << Table::num(err_auto.empty() ? 0.0
                                           : EmpiricalCdf(arm_err).mean(), 1)
            << " cm, leg mean "
            << Table::num(err_auto.empty() ? 0.0
                                           : EmpiricalCdf(leg_err).mean(), 1)
            << " cm\n";
  return 0;
}
