// Ablation: attitude-residual (gravity-leak) fraction of the synthesizer.
//
// The leak is the synthetic stand-in for imperfect platform sensor fusion
// (DESIGN.md §3). This sweep shows how the offset separation and the
// stride error respond to it — the calibration evidence for the 0.20
// default and a sensitivity statement for the reproduction as a whole.

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Ablation: attitude-leak fraction");
  const auto users = bench::make_users(4);

  Table table({"leak", "walk accuracy", "spoof / 60 s", "stride err (cm)"});
  for (double leak : {0.0, 0.1, 0.2, 0.3}) {
    Rng rng(bench::kBenchSeed ^ 0xa1);
    double acc = 0.0;
    double spoof = 0.0;
    std::vector<double> errs;
    for (const auto& user : users) {
      synth::SynthOptions opt = bench::standard_options();
      opt.attitude_leak = leak;
      const auto walk = synth::synthesize(synth::Scenario::pure_walking(60.0),
                                          user, opt, rng);
      const auto rig = synth::synthesize(
          synth::Scenario::interference(synth::ActivityKind::Spoofer, 60.0,
                                        synth::Posture::Standing),
          user, opt, rng);
      core::PTrackConfig cfg;
      cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
      core::PTrack tracker(cfg);
      const auto res = tracker.process(walk.trace);
      acc += bench::count_accuracy(res.steps, walk.truth.step_count());
      spoof += static_cast<double>(tracker.process(rig.trace).steps);
      for (const core::StepEvent& e : res.events) {
        if (e.stride <= 0.0) continue;
        double best = 1e9;
        double s_true = 0.0;
        for (const auto& st : walk.truth.steps) {
          if (std::abs(st.t - e.t) < best) {
            best = std::abs(st.t - e.t);
            s_true = st.stride;
          }
        }
        if (best < 0.6) errs.push_back(std::abs(e.stride - s_true) * 100.0);
      }
    }
    const double n = static_cast<double>(users.size());
    table.add_row({Table::num(leak, 2) + (leak == 0.2 ? " (default)" : ""),
                   Table::num(acc / n, 3), Table::num(spoof / n, 1),
                   errs.empty() ? "-" : Table::num(stats::mean(errs), 1)});
  }
  table.print(std::cout);
  return 0;
}
