// Scheduler latency benchmark: streaming hop latency with and without a
// saturating batch job on the same scheduler — the head-of-line-blocking
// regression net behind the two-lane design (DESIGN.md §18).
//
// Method: a pool of HopJob streams is driven from the main thread. Each
// measurement pushes one chunk of samples (several hops' worth) into a
// stream's mailbox and times push -> wait_idle, i.e. the full
// submit / queue-wait / execute / completion-notify path through the
// scheduler's latency lane. The distribution is taken twice:
//
//   uncontended  workers are otherwise idle (parked between chunks);
//   contended    a background thread loops BatchRunner::run over a batch
//                of short synthetic traces on the SAME scheduler
//                (dispatch-only, so the load lives entirely on the
//                throughput lane and the workers stay 100% busy).
//
// The claimer design bounds what contention may add: a hop waits for at
// most the batch trace currently executing, never for the queue behind
// it. The gate checks exactly that bound:
//
//   contended hop p99 <= 2 x uncontended hop p99
//
// A separate steal-probe phase (a second two-worker scheduler with a
// deliberately pinned backlog) exercises steal-half so the exported
// metrics snapshot always carries nonzero steal counters for
// `obs_check --sched`, independent of --workers.
//
// Flags:
//   --reduced          fewer streams/rounds (the CI smoke configuration)
//   --gate             fail (exit 1) unless contended p99 <= 2x uncontended
//   --workers N        scheduler workers (default 1: the strictest
//                      configuration — one ring, no steals to hide behind)
//   --json PATH        write {"bench":"sched_latency","metrics":{...}}
//                      (also via the PTRACK_BENCH_JSON environment variable)
//   --metrics-out PATH write the ptrack.metrics.v1 obs snapshot for
//                      `obs_check --metrics PATH --sched`

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/hop_job.hpp"
#include "core/streaming.hpp"
#include "obs/export.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/hop_executor.hpp"
#include "runtime/scheduler.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct PhaseResult {
  std::string name;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  std::size_t samples = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

PhaseResult summarize(const std::string& name, std::vector<double> lat_us) {
  PhaseResult r;
  r.name = name;
  r.samples = lat_us.size();
  double sum = 0.0;
  for (const double us : lat_us) sum += us;
  r.mean_us =
      lat_us.empty() ? 0.0 : sum / static_cast<double>(lat_us.size());
  r.p50_us = percentile(lat_us, 0.50);
  r.p90_us = percentile(lat_us, 0.90);
  r.p99_us = percentile(lat_us, 0.99);
  return r;
}

/// One live stream: a HopJob plus its replay cursor into the shared trace.
struct Stream {
  std::unique_ptr<core::HopJob> job;
  std::size_t cursor = 0;
};

/// Pushes the next `chunk` samples of `trace` into the stream and blocks
/// until the hops they trigger have executed; returns the wall time in us.
double measure_chunk(Stream& s, const imu::Trace& trace, std::size_t chunk) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::size_t end = std::min(s.cursor + chunk, trace.size());
  for (; s.cursor < end; ++s.cursor) s.job->push(trace[s.cursor]);
  s.job->wait_idle();
  return 1e6 *
         std::chrono::duration<double>(clock::now() - t0).count();
}

/// Runs one measurement phase: `rounds` chunks per stream, round-robin
/// across streams so every stream's affinity target stays warm. The pause
/// between measurements models a live stream's hop cadence — and hands
/// the throughput lane a window in which batch work actually executes, so
/// contended-phase hops genuinely land mid-batch-item instead of
/// monopolizing the workers.
PhaseResult run_phase(const std::string& name, std::vector<Stream>& streams,
                      const imu::Trace& trace, std::size_t chunk,
                      std::size_t rounds, std::size_t pause_us) {
  std::vector<double> lat_us;
  lat_us.reserve(rounds * streams.size());
  for (std::size_t r = 0; r < rounds; ++r) {
    for (Stream& s : streams) {
      lat_us.push_back(measure_chunk(s, trace, chunk));
      std::this_thread::sleep_for(std::chrono::microseconds(pause_us));
    }
  }
  return summarize(name, std::move(lat_us));
}

/// Best of `repeats` passes by p99 — the same noise-shedding idiom as
/// micro_streaming's best-of-repeats: an OS-level stall (this box shares
/// its cores) lands in one repeat, not all of them, while real queueing
/// shows up in every pass.
PhaseResult run_phase_best(const std::string& name,
                           std::vector<Stream>& streams,
                           const imu::Trace& trace, std::size_t chunk,
                           std::size_t rounds, std::size_t pause_us,
                           std::size_t repeats) {
  PhaseResult best;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    PhaseResult r = run_phase(name, streams, trace, chunk, rounds, pause_us);
    if (rep == 0 || r.p99_us < best.p99_us) best = r;
  }
  return best;
}

/// Guarantees steal-half (and its counters) fire at least once in this
/// process: a two-worker scheduler with a backlog pinned onto one ring.
/// Returns the number of stolen tasks observed.
std::uint64_t steal_probe() {
  runtime::Scheduler sched({.workers = 2});
  std::atomic<int> remaining{64};
  for (int i = 0; i < 64; ++i) {
    runtime::Task t;
    t.fn = [](void* ctx, std::size_t, std::uint64_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      static_cast<std::atomic<int>*>(ctx)->fetch_sub(1);
    };
    t.ctx = &remaining;
    sched.submit(runtime::Lane::kThroughput, t, /*affinity=*/0);
  }
  while (remaining.load() != 0) std::this_thread::yield();
  return sched.stats().steals;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(
        argc, argv,
        {{"reduced", "fewer streams and rounds (CI smoke)", "", true},
         {"gate",
          "fail unless contended hop p99 <= 2x uncontended hop p99",
          "", true},
         {"workers", "scheduler worker threads", "1", false},
         {"json", "output JSON path (overrides PTRACK_BENCH_JSON)", "",
          false},
         {"metrics-out",
          "write the obs metrics snapshot (ptrack.metrics.v1) here for "
          "obs_check --sched",
          "", false}});
    if (args.help_requested()) {
      std::cout << args.usage("sched_latency");
      return 0;
    }
    const bool reduced = args.get_bool("reduced");
    const bool gate = args.get_bool("gate");
    const auto workers =
        static_cast<std::size_t>(args.get_int("workers"));
    if (workers < 1) throw Error("sched_latency: --workers >= 1");

    const std::size_t n_streams = reduced ? 4 : 8;
    const std::size_t rounds = reduced ? 12 : 20;
    const std::size_t repeats = 3;
    // One chunk = 96 s of samples = 48 hops at the 2 s default hop: a
    // ~5 ms execution, large enough that hop work — not wake/notify fixed
    // costs or a millisecond-scale OS stall on this shared box — dominates
    // the measurement, and many times the cost of one batch trace, so the
    // one-item residual bound is visible in the ratio rather than lost in
    // noise.
    const std::size_t chunk = 9600;
    const double warm_s = 20.0;
    const double batch_trace_s = 4.0;
    const std::size_t batch_traces = 32;

    // Shared replay trace, long enough for warm-up plus both phases.
    const double fs = 100.0;
    const double trace_s =
        warm_s +
        static_cast<double>(2 * repeats * rounds * chunk) / fs + 10.0;
    Rng rng(bench::kBenchSeed ^ 0x5c4ed);
    const auto user = bench::make_users(1).front();
    const imu::Trace trace =
        synth::synthesize(synth::Scenario::pure_walking(trace_s), user,
                          bench::standard_options(), rng)
            .trace;
    // Short traces for the saturating batch load: each claimer execution
    // is one trace, so their length sets the residual a contended hop can
    // be stuck behind.
    Rng batch_rng(bench::kBenchSeed ^ 0xba7c4);
    std::vector<imu::Trace> batch_items;
    batch_items.reserve(batch_traces);
    for (std::size_t i = 0; i < batch_traces; ++i) {
      batch_items.push_back(
          synth::synthesize(synth::Scenario::pure_walking(batch_trace_s),
                            user, bench::standard_options(), batch_rng)
              .trace);
    }

    const std::uint64_t stolen = steal_probe();

    runtime::Scheduler sched({.workers = workers});
    runtime::SchedulerHopExecutor exec(sched);
    std::vector<Stream> streams;
    streams.reserve(n_streams);
    for (std::size_t i = 0; i < n_streams; ++i) {
      Stream s;
      s.job = std::make_unique<core::HopJob>(exec, /*stream_id=*/i, fs);
      streams.push_back(std::move(s));
    }

    // Warm-up: size every mailbox/ring/tracker buffer and register every
    // metric handle before anything is timed.
    for (Stream& s : streams) {
      measure_chunk(s, trace, static_cast<std::size_t>(warm_s * fs));
    }

    // Identical cadence in both phases so wake-from-park costs cancel in
    // the ratio.
    const std::size_t pause_us = 500;
    const PhaseResult uncontended = run_phase_best(
        "uncontended", streams, trace, chunk, rounds, pause_us, repeats);

    // Saturating batch load: a background thread loops positional batch
    // runs on this scheduler's throughput lane. Dispatch-only, so the
    // load is all claimer tasks — the shape the lane priority defends
    // against — and the loop thread itself stays off the CPU.
    std::atomic<bool> stop_batch{false};
    std::atomic<std::uint64_t> batch_runs{0};
    runtime::BatchRunner runner(
        {}, {.scheduler = &sched, .caller_participates = false});
    std::thread batcher([&] {
      while (!stop_batch.load(std::memory_order_relaxed)) {
        const auto results = runner.run(batch_items);
        batch_runs.fetch_add(results.size(), std::memory_order_relaxed);
      }
    });
    // Only measure once the load is demonstrably live.
    while (batch_runs.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    using clock = std::chrono::steady_clock;
    const auto c0 = clock::now();
    const PhaseResult contended = run_phase_best(
        "contended", streams, trace, chunk, rounds, pause_us, repeats);
    const double contended_s =
        std::chrono::duration<double>(clock::now() - c0).count();
    stop_batch.store(true, std::memory_order_relaxed);
    batcher.join();
    const double batch_traces_per_s =
        static_cast<double>(batch_runs.load()) / contended_s;

    for (Stream& s : streams) s.job->wait_idle();
    const auto stats = sched.stats();

    const bool latency_gate_ok =
        contended.p99_us <= 2.0 * uncontended.p99_us;

    std::printf(
        "sched_latency: %zu workers, %zu streams, %zu-sample chunks, %zu "
        "rounds/phase\n",
        workers, n_streams, chunk, rounds);
    std::printf("  %-12s %10s %10s %10s %10s %8s\n", "phase", "p50 us",
                "p90 us", "p99 us", "mean us", "n");
    for (const PhaseResult* r : {&uncontended, &contended}) {
      std::printf("  %-12s %10.1f %10.1f %10.1f %10.1f %8zu\n",
                  r->name.c_str(), r->p50_us, r->p90_us, r->p99_us,
                  r->mean_us, r->samples);
    }
    std::printf(
        "  batch load: %.1f traces/s sustained during the contended "
        "phase\n",
        batch_traces_per_s);
    std::printf(
        "  sched: %llu hops, %llu batch tasks, %llu parks, %llu wakeups, "
        "%llu steals (probe %llu), %llu spills\n",
        static_cast<unsigned long long>(stats.submitted_latency),
        static_cast<unsigned long long>(stats.submitted_throughput),
        static_cast<unsigned long long>(stats.parks),
        static_cast<unsigned long long>(stats.wakeups),
        static_cast<unsigned long long>(stats.steals),
        static_cast<unsigned long long>(stolen),
        static_cast<unsigned long long>(stats.spills));
    std::printf("  contended p99 vs 2x uncontended p99: %.1f us vs %.1f us "
                "(%s)\n",
                contended.p99_us, 2.0 * uncontended.p99_us,
                latency_gate_ok ? "ok" : "VIOLATION");

    std::string path = "BENCH_sched.json";
    if (args.has("json")) {
      path = args.get_string("json");
    } else if (const char* env = std::getenv("PTRACK_BENCH_JSON")) {
      path = env;
    }
    {
      std::ofstream out(path);
      if (!out) throw Error("sched_latency: cannot open " + path);
      json::Writer w(out);
      w.begin_object();
      w.key("bench").value(std::string("sched_latency"));
      w.key("metrics").begin_object();
      w.key("reduced").value(reduced);
      w.key("workers").value(workers);
      w.key("streams").value(n_streams);
      w.key("chunk_samples").value(chunk);
      w.key("rounds").value(rounds);
      for (const PhaseResult* r : {&uncontended, &contended}) {
        w.key(r->name + "_hop_p50_us").value(r->p50_us);
        w.key(r->name + "_hop_p90_us").value(r->p90_us);
        w.key(r->name + "_hop_p99_us").value(r->p99_us);
        w.key(r->name + "_hop_mean_us").value(r->mean_us);
      }
      w.key("batch_traces_per_s").value(batch_traces_per_s);
      w.key("sched_parks").value(stats.parks);
      w.key("sched_wakeups").value(stats.wakeups);
      w.key("sched_steals_probe").value(stolen);
      w.key("sched_spills").value(stats.spills);
      w.key("latency_gate_ok").value(latency_gate_ok);
      w.end_object();
      w.end_object();
      out << '\n';
    }
    std::printf("wrote %s\n", path.c_str());

    if (args.has("metrics-out")) {
      const std::string mpath = args.get_string("metrics-out");
      std::ofstream mout(mpath);
      if (!mout) throw Error("sched_latency: cannot open " + mpath);
      obs::write_metrics_document(mout);
      std::printf("wrote %s\n", mpath.c_str());
    }

    if (gate && !latency_gate_ok) {
      std::printf("SCHED GATE VIOLATION\n");
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "sched_latency: " << e.what() << "\n";
    return 1;
  }
}
