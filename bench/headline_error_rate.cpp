// Headline reproduction (paper abstract): "steps can be accurately counted
// by PTrack, achieving an error rate as low as 0.02 with extensive
// interfering activities".
//
// Simulates the paper's month-scale protocol in compressed form: long
// sessions interleaving every gait type with every interfering activity,
// across a user cohort, and reports each counter's total step error rate
// |counted - true| / true.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "models/montage.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::Scenario daily_session(Rng& rng) {
  // ~13 minutes mixing commutes, desk time, meals and breaks.
  synth::Scenario s;
  s.walk(90.0)
      .activity(synth::ActivityKind::Gaming, 90.0, synth::Posture::Seated)
      .walk(60.0)
      .activity(synth::ActivityKind::Eating, 120.0, synth::Posture::Seated)
      .step(60.0)
      .activity(synth::ActivityKind::Photo, 60.0, synth::Posture::Standing)
      .walk(75.0)
      .activity(synth::ActivityKind::Poker, 120.0, synth::Posture::Seated)
      .step(45.0)
      .activity(synth::ActivityKind::Idle, 60.0, synth::Posture::Seated)
      .walk(rng.uniform(45.0, 90.0));
  return s;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Headline: step error rate over long mixed sessions");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x4eadULL);

  double truth_total = 0.0;
  double gfit_err = 0.0;
  double mtage_err = 0.0;
  double ptrack_err = 0.0;
  double minutes = 0.0;
  for (const auto& user : users) {
    for (int session = 0; session < 2; ++session) {
      const synth::Scenario scenario = daily_session(rng);
      const synth::SynthResult r =
          synth::synthesize(scenario, user, bench::standard_options(), rng);
      minutes += r.trace.duration() / 60.0;
      const double truth = static_cast<double>(r.truth.step_count());
      truth_total += truth;

      models::PeakCounter gfit(models::gfit_watch_config());
      models::MontageCounter mtage;
      core::PTrackConfig cfg;
      cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
      core::PTrackCounterAdapter ptrack(cfg);

      gfit_err += std::abs(
          static_cast<double>(gfit.count_steps(r.trace).count) - truth);
      mtage_err += std::abs(
          static_cast<double>(mtage.count_steps(r.trace).count) - truth);
      ptrack_err += std::abs(
          static_cast<double>(ptrack.count_steps(r.trace).count) - truth);
    }
  }

  Table table({"counter", "error rate", "paper"});
  table.add_row({"GFit", Table::num(gfit_err / truth_total, 3), "-"});
  table.add_row({"Mtage", Table::num(mtage_err / truth_total, 3), "-"});
  table.add_row({"PTrack", Table::num(ptrack_err / truth_total, 3),
                 "as low as 0.02"});
  table.print(std::cout);
  std::cout << minutes << " minutes of mixed sessions over " << users.size()
            << " users, " << static_cast<long long>(truth_total)
            << " true steps; error rate = sum |counted - true| / sum true.\n";
  return 0;
}
