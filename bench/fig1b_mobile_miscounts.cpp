// Fig. 1(b): phone pedometer apps (with and without the motion
// coprocessor) mis-triggered by taking photos and playing phone games,
// standing and seated. Paper: 27-56 false steps in 2 minutes.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "models/gfit.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Fig. 1(b): phone pedometers mis-triggered in 2 min");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x1b);

  Table table({"activity", "posture", "Coprocessor", "Software", "paper"});
  for (synth::ActivityKind kind :
       {synth::ActivityKind::Photo, synth::ActivityKind::Gaming}) {
    for (synth::Posture posture :
         {synth::Posture::Standing, synth::Posture::Seated}) {
      double copro = 0;
      double soft = 0;
      for (const auto& user : users) {
        const synth::SynthResult r = synth::synthesize(
            synth::Scenario::interference(kind, 120.0, posture), user,
            bench::standard_options(), rng);
        models::PeakCounter c(models::phone_coprocessor_config());
        models::PeakCounter s(models::phone_software_config());
        copro += static_cast<double>(c.count_steps(r.trace).count);
        soft += static_cast<double>(s.count_steps(r.trace).count);
      }
      const double n = static_cast<double>(users.size());
      table.add_row({std::string(to_string(kind)),
                     posture == synth::Posture::Standing ? "standing (1)"
                                                         : "seated (2)",
                     Table::num(copro / n, 1), Table::num(soft / n, 1),
                     "27-56"});
    }
  }
  table.print(std::cout);
  std::cout << "mean false steps per 2 min over " << users.size()
            << " users; the counter should stay at 0.\n";
  return 0;
}
