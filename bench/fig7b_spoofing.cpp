// Fig. 7(b): vulnerability to the spoofing rig over 60 s. Paper:
// GFit/Mtage/SCAR tick 79/78/61 times; PTrack ticks 0, making its count
// trustworthy for insurance/finance-grade uses.

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "models/montage.hpp"
#include "models/scar.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  print_banner(std::cout, "Fig. 7(b): spoofed step counts in 60 s");
  const auto users = bench::make_users(6);
  Rng rng(bench::kBenchSeed ^ 0x7b);

  double gfit = 0;
  double mtage = 0;
  double scar = 0;
  double ptrack = 0;
  for (const auto& user : users) {
    const synth::SynthResult r = synth::synthesize(
        synth::Scenario::interference(synth::ActivityKind::Spoofer, 60.0,
                                      synth::Posture::Standing),
        user, bench::standard_options(), rng);
    models::PeakCounter g(models::gfit_watch_config());
    models::MontageCounter m;
    Rng scar_rng = rng.fork();
    models::ScarCounter s(
        bench::train_scar(user,
                          {synth::ActivityKind::Walking,
                           synth::ActivityKind::Stepping,
                           synth::ActivityKind::Eating,
                           synth::ActivityKind::Poker,
                           synth::ActivityKind::Gaming},
                          40.0, scar_rng),
        bench::scar_gait_labels());
    core::PTrackCounterAdapter p;
    gfit += static_cast<double>(g.count_steps(r.trace).count);
    mtage += static_cast<double>(m.count_steps(r.trace).count);
    scar += static_cast<double>(s.count_steps(r.trace).count);
    ptrack += static_cast<double>(p.count_steps(r.trace).count);
  }
  const double n = static_cast<double>(users.size());
  Table table({"counter", "spoofed steps / 60 s", "paper"});
  table.add_row({"GFit", Table::num(gfit / n, 1), "79"});
  table.add_row({"Mtage", Table::num(mtage / n, 1), "78"});
  table.add_row({"SCAR", Table::num(scar / n, 1), "61"});
  table.add_row({"PTrack", Table::num(ptrack / n, 1), "0"});
  table.print(std::cout);
  std::cout << "the spoofer's two projections are perfectly synchronized\n"
               "(rigid single-DOF), so PTrack's offset test rejects every\n"
               "cycle; its clean periodicity still passes C > 0, but the\n"
               "quarter-period phase gate fails (lag = 0).\n";
  return 0;
}
