// Microbenchmarks (google-benchmark): throughput of the DSP kernels and of
// the full PTrack pipeline. A smartwatch streams 100 samples/s, so a
// pipeline that processes minutes of trace in milliseconds leaves orders
// of magnitude of headroom for wearable-class CPUs.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/ptrack.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/integrate.hpp"
#include "dsp/projection.hpp"
#include "models/gfit.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

const synth::SynthResult& walking_minute() {
  static const synth::SynthResult r = [] {
    Rng rng(bench::kBenchSeed ^ 0xbeef);
    const auto user = bench::make_users(1).front();
    return synth::synthesize(synth::Scenario::pure_walking(60.0), user,
                             bench::standard_options(), rng);
  }();
  return r;
}

void BM_ButterworthFiltfilt(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const auto cascade = dsp::butterworth_lowpass(4, 3.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::filtfilt(cascade, xs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_ButterworthFiltfilt);

void BM_Projection(benchmark::State& state) {
  const auto vectors = walking_minute().trace.accel_vectors();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::project(vectors, 100.0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(vectors.size()));
}
BENCHMARK(BM_Projection);

void BM_Fft4096(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::span<const double> head(xs.data(), 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::magnitude_spectrum(head));
  }
}
BENCHMARK(BM_Fft4096);

void BM_AutocorrCycle(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::span<const double> cycle(xs.data(), 110);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::autocorr_at(cycle, 55));
  }
}
BENCHMARK(BM_AutocorrCycle);

void BM_MeanRemovalIntegration(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::span<const double> seg(xs.data(), 55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::net_displacement(seg, 0.01));
  }
}
BENCHMARK(BM_MeanRemovalIntegration);

void BM_GfitCounterMinute(benchmark::State& state) {
  const imu::Trace& trace = walking_minute().trace;
  for (auto _ : state) {
    models::PeakCounter counter(models::gfit_watch_config());
    benchmark::DoNotOptimize(counter.count_steps(trace));
  }
}
BENCHMARK(BM_GfitCounterMinute);

void BM_PTrackPipelineMinute(benchmark::State& state) {
  const imu::Trace& trace = walking_minute().trace;
  for (auto _ : state) {
    core::PTrack tracker;
    benchmark::DoNotOptimize(tracker.process(trace));
  }
}
BENCHMARK(BM_PTrackPipelineMinute);

void BM_SynthesizeMinute(benchmark::State& state) {
  const auto user = bench::make_users(1).front();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(synth::synthesize(
        synth::Scenario::pure_walking(60.0), user, bench::standard_options(),
        rng));
  }
}
BENCHMARK(BM_SynthesizeMinute);

}  // namespace

BENCHMARK_MAIN();
