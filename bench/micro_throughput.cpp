// Microbenchmarks (google-benchmark): throughput of the DSP kernels and of
// the full PTrack pipeline. A smartwatch streams 100 samples/s, so a
// pipeline that processes minutes of trace in milliseconds leaves orders
// of magnitude of headroom for wearable-class CPUs.
//
// Besides the console table, the binary writes BENCH_throughput.json
// (override the path with the PTRACK_BENCH_JSON environment variable) in
// the shared bench schema {"bench": ..., "metrics": {...}}: one record per
// benchmark with items/sec and ns/iteration plus the observability
// counters accumulated over the run, so the perf trajectory is
// machine-trackable across PRs.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "core/ptrack.hpp"
#include "obs/metrics.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/integrate.hpp"
#include "dsp/projection.hpp"
#include "dsp/simd.hpp"
#include "dsp/workspace.hpp"
#include "models/gfit.hpp"
#include "runtime/batch_runner.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

const synth::SynthResult& walking_minute() {
  static const synth::SynthResult r = [] {
    Rng rng(bench::kBenchSeed ^ 0xbeef);
    const auto user = bench::make_users(1).front();
    return synth::synthesize(synth::Scenario::pure_walking(60.0), user,
                             bench::standard_options(), rng);
  }();
  return r;
}

/// Independent one-minute walking traces for the batch-scaling benchmark
/// (distinct users — trace lengths and content differ realistically).
const std::vector<imu::Trace>& walking_batch() {
  static const std::vector<imu::Trace> traces = [] {
    const std::size_t kTraces = 8;
    std::vector<imu::Trace> out;
    out.reserve(kTraces);
    const auto users = bench::make_users(kTraces);
    for (std::size_t i = 0; i < kTraces; ++i) {
      Rng rng(bench::kBenchSeed ^ (0x5a5a + i));
      out.push_back(synth::synthesize(synth::Scenario::pure_walking(60.0),
                                      users[i], bench::standard_options(), rng)
                        .trace);
    }
    return out;
  }();
  return traces;
}

void BM_ButterworthFiltfilt(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const auto cascade = dsp::butterworth_lowpass(4, 3.0, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::filtfilt(cascade, xs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_ButterworthFiltfilt);

void BM_ButterworthFiltfiltWorkspace(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const auto cascade = dsp::butterworth_lowpass(4, 3.0, 100.0);
  dsp::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::filtfilt(cascade, xs, 64, ws));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_ButterworthFiltfiltWorkspace);

// SIMD micro-kernels, arg 0 = forced scalar fallback, arg 1 = detected ISA:
// the kernel-level record of the vector win in BENCH_throughput.json. The
// 3-channel lane-parallel gravity filter is the per-hop dominant cost
// (estimate_up over the 20 s axis window), so it gets scalar/vector arms in
// both precisions; axis_project is the widest pure-map kernel.
void BM_FiltfiltMulti3(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::size_t n = 2000;
  const std::array<std::span<const double>, 3> chans{
      std::span<const double>(xs.data(), n),
      std::span<const double>(xs.data() + n, n),
      std::span<const double>(xs.data() + 2 * n, n)};
  const auto cascade = dsp::butterworth_lowpass(2, 0.3, 100.0);
  dsp::Workspace ws;
  dsp::simd::force_isa(state.range(0) != 0 ? dsp::simd::detected()
                                           : dsp::simd::Isa::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::filtfilt_multi_mean(cascade, chans, 64, ws));
  }
  dsp::simd::force_isa(dsp::simd::detected());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(3 * n));
}
BENCHMARK(BM_FiltfiltMulti3)->ArgName("simd")->Arg(0)->Arg(1);

void BM_FiltfiltMulti3F32(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::size_t n = 2000;
  std::vector<float> xf(3 * n);
  dsp::simd::narrow({xs.data(), 3 * n}, xf);
  const std::array<std::span<const float>, 3> chans{
      std::span<const float>(xf.data(), n),
      std::span<const float>(xf.data() + n, n),
      std::span<const float>(xf.data() + 2 * n, n)};
  const auto cascade = dsp::butterworth_lowpass(2, 0.3, 100.0);
  dsp::Workspace ws;
  dsp::simd::force_isa(state.range(0) != 0 ? dsp::simd::detected()
                                           : dsp::simd::Isa::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::filtfilt_multif_mean(cascade, chans, 64, ws));
  }
  dsp::simd::force_isa(dsp::simd::detected());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(3 * n));
}
BENCHMARK(BM_FiltfiltMulti3F32)->ArgName("simd")->Arg(0)->Arg(1);

void BM_AxisProject(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::size_t n = 2000;
  const std::span<const double> x(xs.data(), n);
  const std::span<const double> y(xs.data() + n, n);
  const std::span<const double> z(xs.data() + 2 * n, n);
  const Vec3 up = Vec3{0.1, 0.2, 0.97}.normalized();
  std::vector<double> out(n);
  dsp::simd::force_isa(state.range(0) != 0 ? dsp::simd::detected()
                                           : dsp::simd::Isa::kScalar);
  for (auto _ : state) {
    dsp::simd::axis_project(x, y, z, up, 9.81, out);
    benchmark::DoNotOptimize(out.data());
  }
  dsp::simd::force_isa(dsp::simd::detected());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_AxisProject)->ArgName("simd")->Arg(0)->Arg(1);

void BM_Projection(benchmark::State& state) {
  const auto vectors = walking_minute().trace.accel_vectors();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::project(vectors, 100.0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(vectors.size()));
}
BENCHMARK(BM_Projection);

void BM_Fft4096(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::span<const double> head(xs.data(), 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::magnitude_spectrum(head));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(head.size()));
}
BENCHMARK(BM_Fft4096);

void BM_AutocorrCycle(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::span<const double> cycle(xs.data(), 110);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::autocorr_at(cycle, 55));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(cycle.size()));
}
BENCHMARK(BM_AutocorrCycle);

// The gait-ID hot path of the acceptance criterion: a 60 s / 100 Hz trace,
// all lags up to 2 s. Naive = direct lag loop (the pre-FFT kernel, mean and
// variance hoisted); FFT = Wiener-Khinchin through the workspace-cached
// plan. Items = samples of the input trace.
void BM_AutocorrNaive(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::size_t max_lag = 200;  // 2 s at 100 Hz
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::autocorr_naive(xs, max_lag));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_AutocorrNaive);

void BM_AutocorrFFT(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::size_t max_lag = 200;  // 2 s at 100 Hz
  dsp::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::autocorr_fft(xs, max_lag, ws));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_AutocorrFFT);

void BM_XcorrNaive(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::span<const double> a(xs.data(), 3000);
  const std::span<const double> b(xs.data() + 3000, 3000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::xcorr_naive(a, b, 200));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size()));
}
BENCHMARK(BM_XcorrNaive);

void BM_XcorrFFT(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::span<const double> a(xs.data(), 3000);
  const std::span<const double> b(xs.data() + 3000, 3000);
  dsp::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::xcorr_fft(a, b, 200, ws));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size()));
}
BENCHMARK(BM_XcorrFFT);

void BM_MeanRemovalIntegration(benchmark::State& state) {
  const auto xs = walking_minute().trace.accel_magnitude();
  const std::span<const double> seg(xs.data(), 55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::net_displacement(seg, 0.01));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(seg.size()));
}
BENCHMARK(BM_MeanRemovalIntegration);

void BM_GfitCounterMinute(benchmark::State& state) {
  const imu::Trace& trace = walking_minute().trace;
  for (auto _ : state) {
    models::PeakCounter counter(models::gfit_watch_config());
    benchmark::DoNotOptimize(counter.count_steps(trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_GfitCounterMinute);

void BM_PTrackPipelineMinute(benchmark::State& state) {
  const imu::Trace& trace = walking_minute().trace;
  for (auto _ : state) {
    core::PTrack tracker;
    benchmark::DoNotOptimize(tracker.process(trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_PTrackPipelineMinute);

// Batch fan-out scaling: 8 one-minute traces through runtime::BatchRunner
// at 1/2/4/8 worker threads. Items = total samples in the batch. Real time
// (not CPU time) is the relevant axis for a scaling benchmark.
void BM_PipelineBatch(benchmark::State& state) {
  const std::vector<imu::Trace>& traces = walking_batch();
  int64_t total_samples = 0;
  for (const auto& t : traces) total_samples += static_cast<int64_t>(t.size());

  runtime::BatchOptions opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  runtime::BatchRunner runner({}, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(traces));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          total_samples);
}
BENCHMARK(BM_PipelineBatch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_SynthesizeMinute(benchmark::State& state) {
  const auto user = bench::make_users(1).front();
  std::uint64_t seed = 1;
  int64_t samples = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    const auto r = synth::synthesize(synth::Scenario::pure_walking(60.0), user,
                                     bench::standard_options(), rng);
    benchmark::DoNotOptimize(&r);
    samples += static_cast<int64_t>(r.trace.size());
  }
  state.SetItemsProcessed(samples);
}
BENCHMARK(BM_SynthesizeMinute);

/// Console output as usual, plus one JSON record per benchmark run with
/// the throughput counters.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      // Plain runs are recorded directly; with --benchmark_repetitions the
      // median aggregate is recorded instead (suffix "_median" in the name).
      const bool plain = run.run_type == Run::RT_Iteration;
      const bool median = run.run_type == Run::RT_Aggregate &&
                          run.aggregate_name == "median";
      if (!plain && !median) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.real_time_ns = run.GetAdjustedRealTime();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) rec.items_per_second = it->second.value;
      records_.push_back(rec);
    }
  }

  void write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "micro_throughput: cannot open " << path << "\n";
      return;
    }
    json::Writer w(out);
    w.begin_object();
    w.key("bench").value("throughput");
    w.key("metrics").begin_object();
    w.key("simd_isa").value(dsp::simd::isa_name(dsp::simd::detected()));
    w.key("benchmarks").begin_array();
    for (const Record& rec : records_) {
      w.begin_object();
      w.key("name").value(rec.name);
      w.key("items_per_second").value(rec.items_per_second);
      w.key("real_time_ns").value(rec.real_time_ns);
      w.end_object();
    }
    w.end_array();
    w.key("obs");
    obs::Registry::instance().write_json(w);
    w.end_object();
    w.end_object();
    out << '\n';
  }

 private:
  struct Record {
    std::string name;
    double items_per_second = 0.0;
    double real_time_ns = 0.0;
  };
  std::vector<Record> records_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("PTRACK_BENCH_JSON");
  reporter.write_json(path != nullptr ? path : "BENCH_throughput.json");
  benchmark::Shutdown();
  return 0;
}
