// Runtime tests: the thread pool runs every task exactly once and
// propagates failures, and BatchRunner is deterministic — the same batch
// produces bit-identical TrackResults at 1 and 8 worker threads, in input
// order, matching a direct single-threaded PTrack run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "core/ptrack.hpp"
#include "imu/trace_io.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

std::vector<imu::Trace> make_batch(std::size_t count) {
  std::vector<imu::Trace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(0x5eed + i);
    synth::UserProfile user;
    user.arm_length = 0.62 + 0.02 * static_cast<double>(i);
    user.leg_length = 0.85 + 0.015 * static_cast<double>(i);
    // Mix of activities and durations so trace lengths and content differ.
    const double dur = 20.0 + 5.0 * static_cast<double>(i % 3);
    const auto scenario = (i % 2 == 0) ? synth::Scenario::pure_walking(dur)
                                       : synth::Scenario::pure_stepping(dur);
    traces.push_back(
        synth::synthesize(scenario, user, synth::SynthOptions{}, rng).trace);
  }
  return traces;
}

void expect_identical(const core::TrackResult& a, const core::TrackResult& b) {
  EXPECT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    // Bit-identical, not merely close: determinism is the contract.
    EXPECT_EQ(a.events[i].t, b.events[i].t);
    EXPECT_EQ(a.events[i].stride, b.events[i].stride);
    EXPECT_EQ(a.events[i].type, b.events[i].type);
  }
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.cycles.size(); ++i) {
    EXPECT_EQ(a.cycles[i].begin, b.cycles[i].begin);
    EXPECT_EQ(a.cycles[i].end, b.cycles[i].end);
    EXPECT_EQ(a.cycles[i].type, b.cycles[i].type);
    EXPECT_EQ(a.cycles[i].offset, b.cycles[i].offset);
    EXPECT_EQ(a.cycles[i].half_cycle_corr, b.cycles[i].half_cycle_corr);
  }
}

}  // namespace

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  const std::size_t n_tasks = 100;  // far more tasks than workers
  std::vector<std::atomic<int>> hits(n_tasks);
  pool.run(n_tasks, [&](std::size_t task, std::size_t worker) {
    ASSERT_LT(task, n_tasks);
    ASSERT_LT(worker, pool.size());
    hits[task].fetch_add(1);
  });
  for (std::size_t i = 0; i < n_tasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  runtime::ThreadPool pool(1);
  const auto main_id = std::this_thread::get_id();
  pool.run(10, [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), main_id);
  });
}

TEST(ThreadPool, ReusableAcrossRuns) {
  runtime::ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> total{0};
    pool.run(17, [&](std::size_t task, std::size_t) {
      total.fetch_add(task + 1);
    });
    EXPECT_EQ(total.load(), 17u * 18u / 2u);
  }
}

TEST(ThreadPool, PropagatesTaskException) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(50,
               [&](std::size_t task, std::size_t) {
                 if (task == 23) throw std::runtime_error("task 23 failed");
               }),
      std::runtime_error);
  // The pool must remain usable after a failed run.
  std::atomic<int> ok{0};
  pool.run(8, [&](std::size_t, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(runtime::ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(runtime::ThreadPool::resolve_threads(0), 1u);
}

TEST(BatchRunner, MatchesDirectPipelineInInputOrder) {
  const auto traces = make_batch(5);
  runtime::BatchRunner runner({}, {.threads = 4});
  const auto results = runner.run(traces);
  ASSERT_EQ(results.size(), traces.size());

  for (std::size_t i = 0; i < traces.size(); ++i) {
    core::PTrack direct;
    const auto expected = direct.process(traces[i]);
    expect_identical(expected, results[i]);
  }
}

TEST(BatchRunner, ThreadCountDoesNotChangeResults) {
  const auto traces = make_batch(9);
  runtime::BatchRunner serial({}, {.threads = 1});
  runtime::BatchRunner wide({}, {.threads = 8});
  const auto r1 = serial.run(traces);
  const auto r8 = wide.run(traces);
  ASSERT_EQ(r1.size(), traces.size());
  ASSERT_EQ(r8.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    expect_identical(r1[i], r8[i]);
  }
  // A repeated run on a warm runner must also be identical (workspace reuse
  // must not leak state between batches).
  const auto r8_again = wide.run(traces);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    expect_identical(r8[i], r8_again[i]);
  }
}

TEST(BatchRunner, EmptyBatchYieldsEmptyResults) {
  runtime::BatchRunner runner;
  EXPECT_TRUE(runner.run({}).empty());
}

TEST(LoadTraceDir, LoadsCsvFilesSortedByName) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ptrack_test_batch_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto traces = make_batch(3);
  // Intentionally created out of order; the loader must sort by file name.
  imu::save_csv(traces[2], (dir / "c_trace.csv").string());
  imu::save_csv(traces[0], (dir / "a_trace.csv").string());
  imu::save_csv(traces[1], (dir / "b_trace.csv").string());
  {  // Non-CSV clutter must be ignored.
    std::FILE* f = std::fopen((dir / "notes.txt").string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace\n", f);
    std::fclose(f);
  }

  const auto named = runtime::load_trace_dir(dir.string());
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].name, "a_trace.csv");
  EXPECT_EQ(named[1].name, "b_trace.csv");
  EXPECT_EQ(named[2].name, "c_trace.csv");
  EXPECT_EQ(named[0].trace.size(), traces[0].size());
  EXPECT_EQ(named[1].trace.size(), traces[1].size());
  EXPECT_EQ(named[2].trace.size(), traces[2].size());

  fs::remove_all(dir);
}

TEST(LoadTraceDir, MissingDirectoryThrows) {
  EXPECT_THROW(runtime::load_trace_dir("/nonexistent/ptrack/dir"), Error);
}
