// Runtime tests: the thread pool runs every task exactly once and
// propagates failures, and BatchRunner is deterministic — the same batch
// produces bit-identical TrackResults at 1 and 8 worker threads, in input
// order, matching a direct single-threaded PTrack run. Fault isolation:
// a trace that throws in the pipeline or a CSV that fails to parse is
// reported in its own slot and the rest of the batch still completes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "core/ptrack.hpp"
#include "imu/trace_io.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

std::vector<imu::Trace> make_batch(std::size_t count) {
  std::vector<imu::Trace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(0x5eed + i);
    synth::UserProfile user;
    user.arm_length = 0.62 + 0.02 * static_cast<double>(i);
    user.leg_length = 0.85 + 0.015 * static_cast<double>(i);
    // Mix of activities and durations so trace lengths and content differ.
    const double dur = 20.0 + 5.0 * static_cast<double>(i % 3);
    const auto scenario = (i % 2 == 0) ? synth::Scenario::pure_walking(dur)
                                       : synth::Scenario::pure_stepping(dur);
    traces.push_back(
        synth::synthesize(scenario, user, synth::SynthOptions{}, rng).trace);
  }
  return traces;
}

void expect_identical(const core::TrackResult& a, const core::TrackResult& b) {
  EXPECT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    // Bit-identical, not merely close: determinism is the contract.
    EXPECT_EQ(a.events[i].t, b.events[i].t);
    EXPECT_EQ(a.events[i].stride, b.events[i].stride);
    EXPECT_EQ(a.events[i].type, b.events[i].type);
  }
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.cycles.size(); ++i) {
    EXPECT_EQ(a.cycles[i].begin, b.cycles[i].begin);
    EXPECT_EQ(a.cycles[i].end, b.cycles[i].end);
    EXPECT_EQ(a.cycles[i].type, b.cycles[i].type);
    EXPECT_EQ(a.cycles[i].offset, b.cycles[i].offset);
    EXPECT_EQ(a.cycles[i].half_cycle_corr, b.cycles[i].half_cycle_corr);
  }
}

}  // namespace

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  const std::size_t n_tasks = 100;  // far more tasks than workers
  std::vector<std::atomic<int>> hits(n_tasks);
  pool.run(n_tasks, [&](std::size_t task, std::size_t worker) {
    ASSERT_LT(task, n_tasks);
    ASSERT_LT(worker, pool.size());
    hits[task].fetch_add(1);
  });
  for (std::size_t i = 0; i < n_tasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  runtime::ThreadPool pool(1);
  const auto main_id = std::this_thread::get_id();
  pool.run(10, [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), main_id);
  });
}

TEST(ThreadPool, ReusableAcrossRuns) {
  runtime::ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> total{0};
    pool.run(17, [&](std::size_t task, std::size_t) {
      total.fetch_add(task + 1);
    });
    EXPECT_EQ(total.load(), 17u * 18u / 2u);
  }
}

TEST(ThreadPool, PropagatesTaskException) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(50,
               [&](std::size_t task, std::size_t) {
                 if (task == 23) throw std::runtime_error("task 23 failed");
               }),
      std::runtime_error);
  // The pool must remain usable after a failed run.
  std::atomic<int> ok{0};
  pool.run(8, [&](std::size_t, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(runtime::ThreadPool::resolve_threads(3), 3u);
  EXPECT_GE(runtime::ThreadPool::resolve_threads(0), 1u);
}

TEST(BatchRunner, MatchesDirectPipelineInInputOrder) {
  const auto traces = make_batch(5);
  runtime::BatchRunner runner({}, {.threads = 4});
  const auto results = runner.run(traces);
  ASSERT_EQ(results.size(), traces.size());

  for (std::size_t i = 0; i < traces.size(); ++i) {
    core::PTrack direct;
    const auto expected = direct.process(traces[i]);
    ASSERT_TRUE(results[i].has_value());
    expect_identical(expected, *results[i]);
  }
}

TEST(BatchRunner, ThreadCountDoesNotChangeResults) {
  const auto traces = make_batch(9);
  runtime::BatchRunner serial({}, {.threads = 1});
  runtime::BatchRunner wide({}, {.threads = 8});
  const auto r1 = serial.run(traces);
  const auto r8 = wide.run(traces);
  ASSERT_EQ(r1.size(), traces.size());
  ASSERT_EQ(r8.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    ASSERT_TRUE(r1[i].has_value());
    ASSERT_TRUE(r8[i].has_value());
    expect_identical(*r1[i], *r8[i]);
  }
  // A repeated run on a warm runner must also be identical (workspace reuse
  // must not leak state between batches).
  const auto r8_again = wide.run(traces);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    expect_identical(*r8[i], *r8_again[i]);
  }
}

// A trace the CSV layer accepts (all cells finite) but the pipeline rejects:
// nonphysical register-garbage magnitudes make the quality layer declare it
// unusable, and PTrack::process throws.
imu::Trace make_poison_trace() {
  std::vector<imu::Sample> samples(256);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].t = static_cast<double>(i) / 100.0;
    samples[i].accel = {1.0e9, -1.0e9, 1.0e9};
    samples[i].gyro = {1.0e9, 1.0e9, -1.0e9};
  }
  return imu::Trace(100.0, std::move(samples));
}

TEST(BatchRunner, IsolatesThrowingTraceAndCompletesTheRest) {
  auto traces = make_batch(5);
  const std::size_t poison = 2;
  traces.insert(traces.begin() + static_cast<std::ptrdiff_t>(poison),
                make_poison_trace());

  runtime::BatchRunner runner({}, {.threads = 4});
  const auto results = runner.run(traces);
  ASSERT_EQ(results.size(), traces.size());

  ASSERT_FALSE(results[poison].has_value());
  EXPECT_EQ(results[poison].error().stage,
            runtime::TraceError::Stage::Process);
  EXPECT_EQ(results[poison].error().trace, "#2");
  EXPECT_FALSE(results[poison].error().message.empty());

  // Every other slot holds exactly the result a direct run produces, in
  // input order — the failure neither shifts nor corrupts its neighbors.
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i == poison) continue;
    core::PTrack direct;
    ASSERT_TRUE(results[i].has_value()) << "slot " << i;
    expect_identical(direct.process(traces[i]), *results[i]);
  }

  // The runner (and its pool) must stay usable after a poisoned batch.
  const auto again = runner.run(make_batch(2));
  ASSERT_EQ(again.size(), 2u);
  EXPECT_TRUE(again[0].has_value());
  EXPECT_TRUE(again[1].has_value());
}

TEST(BatchRunner, EmptyBatchYieldsEmptyResults) {
  runtime::BatchRunner runner;
  EXPECT_TRUE(runner.run({}).empty());
}

TEST(LoadTraceDir, LoadsCsvFilesSortedByName) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ptrack_test_batch_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto traces = make_batch(3);
  // Intentionally created out of order; the loader must sort by file name.
  imu::save_csv(traces[2], (dir / "c_trace.csv").string());
  imu::save_csv(traces[0], (dir / "a_trace.csv").string());
  imu::save_csv(traces[1], (dir / "b_trace.csv").string());
  {  // Non-CSV clutter must be ignored.
    std::FILE* f = std::fopen((dir / "notes.txt").string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace\n", f);
    std::fclose(f);
  }

  const auto listing = runtime::load_trace_dir(dir.string());
  EXPECT_TRUE(listing.errors.empty());
  const auto& named = listing.traces;
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].name, "a_trace.csv");
  EXPECT_EQ(named[1].name, "b_trace.csv");
  EXPECT_EQ(named[2].name, "c_trace.csv");
  EXPECT_EQ(named[0].trace.size(), traces[0].size());
  EXPECT_EQ(named[1].trace.size(), traces[1].size());
  EXPECT_EQ(named[2].trace.size(), traces[2].size());

  fs::remove_all(dir);
}

TEST(LoadTraceDir, CollectsCorruptFilesInsteadOfAborting) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ptrack_test_mixed_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto traces = make_batch(2);
  imu::save_csv(traces[0], (dir / "a_good.csv").string());
  imu::save_csv(traces[1], (dir / "d_good.csv").string());
  const auto write_text = [&](const char* name, const char* text) {
    std::FILE* f = std::fopen((dir / name).string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(text, f);
    std::fclose(f);
  };
  // One file that is not a trace at all, one truncated mid-row.
  write_text("b_garbage.csv", "this,is,not\na,trace,file\n");
  write_text("c_truncated.csv",
             "t,ax,ay,az,gx,gy,gz\n100,0,0,0,0,0,0\n"
             "0,0,0,9.81,0,0,0\n0.01,0,0");

  const auto listing = runtime::load_trace_dir(dir.string());
  ASSERT_EQ(listing.traces.size(), 2u);
  EXPECT_EQ(listing.traces[0].name, "a_good.csv");
  EXPECT_EQ(listing.traces[1].name, "d_good.csv");
  ASSERT_EQ(listing.errors.size(), 2u);
  EXPECT_EQ(listing.errors[0].trace, "b_garbage.csv");
  EXPECT_EQ(listing.errors[1].trace, "c_truncated.csv");
  for (const auto& err : listing.errors) {
    EXPECT_EQ(err.stage, runtime::TraceError::Stage::Load);
    EXPECT_FALSE(err.message.empty());
  }

  fs::remove_all(dir);
}

TEST(LoadTraceDir, MissingDirectoryThrows) {
  EXPECT_THROW(runtime::load_trace_dir("/nonexistent/ptrack/dir"), Error);
}
