// Exposition-layer tests: Prometheus rendering (name mangling, label
// escaping, cumulative buckets, live-scrape self-consistency), the JSON
// metrics document, Snapshot::from_json and the delta()/quantile edge
// cases (counter wraps, vanished metrics, changed bucket layouts) that a
// long-polling ptrack_top must survive.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

using namespace ptrack;

namespace {

obs::Histogram::Snapshot make_hist(std::vector<double> bounds,
                                   std::vector<std::uint64_t> counts,
                                   double sum) {
  obs::Histogram::Snapshot h;
  h.bounds = std::move(bounds);
  h.counts = std::move(counts);
  h.sum = sum;
  h.count = 0;
  for (const std::uint64_t c : h.counts) h.count += c;
  return h;
}

}  // namespace

TEST(ObsExport, PromMetricNameManglesDots) {
  EXPECT_EQ(obs::prom_metric_name("ptrack.net.bytes.in"),
            "ptrack_net_bytes_in");
  EXPECT_EQ(obs::prom_metric_name("already_flat"), "already_flat");
}

TEST(ObsExport, PromEscapeLabel) {
  EXPECT_EQ(obs::prom_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prom_escape_label("a\nb"), "a\\nb");
}

TEST(ObsExport, EmptySnapshotRendersNothing) {
  obs::Snapshot snap;
  std::ostringstream os;
  obs::write_prometheus(os, snap);
  EXPECT_TRUE(os.str().empty());
}

TEST(ObsExport, PrometheusCountersAndGauges) {
  obs::Snapshot snap;
  snap.counters["ptrack.test.export.hits"] = 42;
  snap.gauges["ptrack.test.export.level"] = 2.5;
  std::ostringstream os;
  obs::write_prometheus(os, snap);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE ptrack_test_export_hits counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptrack_test_export_hits 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ptrack_test_export_level gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptrack_test_export_level 2.5\n"), std::string::npos);
}

TEST(ObsExport, PrometheusHistogramCumulativeAndSelfConsistent) {
  obs::Snapshot snap;
  // Per-bucket counts 3,2,0 plus overflow 1 -> cumulative 3,5,5, +Inf 6.
  snap.histograms["ptrack.test.export.lat_us"] =
      make_hist({10.0, 100.0, 1000.0}, {3, 2, 0, 1}, 512.0);
  std::ostringstream os;
  obs::write_prometheus(os, snap);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE ptrack_test_export_lat_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptrack_test_export_lat_us_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptrack_test_export_lat_us_bucket{le=\"100\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptrack_test_export_lat_us_bucket{le=\"1000\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptrack_test_export_lat_us_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("ptrack_test_export_lat_us_sum 512\n"),
            std::string::npos);
  // _count is derived from the buckets, so it always equals +Inf — the
  // invariant a live scrape must keep even while writers race.
  EXPECT_NE(text.find("ptrack_test_export_lat_us_count 6\n"),
            std::string::npos);
}

TEST(ObsExport, DeltaRatesAndWindowedPercentiles) {
  obs::Snapshot prev, cur;
  prev.taken_at_s = 10.0;
  cur.taken_at_s = 12.0;
  prev.counters["ptrack.test.export.c"] = 100;
  cur.counters["ptrack.test.export.c"] = 150;
  cur.gauges["ptrack.test.export.g"] = 7.0;
  prev.histograms["ptrack.test.export.h"] =
      make_hist({10.0, 100.0}, {10, 0, 0}, 50.0);
  cur.histograms["ptrack.test.export.h"] =
      make_hist({10.0, 100.0}, {10, 100, 0}, 5050.0);

  const obs::SnapshotDelta d = obs::delta(prev, cur);
  EXPECT_DOUBLE_EQ(d.interval_s, 2.0);
  EXPECT_EQ(d.counter_deltas.at("ptrack.test.export.c"), 50u);
  EXPECT_DOUBLE_EQ(d.counter_rates.at("ptrack.test.export.c"), 25.0);
  EXPECT_DOUBLE_EQ(d.gauges.at("ptrack.test.export.g"), 7.0);
  const obs::HistogramDelta& h = d.histograms.at("ptrack.test.export.h");
  EXPECT_EQ(h.count, 100u);  // only the window, not lifetime
  EXPECT_DOUBLE_EQ(h.sum, 5000.0);
  EXPECT_DOUBLE_EQ(h.rate_per_s, 50.0);
  EXPECT_DOUBLE_EQ(h.mean, 50.0);
  // All windowed observations sit in (10, 100]: every percentile does too.
  EXPECT_GT(h.p50, 10.0);
  EXPECT_LE(h.p99, 100.0);
}

TEST(ObsExport, DeltaTreatsCounterWrapAsReset) {
  obs::Snapshot prev, cur;
  prev.taken_at_s = 0.0;
  cur.taken_at_s = 1.0;
  prev.counters["ptrack.test.export.w"] = 1'000'000;
  cur.counters["ptrack.test.export.w"] = 40;  // restarted process
  const obs::SnapshotDelta d = obs::delta(prev, cur);
  EXPECT_EQ(d.counter_deltas.at("ptrack.test.export.w"), 40u);
}

TEST(ObsExport, DeltaHandlesAppearingAndVanishingMetrics) {
  obs::Snapshot prev, cur;
  prev.taken_at_s = 0.0;
  cur.taken_at_s = 1.0;
  prev.counters["ptrack.test.export.gone"] = 5;
  cur.counters["ptrack.test.export.fresh"] = 9;  // registered mid-window
  const obs::SnapshotDelta d = obs::delta(prev, cur);
  EXPECT_EQ(d.counter_deltas.count("ptrack.test.export.gone"), 0u);
  EXPECT_EQ(d.counter_deltas.at("ptrack.test.export.fresh"), 9u);
}

TEST(ObsExport, DeltaFallsBackWhenBucketLayoutChanges) {
  obs::Snapshot prev, cur;
  prev.taken_at_s = 0.0;
  cur.taken_at_s = 1.0;
  prev.histograms["ptrack.test.export.h"] =
      make_hist({10.0}, {4, 0}, 8.0);
  cur.histograms["ptrack.test.export.h"] =
      make_hist({10.0, 100.0}, {6, 1, 0}, 20.0);  // different bounds
  const obs::SnapshotDelta d = obs::delta(prev, cur);
  // Incomparable layouts: the window degrades to the current lifetime.
  EXPECT_EQ(d.histograms.at("ptrack.test.export.h").count, 7u);
}

TEST(ObsExport, QuantileFromBuckets) {
  const std::vector<double> bounds = {10.0, 100.0, 1000.0};
  // 50 in [0,10], 30 in (10,100], 20 in (100,1000], none overflow.
  const std::vector<std::uint64_t> counts = {50, 30, 20, 0};
  EXPECT_DOUBLE_EQ(obs::quantile_from_buckets(bounds, counts, 0.0), 0.0);
  const double p50 = obs::quantile_from_buckets(bounds, counts, 0.5);
  EXPECT_GE(p50, 9.0);
  EXPECT_LE(p50, 10.0);
  const double p99 = obs::quantile_from_buckets(bounds, counts, 0.99);
  EXPECT_GT(p99, 100.0);
  EXPECT_LE(p99, 1000.0);
  // Empty histogram: 0, never NaN.
  EXPECT_DOUBLE_EQ(
      obs::quantile_from_buckets(bounds, {{0, 0, 0, 0}}, 0.5), 0.0);
  // Rank in the overflow bucket clamps to the largest finite bound.
  EXPECT_DOUBLE_EQ(
      obs::quantile_from_buckets(bounds, {{0, 0, 0, 10}}, 0.99), 1000.0);
}

TEST(ObsExport, FromJsonRoundTrip) {
  const std::string doc_text =
      "{\"schema\":\"ptrack.metrics.v1\",\"obs_compiled\":true,"
      "\"metrics\":{"
      "\"counters\":{\"ptrack.test.export.c\":17},"
      "\"gauges\":{\"ptrack.test.export.g\":2.25},"
      "\"histograms\":{\"ptrack.test.export.h\":{"
      "\"count\":3,\"sum\":42.0,"
      "\"buckets\":[{\"le\":10.0,\"count\":2},{\"le\":100.0,\"count\":1}],"
      "\"overflow\":0}}}}";
  const obs::Snapshot snap =
      obs::Snapshot::from_json(json::parse(doc_text), 5.0);
  EXPECT_DOUBLE_EQ(snap.taken_at_s, 5.0);
  EXPECT_EQ(snap.counters.at("ptrack.test.export.c"), 17u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("ptrack.test.export.g"), 2.25);
  const obs::Histogram::Snapshot& h =
      snap.histograms.at("ptrack.test.export.h");
  ASSERT_EQ(h.bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(h.bounds[0], 10.0);
  ASSERT_EQ(h.counts.size(), 3u);  // two buckets + overflow
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[2], 0u);
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 42.0);
}

TEST(ObsExport, FromJsonRejectsBadSchemaAndBadBounds) {
  EXPECT_THROW(
      static_cast<void>(obs::Snapshot::from_json(
          json::parse("{\"schema\":\"something.else\",\"metrics\":{"
                      "\"counters\":{},\"gauges\":{},\"histograms\":{}}}"),
          0.0)),
      Error);
  // Non-ascending bucket bounds must be rejected, not silently accepted.
  EXPECT_THROW(
      static_cast<void>(obs::Snapshot::from_json(
          json::parse(
              "{\"counters\":{},\"gauges\":{},\"histograms\":{"
              "\"ptrack.test.export.h\":{\"count\":0,\"sum\":0,"
              "\"buckets\":[{\"le\":100.0,\"count\":0},"
              "{\"le\":10.0,\"count\":0}],\"overflow\":0}}}"),
          0.0)),
      Error);
}

#if PTRACK_OBS_ENABLED
TEST(ObsExport, LiveDocumentRoundTripsThroughFromJson) {
  PTRACK_COUNT_N("ptrack.test.export.live", 3);
  PTRACK_HIST_US("ptrack.test.export.live_us", 250.0);
  std::ostringstream os;
  obs::write_metrics_document(os);
  const json::Value doc = json::parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), "ptrack.metrics.v1");
  EXPECT_TRUE(doc.at("obs_compiled").as_bool());
  const obs::Snapshot snap = obs::Snapshot::from_json(doc, 1.0);
  EXPECT_GE(snap.counters.at("ptrack.test.export.live"), 3u);
  const obs::Histogram::Snapshot& h =
      snap.histograms.at("ptrack.test.export.live_us");
  EXPECT_GE(h.count, 1u);
  EXPECT_EQ(h.bounds.size(), obs::latency_buckets_us().size());
  // The exported boundaries are the registry's own, in order.
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(h.bounds[i], obs::latency_buckets_us()[i]);
  }
}

TEST(ObsExport, TakeMatchesRegistry) {
  PTRACK_COUNT("ptrack.test.export.take");
  const obs::Snapshot snap = obs::Snapshot::take();
  EXPECT_GE(snap.counters.at("ptrack.test.export.take"), 1u);
  EXPECT_GT(snap.taken_at_s, 0.0);
}
#endif
