// Unit tests for the projection frontend: gravity/up estimation and
// vertical/anterior decomposition under arbitrary device mounting.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/mat3.hpp"
#include "dsp/projection.hpp"

using namespace ptrack;

namespace {

// Builds a specific-force sequence for a device whose world-frame linear
// acceleration oscillates vertically (amp_v at f_v) and along world-x
// (amp_a at f_a), observed in a device frame rotated by `mount`.
std::vector<Vec3> make_forces(double fs, double seconds, double amp_v,
                              double f_v, double amp_a, double f_a,
                              const Mat3& mount) {
  const auto n = static_cast<std::size_t>(fs * seconds);
  const Mat3 world_to_device = mount.transposed();
  std::vector<Vec3> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const Vec3 accel{amp_a * std::sin(kTwoPi * f_a * t), 0.0,
                     amp_v * std::sin(kTwoPi * f_v * t)};
    const Vec3 f = accel + Vec3{0, 0, kGravity};
    out.push_back(world_to_device.apply(f));
  }
  return out;
}

}  // namespace

TEST(EstimateUp, IdentityMount) {
  const auto forces =
      make_forces(100.0, 4.0, 2.0, 2.0, 3.0, 1.0, Mat3::identity());
  const Vec3 up = dsp::estimate_up(forces, 100.0);
  EXPECT_NEAR(up.z, 1.0, 1e-3);
}

TEST(EstimateUp, TiltedMountRecovered) {
  const Mat3 mount = Mat3::from_euler(0.3, -0.4, 1.0);
  const auto forces = make_forces(100.0, 4.0, 2.0, 2.0, 3.0, 1.0, mount);
  const Vec3 up = dsp::estimate_up(forces, 100.0);
  // True up in the device frame is mount^T * z.
  const Vec3 expected = mount.transposed().apply(kVertical);
  EXPECT_NEAR(up.dot(expected), 1.0, 1e-3);
}

TEST(EstimateUp, RequiresSamples) {
  std::vector<Vec3> tiny(2, Vec3{0, 0, kGravity});
  EXPECT_THROW(dsp::estimate_up(tiny, 100.0), InvalidArgument);
}

TEST(PrincipalHorizontal, FindsOscillationAxis) {
  const auto forces =
      make_forces(100.0, 4.0, 1.0, 2.0, 4.0, 1.0, Mat3::identity());
  const Vec3 up = dsp::estimate_up(forces, 100.0);
  const Vec3 fwd = dsp::principal_horizontal_direction(forces, up);
  // Horizontal oscillation is along world-x; sign is arbitrary.
  EXPECT_NEAR(std::abs(fwd.x), 1.0, 0.02);
  EXPECT_NEAR(fwd.z, 0.0, 0.02);
}

TEST(Project, RecoversVerticalAmplitudeUnderMount) {
  const Mat3 mount = Mat3::from_euler(-0.25, 0.35, 2.2);
  const double amp_v = 2.0;
  const double amp_a = 3.5;
  const auto forces = make_forces(100.0, 6.0, amp_v, 2.0, amp_a, 1.0, mount);
  const dsp::ProjectedSignal proj = dsp::project(forces, 100.0);

  double max_v = 0.0;
  double max_a = 0.0;
  for (std::size_t i = 100; i + 100 < proj.vertical.size(); ++i) {
    max_v = std::max(max_v, std::abs(proj.vertical[i]));
    max_a = std::max(max_a, std::abs(proj.anterior[i]));
  }
  EXPECT_NEAR(max_v, amp_v, 0.1);
  EXPECT_NEAR(max_a, amp_a, 0.1);
}

TEST(Project, LateralIsSmallForPlanarMotion) {
  const auto forces =
      make_forces(100.0, 4.0, 2.0, 2.0, 3.0, 1.0, Mat3::identity());
  const dsp::ProjectedSignal proj = dsp::project(forces, 100.0);
  double max_l = 0.0;
  for (double v : proj.lateral) max_l = std::max(max_l, std::abs(v));
  EXPECT_LT(max_l, 0.2);
}

TEST(Project, StationaryDeviceAllChannelsQuiet) {
  const std::vector<Vec3> forces(512, Vec3{0, 0, kGravity});
  const dsp::ProjectedSignal proj = dsp::project(forces, 100.0);
  for (double v : proj.vertical) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(ProjectWithAxes, ValidatesUnitVectors) {
  const std::vector<Vec3> forces(64, Vec3{0, 0, kGravity});
  EXPECT_THROW(
      dsp::project_with_axes(forces, 100.0, {0, 0, 2}, {1, 0, 0}),
      InvalidArgument);
}

TEST(ProjectWithAxes, UpFieldsEchoInputs) {
  const std::vector<Vec3> forces(64, Vec3{0, 0, kGravity});
  const auto proj =
      dsp::project_with_axes(forces, 100.0, {0, 0, 1}, {1, 0, 0});
  EXPECT_EQ(proj.up, kVertical);
  EXPECT_EQ(proj.forward, kAnterior);
  EXPECT_DOUBLE_EQ(proj.fs, 100.0);
}
