// Tests for the projection frontend options: windowed anterior estimation
// (turning routes) and the attitude-filter mode.

#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "core/frontend.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult turning_walk(std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  // An L-shaped walk: heading changes by 90 degrees halfway.
  synth::Scenario scenario;
  scenario.walk(30.0, 0.0, 0.0).walk(30.0, 0.0, kPi / 2);
  return synth::synthesize(scenario, user, synth::SynthOptions{}, rng);
}

}  // namespace

TEST(Frontend, ProjectTraceBasicShapes) {
  Rng rng(801);
  synth::UserProfile user;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(20.0), user,
                                   synth::SynthOptions{}, rng);
  const auto p = core::project_trace(r.trace, 5.0);
  EXPECT_EQ(p.vertical.size(), r.trace.size());
  EXPECT_EQ(p.anterior.size(), r.trace.size());
  EXPECT_DOUBLE_EQ(p.fs, r.trace.fs());
}

TEST(Frontend, WindowedAnteriorMatchesGlobalOnStraightWalk) {
  Rng rng(802);
  synth::UserProfile user;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(30.0), user,
                                   synth::SynthOptions{}, rng);
  const auto global = core::project_trace(r.trace, 5.0, 0.0);
  const auto windowed = core::project_trace(r.trace, 5.0, 10.0);
  // Same direction up to sign per window; compare energy, not samples.
  double eg = 0.0;
  double ew = 0.0;
  for (std::size_t i = 0; i < global.anterior.size(); ++i) {
    eg += global.anterior[i] * global.anterior[i];
    ew += windowed.anterior[i] * windowed.anterior[i];
  }
  EXPECT_NEAR(ew / eg, 1.0, 0.05);
}

TEST(Frontend, WindowedAnteriorHelpsOnTurningRoute) {
  const auto r = turning_walk(803);
  // Anterior energy with the global fit is diluted across the two
  // headings; the windowed fit recovers it.
  const auto global = core::project_trace(r.trace, 5.0, 0.0);
  const auto windowed = core::project_trace(r.trace, 5.0, 10.0);
  double eg = 0.0;
  double ew = 0.0;
  for (std::size_t i = 0; i < global.anterior.size(); ++i) {
    eg += global.anterior[i] * global.anterior[i];
    ew += windowed.anterior[i] * windowed.anterior[i];
  }
  EXPECT_GT(ew, eg);
}

TEST(Frontend, CountingOnTurningRouteWithWindowedAnterior) {
  const auto r = turning_walk(804);
  synth::UserProfile user;
  core::PTrackConfig cfg;
  cfg.counter.anterior_window_s = 10.0;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack tracker(cfg);
  const auto res = tracker.process(r.trace);
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(res.steps), truth, 0.12 * truth);
}

TEST(Frontend, AttitudeModeMatchesBatchOnPlatformCorrectedTrace) {
  // On a platform-corrected trace (constant frame) the attitude filter
  // converges to the same fixed up vector, so counting must agree.
  Rng rng(805);
  synth::UserProfile user;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(60.0), user,
                                   synth::SynthOptions{}, rng);
  core::PTrackConfig batch_cfg;
  core::PTrackConfig attitude_cfg;
  attitude_cfg.counter.use_attitude_filter = true;
  core::PTrack batch(batch_cfg);
  core::PTrack attitude(attitude_cfg);
  const double b = static_cast<double>(batch.process(r.trace).steps);
  const double a = static_cast<double>(attitude.process(r.trace).steps);
  EXPECT_NEAR(a, b, 0.08 * b + 2.0);
}

TEST(Frontend, Preconditions) {
  Rng rng(806);
  synth::UserProfile user;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(5.0), user,
                                   synth::SynthOptions{}, rng);
  EXPECT_THROW(core::project_trace(r.trace.slice(0, 8), 5.0), InvalidArgument);
  EXPECT_THROW(core::project_trace(r.trace, 0.0), InvalidArgument);
  EXPECT_THROW(core::project_trace_with_attitude(r.trace.slice(0, 8), 5.0),
               InvalidArgument);
}
