// Unit tests for peak / valley / zero-crossing / extremum detection.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "dsp/peaks.hpp"

using namespace ptrack;

namespace {

std::vector<double> sine(double freq, double fs, double seconds) {
  const auto n = static_cast<std::size_t>(seconds * fs);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::sin(kTwoPi * freq * static_cast<double>(i) / fs);
  }
  return out;
}

}  // namespace

TEST(FindPeaks, CountsSinePeaks) {
  const auto xs = sine(2.0, 100.0, 5.0);  // 10 full periods -> 10 maxima
  const auto peaks = dsp::find_peaks(xs);
  EXPECT_EQ(peaks.size(), 10u);
}

TEST(FindPeaks, MinHeightFilters) {
  std::vector<double> xs{0, 1, 0, 5, 0, 2, 0};
  dsp::PeakOptions opt;
  opt.min_height = 3.0;
  const auto peaks = dsp::find_peaks(xs, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 3u);
}

TEST(FindPeaks, MinDistanceKeepsTaller) {
  std::vector<double> xs{0, 2, 0, 3, 0};
  dsp::PeakOptions opt;
  opt.min_distance = 3;
  const auto peaks = dsp::find_peaks(xs, opt);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 3u);
}

TEST(FindPeaks, PlateauReportsCenter) {
  std::vector<double> xs{0, 1, 2, 2, 2, 1, 0};
  const auto peaks = dsp::find_peaks(xs);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0], 3u);
}

TEST(FindPeaks, ProminenceFiltersRipple) {
  // A small ripple riding on the slope of a big peak has low prominence.
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) {
    double v = std::sin(kPi * i / 100.0);        // one big arch
    v += 0.05 * std::sin(kTwoPi * i / 10.0);     // small ripple
    xs.push_back(v);
  }
  dsp::PeakOptions opt;
  opt.min_prominence = 0.5;
  const auto peaks = dsp::find_peaks(xs, opt);
  EXPECT_EQ(peaks.size(), 1u);
}

TEST(FindPeaks, EmptyAndTinyInputs) {
  EXPECT_TRUE(dsp::find_peaks(std::vector<double>{}).empty());
  EXPECT_TRUE(dsp::find_peaks(std::vector<double>{1.0, 2.0}).empty());
}

TEST(FindValleys, MirrorsPeaks) {
  const auto xs = sine(2.0, 100.0, 5.0);
  EXPECT_EQ(dsp::find_valleys(xs).size(), 10u);
}

TEST(PeakProminence, IsolatedPeakFullHeight) {
  std::vector<double> xs{0, 0, 3, 0, 0};
  EXPECT_DOUBLE_EQ(dsp::peak_prominence(xs, 2), 3.0);
}

TEST(ZeroCrossings, CountsSineCrossings) {
  const auto xs = sine(1.0, 100.0, 3.0);  // 3 periods: crossings at T/2 spacing
  const auto zs = dsp::zero_crossings(xs);
  // First confirmed crossing needs a preceding confirmed side, so expect 5.
  EXPECT_EQ(zs.size(), 5u);
}

TEST(ZeroCrossings, HysteresisSuppressesChatter) {
  // Noise oscillating inside the hysteresis band must produce no crossings.
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back((i % 2 == 0) ? 0.05 : -0.05);
  EXPECT_TRUE(dsp::zero_crossings(xs, 0.2).empty());
  EXPECT_FALSE(dsp::zero_crossings(xs, 0.01).empty());
}

TEST(ZeroCrossings, ReportsActualSignChangeNotConfirmation) {
  // Slow rise: sign change at index 5, confirmation (beyond 0.5) at 7.
  const std::vector<double> xs{-1.0, -0.8, -0.6, -0.4, -0.2,
                               0.05, 0.3,  0.7,  1.0};
  const auto zs = dsp::zero_crossings(xs, 0.5);
  ASSERT_EQ(zs.size(), 1u);
  EXPECT_EQ(zs[0], 5u);
}

TEST(FindExtrema, AlternatesAndSorted) {
  const auto xs = sine(2.0, 100.0, 2.0);
  const auto ext = dsp::find_extrema(xs);
  ASSERT_GE(ext.size(), 6u);
  for (std::size_t i = 1; i < ext.size(); ++i) {
    EXPECT_LT(ext[i - 1].index, ext[i].index);
    EXPECT_NE(ext[i - 1].is_max, ext[i].is_max);  // alternating on a sine
  }
}

TEST(FindExtrema, ValuesMatchSignal) {
  const auto xs = sine(1.0, 100.0, 2.0);
  for (const dsp::Extremum& e : dsp::find_extrema(xs)) {
    EXPECT_DOUBLE_EQ(e.value, xs[e.index]);
    if (e.is_max) {
      EXPECT_NEAR(e.value, 1.0, 0.01);
    } else {
      EXPECT_NEAR(e.value, -1.0, 0.01);
    }
  }
}
