// Parity tests for the online quality stage (imu::IncrementalQuality)
// against its batch dual assess_and_repair — the contract documented in
// imu/quality.hpp: same flags and same repair actions sample-for-sample,
// with divergence confined to the documented seams (running masking
// neutral, pending-tail retro-flagging at decision boundaries, Hermite
// tangent fallback next to a gap).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "imu/faults.hpp"
#include "imu/quality.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

imu::Trace walking_trace(double seconds, std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(synth::Scenario::pure_walking(seconds), user,
                           synth::SynthOptions{}, rng)
      .trace;
}

struct StreamResult {
  std::vector<imu::RepairedSample> out;
  std::size_t max_pending = 0;
};

StreamResult stream_through(imu::IncrementalQuality& inc,
                            const imu::Trace& trace) {
  StreamResult r;
  std::vector<imu::RepairedSample> buf;
  for (const imu::Sample& s : trace.samples()) {
    buf.clear();
    inc.push(s, buf);
    r.out.insert(r.out.end(), buf.begin(), buf.end());
    r.max_pending = std::max(r.max_pending, inc.pending());
  }
  buf.clear();
  inc.flush(buf);
  r.out.insert(r.out.end(), buf.begin(), buf.end());
  return r;
}

double sample_l1(const imu::Sample& a, const imu::Sample& b) {
  return std::abs(a.accel.x - b.accel.x) + std::abs(a.accel.y - b.accel.y) +
         std::abs(a.accel.z - b.accel.z) + std::abs(a.gyro.x - b.gyro.x) +
         std::abs(a.gyro.y - b.gyro.y) + std::abs(a.gyro.z - b.gyro.z);
}

/// Asserts the parity contract: stream order and count preserved, flags
/// equal to batch up to `flag_budget` boundary samples, and values
/// bit-exact wherever neither side flagged the sample (repair rewrites only
/// flagged samples; divergence on those is bounded by the running-neutral
/// seam).
void expect_parity(const imu::Trace& trace, const imu::QualityConfig& cfg,
                   std::size_t flag_budget) {
  const imu::QualityResult batch = imu::assess_and_repair(trace, cfg);
  imu::IncrementalQuality inc(trace.fs(), cfg);
  const StreamResult r = stream_through(inc, trace);

  ASSERT_EQ(r.out.size(), trace.size());
  EXPECT_LE(r.max_pending, inc.latency_bound());

  std::size_t flag_mismatches = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::uint8_t bf = batch.report.flags[i];
    const std::uint8_t sf = r.out[i].flags;
    if (bf != sf) ++flag_mismatches;
    if (bf == 0 && sf == 0) {
      EXPECT_EQ(sample_l1(batch.trace[i], r.out[i].sample), 0.0)
          << "clean sample rewritten at i=" << i;
    }
    // Whatever the repair did, the output must be finite and physical.
    EXPECT_TRUE(std::isfinite(r.out[i].sample.accel.x) &&
                std::isfinite(r.out[i].sample.accel.y) &&
                std::isfinite(r.out[i].sample.accel.z) &&
                std::isfinite(r.out[i].sample.gyro.x) &&
                std::isfinite(r.out[i].sample.gyro.y) &&
                std::isfinite(r.out[i].sample.gyro.z));
  }
  EXPECT_LE(flag_mismatches, flag_budget);

  // The cumulative counters agree with what was actually emitted.
  const imu::IncrementalQualityCounts& c = inc.counts();
  EXPECT_EQ(c.emitted, trace.size());
  std::size_t repaired = 0, masked = 0;
  for (const imu::RepairedSample& s : r.out) {
    repaired += (s.flags & imu::kFlagRepaired) ? 1 : 0;
    masked += (s.flags & imu::kFlagMasked) ? 1 : 0;
  }
  EXPECT_EQ(c.repaired, repaired);
  EXPECT_EQ(c.masked, masked);
}

}  // namespace

TEST(IncrementalQuality, CleanTracePassesThroughBitExact) {
  const imu::Trace t = walking_trace(30.0, 620);
  imu::IncrementalQuality inc(t.fs());
  const StreamResult r = stream_through(inc, t);
  ASSERT_EQ(r.out.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(r.out[i].flags, imu::kFlagClean);
    EXPECT_EQ(sample_l1(t[i], r.out[i].sample), 0.0);
  }
  EXPECT_EQ(inc.counts().dropout + inc.counts().saturated +
                inc.counts().spike + inc.counts().nonfinite,
            0u);
}

TEST(IncrementalQuality, ShortDropoutsMatchBatchFlags) {
  const imu::Trace t = walking_trace(30.0, 621);
  Rng rng(6210);
  // Runs short enough to gap-fill (<= max_fill_s at 100 Hz = 25 samples).
  const imu::Trace faulty = imu::inject_dropouts(t, 6.0, 5, 20, rng);
  expect_parity(faulty, {}, 0);
}

TEST(IncrementalQuality, LongDropoutsAreMaskedLikeBatch) {
  const imu::Trace t = walking_trace(30.0, 622);
  Rng rng(6220);
  const imu::Trace faulty = imu::inject_dropouts(t, 3.0, 40, 80, rng);
  expect_parity(faulty, {}, 0);
  // And the masked values sit near the batch neutral (running vs
  // whole-trace clean mean — the documented divergence stays small).
  const imu::QualityResult batch = imu::assess_and_repair(faulty, {});
  imu::IncrementalQuality inc(faulty.fs());
  const StreamResult r = stream_through(inc, faulty);
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    if (r.out[i].flags & imu::kFlagMasked) {
      EXPECT_LT(sample_l1(batch.trace[i], r.out[i].sample), 2.0);
    }
  }
}

TEST(IncrementalQuality, ExplicitRailSaturationMatchesBatchExactly) {
  const imu::Trace t = walking_trace(30.0, 623);
  const imu::Trace clipped = imu::clip_acceleration(t, 25.0);
  imu::QualityConfig cfg;
  cfg.saturation_limit = 25.0;
  expect_parity(clipped, cfg, 0);
}

TEST(IncrementalQuality, AutoDetectedRailConverges) {
  const imu::Trace t = walking_trace(30.0, 624);
  const imu::Trace clipped = imu::clip_acceleration(t, 25.0);
  // Auto-detect uses a running rail estimate; once the plateau confirms,
  // flags match batch (samples emitted before confirmation may keep their
  // pre-confirmation flags — allow a small boundary budget).
  expect_parity(clipped, {}, 8);
}

TEST(IncrementalQuality, SpikesMatchBatchUpToDecisionBoundaries) {
  const imu::Trace t = walking_trace(30.0, 625);
  Rng rng(6250);
  const imu::Trace spiky = imu::inject_spikes(t, 8.0, 5.0, rng);
  // Retro-flagging reaches only into the pending tail, so a handful of
  // boundary samples may carry different detector bits (quality.hpp).
  expect_parity(spiky, {}, 8);
}

TEST(IncrementalQuality, NonFiniteCellsAreNeutralizedLikeBatch) {
  imu::Trace t = walking_trace(30.0, 626);
  t.samples()[500].accel.x = std::nan("");
  t.samples()[1200].gyro.y = 1.0e9;  // nonphysical magnitude
  t.samples()[2000].accel.z = std::numeric_limits<double>::infinity();
  expect_parity(t, {}, 0);
}

TEST(IncrementalQuality, LatencyIsBoundedAndFlushDrainsEverything) {
  const imu::Trace t = walking_trace(20.0, 627);
  Rng rng(6270);
  const imu::Trace faulty = imu::inject_dropouts(t, 8.0, 10, 60, rng);
  imu::IncrementalQuality inc(faulty.fs());
  std::vector<imu::RepairedSample> buf;
  std::size_t emitted = 0;
  for (const imu::Sample& s : faulty.samples()) {
    buf.clear();
    inc.push(s, buf);
    emitted += buf.size();
    ASSERT_LE(inc.pending(), inc.latency_bound());
  }
  buf.clear();
  inc.flush(buf);
  emitted += buf.size();
  EXPECT_EQ(emitted, faulty.size());
  EXPECT_EQ(inc.pending(), 0u);
}

TEST(IncrementalQuality, StreamContinuesAfterFlush) {
  const imu::Trace t = walking_trace(20.0, 628);
  imu::IncrementalQuality inc(t.fs());
  std::vector<imu::RepairedSample> buf;
  std::size_t emitted = 0;
  const std::size_t half = t.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    buf.clear();
    inc.push(t[i], buf);
    emitted += buf.size();
  }
  buf.clear();
  inc.flush(buf);  // stream pause
  emitted += buf.size();
  EXPECT_EQ(emitted, half);
  for (std::size_t i = half; i < t.size(); ++i) {
    buf.clear();
    inc.push(t[i], buf);
    emitted += buf.size();
  }
  buf.clear();
  inc.flush(buf);
  emitted += buf.size();
  EXPECT_EQ(emitted, t.size());
}
