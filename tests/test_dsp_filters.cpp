// Unit tests for biquad/Butterworth filtering, zero-phase filtering and
// sliding-window smoothers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/biquad.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/moving.hpp"

using namespace ptrack;

namespace {

std::vector<double> sine(double freq, double fs, double seconds,
                         double amp = 1.0, double phase = 0.0) {
  const auto n = static_cast<std::size_t>(seconds * fs);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amp * std::sin(kTwoPi * freq * static_cast<double>(i) / fs + phase);
  }
  return out;
}

double steady_state_amplitude(const std::vector<double>& ys) {
  // Skip the first half (transient), take the max of the rest.
  double amp = 0.0;
  for (std::size_t i = ys.size() / 2; i < ys.size(); ++i) {
    amp = std::max(amp, std::abs(ys[i]));
  }
  return amp;
}

}  // namespace

TEST(Biquad, LowpassPassesDc) {
  dsp::Biquad f(dsp::lowpass(3.0, 100.0));
  double y = 0.0;
  for (int i = 0; i < 500; ++i) y = f.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(Biquad, LowpassAttenuatesHighFrequency) {
  dsp::Biquad f(dsp::lowpass(3.0, 100.0));
  const auto ys = f.process(sine(30.0, 100.0, 4.0));
  EXPECT_LT(steady_state_amplitude(ys), 0.05);
}

TEST(Biquad, HighpassBlocksDc) {
  dsp::Biquad f(dsp::highpass(3.0, 100.0));
  double y = 1.0;
  for (int i = 0; i < 1000; ++i) y = f.step(1.0);
  EXPECT_NEAR(y, 0.0, 1e-6);
}

TEST(Biquad, HighpassPassesHighFrequency) {
  dsp::Biquad f(dsp::highpass(1.0, 100.0));
  const auto ys = f.process(sine(20.0, 100.0, 4.0));
  EXPECT_NEAR(steady_state_amplitude(ys), 1.0, 0.05);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  dsp::Biquad center(dsp::bandpass(5.0, 100.0, 2.0));
  dsp::Biquad off(dsp::bandpass(5.0, 100.0, 2.0));
  const double at_center =
      steady_state_amplitude(center.process(sine(5.0, 100.0, 6.0)));
  const double off_center =
      steady_state_amplitude(off.process(sine(15.0, 100.0, 6.0)));
  EXPECT_NEAR(at_center, 1.0, 0.08);
  EXPECT_LT(off_center, 0.5);
}

TEST(Biquad, ResetClearsState) {
  dsp::Biquad f(dsp::lowpass(3.0, 100.0));
  for (int i = 0; i < 100; ++i) f.step(5.0);
  f.reset();
  dsp::Biquad fresh(dsp::lowpass(3.0, 100.0));
  EXPECT_DOUBLE_EQ(f.step(1.0), fresh.step(1.0));
}

TEST(Biquad, DesignPreconditions) {
  EXPECT_THROW(dsp::lowpass(60.0, 100.0), InvalidArgument);   // above Nyquist
  EXPECT_THROW(dsp::lowpass(-1.0, 100.0), InvalidArgument);
  EXPECT_THROW(dsp::lowpass(3.0, 100.0, 0.0), InvalidArgument);
}

TEST(Butterworth, OrderIncreasesRolloff) {
  const double fs = 100.0;
  auto second = dsp::butterworth_lowpass(2, 3.0, fs);
  auto sixth = dsp::butterworth_lowpass(6, 3.0, fs);
  const auto input = sine(9.0, fs, 6.0);
  const double a2 = steady_state_amplitude(second.process(input));
  const double a6 = steady_state_amplitude(sixth.process(input));
  EXPECT_LT(a6, a2);
  EXPECT_LT(a6, 0.02);
}

TEST(Butterworth, CutoffIsMinusThreeDb) {
  const double fs = 100.0;
  auto f = dsp::butterworth_lowpass(4, 5.0, fs);
  const double a = steady_state_amplitude(f.process(sine(5.0, fs, 8.0)));
  EXPECT_NEAR(a, 1.0 / std::sqrt(2.0), 0.05);
}

TEST(Butterworth, OddOrderWorks) {
  auto f = dsp::butterworth_lowpass(5, 3.0, 100.0);
  EXPECT_EQ(f.order() >= 5, true);
  double y = 0.0;
  for (int i = 0; i < 800; ++i) y = f.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-4);
}

TEST(Butterworth, HighpassOddOrder) {
  auto f = dsp::butterworth_highpass(3, 3.0, 100.0);
  double y = 1.0;
  for (int i = 0; i < 2000; ++i) y = f.step(1.0);
  EXPECT_NEAR(y, 0.0, 1e-4);
}

TEST(Butterworth, InvalidOrderThrows) {
  EXPECT_THROW(dsp::butterworth_lowpass(0, 3.0, 100.0), InvalidArgument);
  EXPECT_THROW(dsp::butterworth_lowpass(13, 3.0, 100.0), InvalidArgument);
}

TEST(Filtfilt, ZeroPhaseKeepsPeakPosition) {
  // A Gaussian bump must not move under zero-phase filtering.
  const double fs = 100.0;
  std::vector<double> xs(400, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double t = (static_cast<double>(i) - 200.0) / 20.0;
    xs[i] = std::exp(-t * t);
  }
  const auto ys = dsp::zero_phase_lowpass(xs, 5.0, fs, 4);
  std::size_t peak_in = 0;
  std::size_t peak_out = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[peak_in]) peak_in = i;
    if (ys[i] > ys[peak_out]) peak_out = i;
  }
  EXPECT_NEAR(static_cast<double>(peak_out), static_cast<double>(peak_in), 1.0);
}

TEST(Filtfilt, PassbandSineSurvives) {
  const auto xs = sine(1.0, 100.0, 6.0);
  const auto ys = dsp::zero_phase_lowpass(xs, 5.0, 100.0, 4);
  // Compare in the middle region away from edges.
  double max_err = 0.0;
  for (std::size_t i = 100; i + 100 < xs.size(); ++i) {
    max_err = std::max(max_err, std::abs(xs[i] - ys[i]));
  }
  EXPECT_LT(max_err, 0.02);
}

TEST(Filtfilt, EmptyInputYieldsEmpty) {
  const auto cascade = dsp::butterworth_lowpass(4, 3.0, 100.0);
  EXPECT_TRUE(dsp::filtfilt(cascade, std::vector<double>{}).empty());
}

TEST(Filtfilt, ShortInputHandled) {
  const auto cascade = dsp::butterworth_lowpass(2, 3.0, 100.0);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_EQ(dsp::filtfilt(cascade, xs).size(), xs.size());
}

TEST(MovingAverage, SmoothsConstantExactly) {
  const std::vector<double> xs(50, 3.5);
  for (double v : dsp::moving_average(xs, 7)) EXPECT_DOUBLE_EQ(v, 3.5);
}

TEST(MovingAverage, CenterOfLinearRampIsExact) {
  std::vector<double> xs(21);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const auto ys = dsp::moving_average(xs, 5);
  // Away from edges, the centered average of a linear ramp equals it.
  for (std::size_t i = 2; i + 2 < xs.size(); ++i) {
    EXPECT_NEAR(ys[i], xs[i], 1e-12);
  }
}

TEST(MovingMedian, RemovesImpulse) {
  std::vector<double> xs(21, 1.0);
  xs[10] = 100.0;
  const auto ys = dsp::moving_median(xs, 5);
  EXPECT_DOUBLE_EQ(ys[10], 1.0);
}

TEST(MovingMedian, WindowOneIsIdentity) {
  const std::vector<double> xs{3, 1, 4, 1, 5};
  EXPECT_EQ(dsp::moving_median(xs, 1), xs);
}

TEST(Ema, ConvergesToConstant) {
  std::vector<double> xs(200, 2.0);
  const auto ys = dsp::ema(xs, 0.1);
  EXPECT_NEAR(ys.back(), 2.0, 1e-6);
}

TEST(Ema, InvalidAlphaThrows) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(dsp::ema(xs, 0.0), InvalidArgument);
  EXPECT_THROW(dsp::ema(xs, 1.5), InvalidArgument);
}
