// Unit tests for the Eq. (3)-(5) bounce solver and the Eq. (2) stride
// model — including forward-model round trips.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/bounce.hpp"

using namespace ptrack;

namespace {

// Forward model: given true b, arm extremes theta1/theta2 and arm length m,
// produce the measurements (h1, h2, d) PTrack would see.
struct Measurement {
  double h1;
  double h2;
  double d;
};

Measurement forward(double b, double m, double theta1, double theta2) {
  const double r1 = m * (1.0 - std::cos(theta1));
  const double r2 = m * (1.0 - std::cos(theta2));
  Measurement out;
  out.h1 = r1 - b;
  out.h2 = r2 - b;
  out.d = m * std::sin(theta1) + m * std::sin(theta2);
  return out;
}

}  // namespace

TEST(BounceSolver, RoundTripSymmetricSwing) {
  const double m = 0.70;
  const double b = 0.07;
  const Measurement meas = forward(b, m, 0.38, 0.38);
  const core::BounceSolution sol = core::solve_bounce(meas.h1, meas.h2, meas.d, m);
  EXPECT_TRUE(sol.valid);
  EXPECT_NEAR(sol.bounce, b, 1e-6);
}

TEST(BounceSolver, RoundTripAsymmetricSwing) {
  const double m = 0.65;
  const double b = 0.055;
  const Measurement meas = forward(b, m, 0.30, 0.45);
  const core::BounceSolution sol = core::solve_bounce(meas.h1, meas.h2, meas.d, m);
  EXPECT_TRUE(sol.valid);
  EXPECT_NEAR(sol.bounce, b, 1e-6);
}

TEST(BounceSolver, RoundTripSweep) {
  // Property sweep over plausible geometry.
  for (double m : {0.55, 0.70, 0.85}) {
    for (double b : {0.03, 0.06, 0.10}) {
      for (double theta : {0.25, 0.40, 0.55}) {
        const Measurement meas = forward(b, m, theta, theta);
        const core::BounceSolution sol =
            core::solve_bounce(meas.h1, meas.h2, meas.d, m);
        EXPECT_TRUE(sol.valid) << "m=" << m << " b=" << b << " theta=" << theta;
        EXPECT_NEAR(sol.bounce, b, 1e-6);
      }
    }
  }
}

TEST(BounceSolver, SweepWidthIsMonotoneInBounce) {
  const double m = 0.7;
  const double h1 = -0.02;
  const double h2 = -0.018;
  double prev = core::sweep_width(0.02, h1, h2, m);
  for (double b = 0.03; b < 0.3; b += 0.01) {
    const double cur = core::sweep_width(b, h1, h2, m);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(BounceSolver, TooLargeTravelClampsInvalid) {
  // d larger than the arm can produce for any b: no root, invalid.
  const core::BounceSolution sol = core::solve_bounce(-0.02, -0.02, 5.0, 0.7);
  EXPECT_FALSE(sol.valid);
}

TEST(BounceSolver, TooSmallTravelClampsInvalid) {
  // d smaller than the b=0 width: no root on the branch, invalid.
  const Measurement meas = forward(0.07, 0.7, 0.38, 0.38);
  const core::BounceSolution sol =
      core::solve_bounce(meas.h1 + 0.2, meas.h2 + 0.2, 1e-3, 0.7);
  EXPECT_FALSE(sol.valid);
  EXPECT_GE(sol.bounce, 0.0);
}

TEST(BounceSolver, Preconditions) {
  EXPECT_THROW(core::solve_bounce(0.0, 0.0, 0.5, 0.0), InvalidArgument);
  EXPECT_THROW(core::solve_bounce(0.0, 0.0, 0.0, 0.7), InvalidArgument);
}

TEST(StrideFromBounce, MatchesClosedForm) {
  const double l = 0.9;
  const double k = 2.0;
  const double b = 0.07;
  const double expected = k * std::sqrt(l * l - (l - b) * (l - b));
  EXPECT_DOUBLE_EQ(core::stride_from_bounce(b, l, k), expected);
}

TEST(StrideFromBounce, ClampsBounce) {
  EXPECT_DOUBLE_EQ(core::stride_from_bounce(-0.1, 0.9, 2.0), 0.0);
  // b = l: stride = k*l (max of the model).
  EXPECT_DOUBLE_EQ(core::stride_from_bounce(2.0, 0.9, 2.0), 1.8);
}

TEST(StrideFromBounce, MonotoneInBounce) {
  double prev = 0.0;
  for (double b = 0.0; b <= 0.9; b += 0.05) {
    const double s = core::stride_from_bounce(b, 0.9, 2.0);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(StrideFromBounce, Preconditions) {
  EXPECT_THROW(core::stride_from_bounce(0.05, 0.0, 2.0), InvalidArgument);
  EXPECT_THROW(core::stride_from_bounce(0.05, 0.9, 0.0), InvalidArgument);
}
