// Unit tests for critical-point extraction and the Eq. (1) offset metric.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "core/critical_points.hpp"
#include "core/offset_metric.hpp"

using namespace ptrack;
using core::CriticalKind;
using core::CriticalPoint;

namespace {

std::vector<double> sine(double cycles, std::size_t n, double phase = 0.0) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::sin(kTwoPi * cycles * static_cast<double>(i) /
                          static_cast<double>(n) +
                      phase);
  }
  return out;
}

}  // namespace

TEST(CriticalPoints, SineExtremaOnly) {
  const auto xs = sine(2.0, 200);
  const auto pts = core::critical_points(xs, {}, /*include_zeros=*/false);
  // 2 cycles -> 2 maxima + 2 minima.
  EXPECT_EQ(pts.size(), 4u);
  for (const auto& p : pts) {
    EXPECT_NE(p.kind, CriticalKind::Zero);
  }
}

TEST(CriticalPoints, SineWithZeros) {
  const auto xs = sine(2.0, 200);
  const auto with = core::critical_points(xs, {}, true);
  const auto without = core::critical_points(xs, {}, false);
  EXPECT_GT(with.size(), without.size());
}

TEST(CriticalPoints, SortedByIndex) {
  const auto xs = sine(3.0, 300);
  const auto pts = core::critical_points(xs);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].index, pts[i].index);
  }
}

TEST(CriticalPoints, DcOffsetIgnored) {
  auto xs = sine(2.0, 200);
  for (double& v : xs) v += 100.0;  // huge DC
  const auto pts = core::critical_points(xs, {}, true);
  bool has_zero = false;
  for (const auto& p : pts) has_zero |= p.kind == CriticalKind::Zero;
  EXPECT_TRUE(has_zero);  // zeros found despite the DC offset (demeaned)
}

TEST(CriticalPoints, TinyCycleEmpty) {
  const std::vector<double> xs{1.0, 2.0, 1.0};
  EXPECT_TRUE(core::critical_points(xs).empty());
}

TEST(CriticalPoints, AbsoluteFloorFiltersWeakExtrema) {
  auto xs = sine(2.0, 200);
  for (double& v : xs) v *= 0.1;  // weak signal
  core::CriticalPointOptions opt;
  opt.min_abs_prominence = 0.5;
  const auto pts = core::critical_points(xs, opt, false);
  EXPECT_TRUE(pts.empty());
}

TEST(OffsetMetric, PerfectAlignmentIsZero) {
  const std::vector<CriticalPoint> v{{10, CriticalKind::Maximum},
                                     {30, CriticalKind::Minimum}};
  const std::vector<CriticalPoint> a{{10, CriticalKind::Zero},
                                     {30, CriticalKind::Maximum}};
  EXPECT_DOUBLE_EQ(core::cycle_offset(v, a, 100), 0.0);
}

TEST(OffsetMetric, EmptyQuerySetIsZero) {
  const std::vector<CriticalPoint> a{{10, CriticalKind::Zero}};
  EXPECT_DOUBLE_EQ(core::cycle_offset({}, a, 100), 0.0);
}

TEST(OffsetMetric, EmptyMatchSetIsMaximal) {
  const std::vector<CriticalPoint> v{{10, CriticalKind::Maximum}};
  EXPECT_DOUBLE_EQ(core::cycle_offset(v, {}, 100), 1.0);
}

TEST(OffsetMetric, GrowsWithMisalignment) {
  const std::vector<CriticalPoint> v{{20, CriticalKind::Maximum},
                                     {60, CriticalKind::Minimum}};
  const std::vector<CriticalPoint> near{{22, CriticalKind::Zero},
                                        {63, CriticalKind::Maximum}};
  const std::vector<CriticalPoint> far{{30, CriticalKind::Zero},
                                       {75, CriticalKind::Maximum}};
  EXPECT_LT(core::cycle_offset(v, near, 100), core::cycle_offset(v, far, 100));
}

TEST(OffsetMetric, WeightingUsesGapToPreviousPoint) {
  // Two queries with the same match distance: the one after a long quiet
  // gap carries more weight.
  const std::vector<CriticalPoint> early{{5, CriticalKind::Maximum}};
  const std::vector<CriticalPoint> late{{80, CriticalKind::Maximum}};
  const std::vector<CriticalPoint> match_early{{10, CriticalKind::Zero}};
  const std::vector<CriticalPoint> match_late{{85, CriticalKind::Zero}};
  const double o_early = core::cycle_offset(early, match_early, 100);
  const double o_late = core::cycle_offset(late, match_late, 100);
  EXPECT_GT(o_late, o_early);
}

TEST(OffsetMetric, WeightCapBoundsQuietGapInfluence) {
  const std::vector<CriticalPoint> late{{90, CriticalKind::Maximum}};
  const std::vector<CriticalPoint> match{{80, CriticalKind::Zero}};
  const double capped = core::cycle_offset(late, match, 100, true, 0.35);
  const double uncapped = core::cycle_offset(late, match, 100, true, 10.0);
  EXPECT_LT(capped, uncapped);
  EXPECT_DOUBLE_EQ(capped, 0.35 * 10.0 / 100.0);
}

TEST(OffsetMetric, UnweightedVariant) {
  const std::vector<CriticalPoint> v{{50, CriticalKind::Maximum}};
  const std::vector<CriticalPoint> a{{55, CriticalKind::Zero}};
  EXPECT_DOUBLE_EQ(core::cycle_offset(v, a, 100, /*use_weighting=*/false),
                   5.0 / 100.0);
}

TEST(OffsetMetric, SynchronizedSinesScoreLow) {
  // Rigid motion surrogate: vertical at 2f, anterior at f, phase-locked as
  // in a pendulum — vertical extrema land on anterior extrema/zeros.
  const std::size_t n = 200;
  std::vector<double> vertical(n);
  std::vector<double> anterior(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phi = kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    vertical[i] = std::cos(2.0 * phi);
    anterior[i] = -std::sin(phi);
  }
  const auto vq = core::critical_points(vertical, {}, false);
  const auto am = core::critical_points(anterior, {}, true);
  EXPECT_LT(core::cycle_offset(vq, am, n), 0.02);
}
