// Unit tests for routes and dead reckoning (Fig. 9 substrate).

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "nav/dead_reckoning.hpp"
#include "nav/route.hpp"

using namespace ptrack;
using nav::Point;
using nav::Route;

TEST(Route, LengthIsSumOfLegs) {
  const Route r({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(r.length(), 7.0);
  EXPECT_EQ(r.legs(), 2u);
  EXPECT_DOUBLE_EQ(r.leg_length(0), 3.0);
  EXPECT_DOUBLE_EQ(r.leg_length(1), 4.0);
}

TEST(Route, LegHeadings) {
  const Route r({{0, 0}, {1, 0}, {1, 1}});
  EXPECT_NEAR(r.leg_heading(0), 0.0, 1e-12);
  EXPECT_NEAR(r.leg_heading(1), kPi / 2, 1e-12);
}

TEST(Route, PointAtInterpolates) {
  const Route r({{0, 0}, {10, 0}});
  const Point p = r.point_at(4.0);
  EXPECT_DOUBLE_EQ(p.x, 4.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
  // Clamped at both ends.
  EXPECT_DOUBLE_EQ(r.point_at(-5.0).x, 0.0);
  EXPECT_DOUBLE_EQ(r.point_at(50.0).x, 10.0);
}

TEST(Route, LegAtBoundaries) {
  const Route r({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_EQ(r.leg_at(0.0), 0u);
  EXPECT_EQ(r.leg_at(9.99), 0u);
  EXPECT_EQ(r.leg_at(10.01), 1u);
  EXPECT_EQ(r.leg_at(99.0), 1u);
}

TEST(Route, DistanceToIsPerpendicular) {
  const Route r({{0, 0}, {10, 0}});
  EXPECT_DOUBLE_EQ(r.distance_to({5, 3}), 3.0);
  EXPECT_DOUBLE_EQ(r.distance_to({-3, 4}), 5.0);  // beyond the start
}

TEST(Route, InvalidConstruction) {
  EXPECT_THROW(Route({{0, 0}}), InvalidArgument);
  EXPECT_THROW(Route({{0, 0}, {0, 0}}), InvalidArgument);
}

TEST(ShoppingCenterRoute, MatchesPaperGeometry) {
  const Route r = nav::shopping_center_route();
  EXPECT_EQ(r.waypoints().size(), 7u);  // A..G
  EXPECT_NEAR(r.length(), 141.5, 0.01);
  // The corridor double-crossing: legs 1 and 3 have a 4 m lateral move.
  EXPECT_NEAR(std::abs(r.waypoints()[2].y - r.waypoints()[1].y), 4.0, 1e-9);
  EXPECT_NEAR(std::abs(r.waypoints()[4].y - r.waypoints()[3].y), 4.0, 1e-9);
}

TEST(DeadReckoner, StraightLine) {
  nav::DeadReckoner dr({0, 0}, [](double) { return 0.0; });
  core::StepEvent e;
  e.stride = 0.7;
  for (int i = 0; i < 10; ++i) {
    e.t = static_cast<double>(i);
    dr.advance(e);
  }
  EXPECT_NEAR(dr.position().x, 7.0, 1e-12);
  EXPECT_NEAR(dr.position().y, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(dr.traveled(), 7.0);
  EXPECT_EQ(dr.trajectory().size(), 11u);  // origin + 10 fixes
}

TEST(DeadReckoner, TurnsWithHeading) {
  // Heading switches to +y after t = 5.
  nav::DeadReckoner dr({0, 0}, [](double t) { return t < 5.0 ? 0.0 : kPi / 2; });
  core::StepEvent e;
  e.stride = 1.0;
  for (int i = 0; i < 10; ++i) {
    e.t = static_cast<double>(i);
    dr.advance(e);
  }
  EXPECT_NEAR(dr.position().x, 5.0, 1e-9);
  EXPECT_NEAR(dr.position().y, 5.0, 1e-9);
}

TEST(DeadReckoner, RequiresHeadingSource) {
  EXPECT_THROW(nav::DeadReckoner({0, 0}, nav::HeadingSource{}),
               InvalidArgument);
}

TEST(ReckonTrajectory, ConvenienceMatchesManual) {
  core::TrackResult result;
  for (int i = 0; i < 5; ++i) {
    core::StepEvent e;
    e.t = static_cast<double>(i);
    e.stride = 0.5;
    result.events.push_back(e);
  }
  const auto traj =
      nav::reckon_trajectory(result, {1, 1}, [](double) { return 0.0; });
  ASSERT_EQ(traj.size(), 6u);
  EXPECT_NEAR(traj.back().x, 3.5, 1e-12);
  EXPECT_NEAR(traj.back().y, 1.0, 1e-12);
}

TEST(RouteHeadingSource, FollowsLegsWithoutNoise) {
  const Route r({{0, 0}, {10, 0}, {10, 10}});
  // Walker progresses 1 m/s.
  const auto heading =
      nav::route_heading_source(r, [](double t) { return t; }, 0.0, 1);
  EXPECT_NEAR(heading(5.0), 0.0, 1e-12);
  EXPECT_NEAR(heading(15.0), kPi / 2, 1e-12);
}

TEST(ScoreTrajectory, PerfectPathScoresZero) {
  const Route r({{0, 0}, {10, 0}});
  std::vector<Point> traj;
  for (int i = 0; i <= 10; ++i) traj.push_back({static_cast<double>(i), 0.0});
  const auto stats = nav::score_trajectory(r, traj);
  EXPECT_NEAR(stats.mean_cross_track, 0.0, 1e-12);
  EXPECT_NEAR(stats.end_error, 0.0, 1e-12);
}

TEST(ScoreTrajectory, OffsetPathScored) {
  const Route r({{0, 0}, {10, 0}});
  std::vector<Point> traj{{0, 1}, {5, 1}, {10, 1}};
  const auto stats = nav::score_trajectory(r, traj);
  EXPECT_NEAR(stats.mean_cross_track, 1.0, 1e-12);
  EXPECT_NEAR(stats.max_cross_track, 1.0, 1e-12);
  EXPECT_NEAR(stats.end_error, 1.0, 1e-12);
}
