// Unit tests for the rigid arc-motion generator (interference substrate).

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "synth/arc_motion.hpp"
#include "synth/interference.hpp"

using namespace ptrack;

TEST(Waveform, SineIsBounded) {
  for (double phi = 0.0; phi < 10.0; phi += 0.1) {
    const double v = synth::waveform_value(synth::Waveform::Sine, phi, 2.5);
    EXPECT_LE(std::abs(v), 1.0 + 1e-12);
  }
}

TEST(Waveform, DwellFlattensExtremes) {
  // At the sine's peak the dwell waveform saturates near +-1 but with a
  // much flatter top: value at phi = pi/2 +- 0.3 stays close to the peak.
  const double peak = synth::waveform_value(synth::Waveform::Dwell, kPi / 2, 3.0);
  const double near_peak =
      synth::waveform_value(synth::Waveform::Dwell, kPi / 2 - 0.3, 3.0);
  EXPECT_NEAR(peak, 1.0, 1e-9);
  EXPECT_GT(near_peak, 0.95);
  // The plain sine falls off faster.
  EXPECT_LT(std::sin(kPi / 2 - 0.3), 0.96);
}

TEST(Waveform, PulseRestsOutsideDuty) {
  const double duty = 0.4;
  // Inside the duty cycle: a positive bump.
  EXPECT_GT(synth::waveform_value(synth::Waveform::Pulse, kTwoPi * 0.2, 2.5,
                                  duty),
            0.9);
  // Outside: exactly flat.
  EXPECT_DOUBLE_EQ(
      synth::waveform_value(synth::Waveform::Pulse, kTwoPi * 0.7, 2.5, duty),
      0.0);
}

TEST(Waveform, PulseIsContinuousAtDutyEdge) {
  const double duty = 0.4;
  const double before = synth::waveform_value(synth::Waveform::Pulse,
                                              kTwoPi * (duty - 1e-6), 2.5, duty);
  EXPECT_NEAR(before, 0.0, 1e-4);
}

TEST(GenerateArc, PositionsStayOnSphereWithoutSway) {
  synth::ArcMotionParams p;
  p.radius = 0.4;
  p.amplitude = 0.5;
  p.sway_amp = 0.0;
  Rng rng(3);
  const synth::ArcPath path = synth::generate_arc(p, 5.0, 200.0, rng);
  ASSERT_EQ(path.pos.size(), 1000u);
  for (const Vec3& v : path.pos) {
    EXPECT_NEAR(v.norm(), p.radius, 1e-9);
  }
}

TEST(GenerateArc, ThetaStreamMatchesPositions) {
  synth::ArcMotionParams p;
  p.radius = 0.3;
  p.amplitude = 0.4;
  p.center_angle = 0.2;
  p.sway_amp = 0.0;
  Rng rng(4);
  const synth::ArcPath path = synth::generate_arc(p, 2.0, 100.0, rng);
  ASSERT_EQ(path.theta.size(), path.pos.size());
  for (std::size_t i = 0; i < path.pos.size(); ++i) {
    const double theta = path.theta[i] + p.center_angle;
    const Vec3 expected =
        (p.plane_a * std::cos(theta) + p.plane_b * std::sin(theta)) * p.radius;
    EXPECT_NEAR((path.pos[i] - expected).norm(), 0.0, 1e-9);
  }
}

TEST(GenerateArc, TiltAxisIsPlaneNormal) {
  synth::ArcMotionParams p;
  Rng rng(5);
  const synth::ArcPath path = synth::generate_arc(p, 1.0, 100.0, rng);
  EXPECT_NEAR(path.tilt_axis.dot(p.plane_a.normalized()), 0.0, 1e-9);
  EXPECT_NEAR(path.tilt_axis.dot(p.plane_b.normalized()), 0.0, 1e-9);
  EXPECT_NEAR(path.tilt_axis.norm(), 1.0, 1e-9);
}

TEST(GenerateArc, AmplitudeBoundsRespected) {
  synth::ArcMotionParams p;
  p.amplitude = 0.3;
  p.amplitude_jitter = 0.0;
  p.tremor_amp = 0.0;
  p.sway_amp = 0.0;
  Rng rng(6);
  const synth::ArcPath path = synth::generate_arc(p, 4.0, 100.0, rng);
  for (double theta : path.theta) {
    EXPECT_LE(std::abs(theta), 0.3 + 1e-9);
  }
}

TEST(GenerateArc, DeterministicGivenSeed) {
  synth::ArcMotionParams p;
  Rng a(11);
  Rng b(11);
  const auto pa = synth::generate_arc(p, 1.0, 100.0, a);
  const auto pb = synth::generate_arc(p, 1.0, 100.0, b);
  ASSERT_EQ(pa.pos.size(), pb.pos.size());
  for (std::size_t i = 0; i < pa.pos.size(); ++i) {
    EXPECT_EQ(pa.pos[i], pb.pos[i]);
  }
}

TEST(GenerateArc, Preconditions) {
  synth::ArcMotionParams p;
  Rng rng(1);
  EXPECT_THROW(synth::generate_arc(p, 0.0, 100.0, rng), InvalidArgument);
  p.base_freq = 0.0;
  EXPECT_THROW(synth::generate_arc(p, 1.0, 100.0, rng), InvalidArgument);
}

TEST(InterferenceParams, AllKindsProduceValidParams) {
  Rng rng(8);
  synth::UserProfile user;
  for (synth::ActivityKind kind :
       {synth::ActivityKind::Eating, synth::ActivityKind::Poker,
        synth::ActivityKind::Photo, synth::ActivityKind::Gaming,
        synth::ActivityKind::Spoofer, synth::ActivityKind::Idle}) {
    const synth::ArcMotionParams p =
        synth::interference_params(kind, synth::Posture::Standing, user, rng);
    EXPECT_GT(p.base_freq, 0.0);
    EXPECT_GT(p.radius, 0.0);
    EXPECT_NEAR(p.plane_a.norm(), 1.0, 1e-6);
    EXPECT_NEAR(p.plane_b.norm(), 1.0, 1e-6);
    // The two plane vectors must be orthogonal.
    EXPECT_NEAR(p.plane_a.dot(p.plane_b), 0.0, 1e-6);
  }
}

TEST(InterferenceParams, GaitKindsRejected) {
  Rng rng(9);
  synth::UserProfile user;
  EXPECT_THROW(synth::interference_params(synth::ActivityKind::Walking,
                                          synth::Posture::Standing, user, rng),
               InvalidArgument);
}

TEST(InterferenceParams, SeatedSwayIsSmaller) {
  Rng a(10);
  Rng b(10);
  synth::UserProfile user;
  const auto seated = synth::interference_params(
      synth::ActivityKind::Eating, synth::Posture::Seated, user, a);
  const auto standing = synth::interference_params(
      synth::ActivityKind::Eating, synth::Posture::Standing, user, b);
  EXPECT_LT(seated.sway_amp, standing.sway_amp);
}

TEST(GenerateInterference, ProducesSamplesAndTilt) {
  Rng rng(12);
  synth::UserProfile user;
  const synth::ArcPath path = synth::generate_interference(
      synth::ActivityKind::Poker, synth::Posture::Standing, user, 3.0, 100.0,
      rng);
  EXPECT_EQ(path.pos.size(), 300u);
  EXPECT_EQ(path.theta.size(), 300u);
}
