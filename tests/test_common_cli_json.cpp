// Tests for the CLI argument parser and the JSON writer.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

using namespace ptrack;

namespace {

cli::Args parse(std::vector<const char*> argv,
                std::vector<cli::OptionSpec> specs) {
  argv.insert(argv.begin(), "prog");
  return cli::Args(static_cast<int>(argv.size()), argv.data(),
                   std::move(specs));
}

const std::vector<cli::OptionSpec> kSpecs = {
    {"input", "input file", "", false},
    {"scale", "a number", "1.5", false},
    {"count", "an integer", "3", false},
    {"verbose", "a flag", "", true},
};

}  // namespace

TEST(Cli, ParsesSeparateAndEqualsForms) {
  const auto a = parse({"--input", "x.csv", "--scale=2.5"}, kSpecs);
  EXPECT_EQ(a.get_string("input"), "x.csv");
  EXPECT_DOUBLE_EQ(a.get_double("scale"), 2.5);
}

TEST(Cli, DefaultsApply) {
  const auto a = parse({"--input", "x.csv"}, kSpecs);
  EXPECT_DOUBLE_EQ(a.get_double("scale"), 1.5);
  EXPECT_EQ(a.get_int("count"), 3);
  EXPECT_FALSE(a.get_bool("verbose"));
}

TEST(Cli, BooleanFlag) {
  const auto a = parse({"--input", "x", "--verbose"}, kSpecs);
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_THROW(parse({"--verbose=yes"}, kSpecs), InvalidArgument);
}

TEST(Cli, MissingRequiredThrowsOnAccess) {
  const auto a = parse({}, kSpecs);
  EXPECT_THROW(a.get_string("input"), InvalidArgument);
}

TEST(Cli, UnknownOptionThrows) {
  EXPECT_THROW(parse({"--nope", "1"}, kSpecs), InvalidArgument);
}

TEST(Cli, MalformedValueThrows) {
  const auto a = parse({"--scale", "abc", "--input", "x"}, kSpecs);
  EXPECT_THROW((void)a.get_double("scale"), InvalidArgument);
  const auto b = parse({"--count", "1.5x", "--input", "x"}, kSpecs);
  EXPECT_EQ(b.get_int("count"), 1);  // stol parses the leading digits
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(parse({"--input"}, kSpecs), InvalidArgument);
}

TEST(Cli, HelpDetected) {
  const auto a = parse({"--help"}, kSpecs);
  EXPECT_TRUE(a.help_requested());
  EXPECT_NE(a.usage("prog").find("--input"), std::string::npos);
}

TEST(Json, SimpleObject) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("a").value(static_cast<long long>(1));
  w.key("b").value("text");
  w.key("c").value(true);
  w.key("d").null();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"a":1,"b":"text","c":true,"d":null})");
}

TEST(Json, NestedArrays) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_array();
  w.value(1.5);
  w.begin_object().key("x").value(static_cast<std::size_t>(7)).end_object();
  w.begin_array().end_array();
  w.end_array();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"([1.5,{"x":7},[]])");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteBecomesNull) {
  std::ostringstream os;
  json::Writer w(os);
  w.value(std::nan(""));
  EXPECT_EQ(os.str(), "null");
}

TEST(Json, StructuralMisuseThrows) {
  std::ostringstream os;
  json::Writer w(os);
  EXPECT_THROW(w.key("a"), InvariantViolation);  // key outside object
  w.begin_object();
  EXPECT_THROW(w.value(1.0), InvariantViolation);  // value without key
  EXPECT_THROW(w.end_array(), InvariantViolation);
  w.key("k");
  EXPECT_THROW(w.key("again"), InvariantViolation);  // key after key
}

TEST(Json, IncompleteDocumentDetected) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  EXPECT_FALSE(w.complete());
}

// ---------------------------------------------------------------------------
// json::parse (the read side)

TEST(JsonParse, RoundTripsWriterOutput) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("steps").value(static_cast<std::size_t>(42));
  w.key("ratio").value(0.125);
  w.key("name").value("trace \"a\"\n");
  w.key("ok").value(true);
  w.key("missing").null();
  w.key("events").begin_array();
  w.value(1.0).value(2.5);
  w.end_array();
  w.end_object();

  const json::Value v = json::parse(os.str());
  EXPECT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("steps").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(v.at("ratio").as_number(), 0.125);
  EXPECT_EQ(v.at("name").as_string(), "trace \"a\"\n");
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_TRUE(v.at("missing").is_null());
  ASSERT_EQ(v.at("events").items().size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("events").items()[1].as_number(), 2.5);
}

TEST(JsonParse, NumbersAndWhitespace) {
  const json::Value v =
      json::parse("  [ -0.5, 1e3, 2E-2, 0, 123, -7 ]\n");
  const auto& xs = v.items();
  ASSERT_EQ(xs.size(), 6u);
  EXPECT_DOUBLE_EQ(xs[0].as_number(), -0.5);
  EXPECT_DOUBLE_EQ(xs[1].as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(xs[2].as_number(), 0.02);
  EXPECT_DOUBLE_EQ(xs[5].as_number(), -7.0);
}

TEST(JsonParse, UnicodeEscapes) {
  // BMP escape and a surrogate pair (U+1F600).
  const json::Value v = json::parse(R"(["é", "😀"])");
  EXPECT_EQ(v.items()[0].as_string(), "\xc3\xa9");
  EXPECT_EQ(v.items()[1].as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(json::parse(""), InvalidArgument);
  EXPECT_THROW(json::parse("{"), InvalidArgument);
  EXPECT_THROW(json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(json::parse("{\"a\":1} x"), InvalidArgument);  // trailing
  EXPECT_THROW(json::parse("\"unterminated"), InvalidArgument);
  EXPECT_THROW(json::parse("01"), InvalidArgument);
  EXPECT_THROW(json::parse("1."), InvalidArgument);
  EXPECT_THROW(json::parse("nan"), InvalidArgument);
  EXPECT_THROW(json::parse(R"(["\ud800"])"), InvalidArgument);  // lone hi
  EXPECT_THROW(json::parse("tru"), InvalidArgument);
}

TEST(JsonParse, NestingDepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW(json::parse(deep), InvalidArgument);
  std::string ok;
  for (int i = 0; i < 50; ++i) ok += '[';
  for (int i = 0; i < 50; ++i) ok += ']';
  EXPECT_NO_THROW(json::parse(ok));
}

TEST(JsonParse, AccessorsThrowOnTypeMismatch) {
  const json::Value v = json::parse(R"({"a": 1})");
  EXPECT_THROW((void)v.at("a").as_string(), InvalidArgument);
  EXPECT_THROW((void)v.at("b"), InvalidArgument);
  EXPECT_THROW((void)v.items(), InvalidArgument);
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("b"));
}
