// Tests for the CLI argument parser and the JSON writer.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

using namespace ptrack;

namespace {

cli::Args parse(std::vector<const char*> argv,
                std::vector<cli::OptionSpec> specs) {
  argv.insert(argv.begin(), "prog");
  return cli::Args(static_cast<int>(argv.size()), argv.data(),
                   std::move(specs));
}

const std::vector<cli::OptionSpec> kSpecs = {
    {"input", "input file", "", false},
    {"scale", "a number", "1.5", false},
    {"count", "an integer", "3", false},
    {"verbose", "a flag", "", true},
};

}  // namespace

TEST(Cli, ParsesSeparateAndEqualsForms) {
  const auto a = parse({"--input", "x.csv", "--scale=2.5"}, kSpecs);
  EXPECT_EQ(a.get_string("input"), "x.csv");
  EXPECT_DOUBLE_EQ(a.get_double("scale"), 2.5);
}

TEST(Cli, DefaultsApply) {
  const auto a = parse({"--input", "x.csv"}, kSpecs);
  EXPECT_DOUBLE_EQ(a.get_double("scale"), 1.5);
  EXPECT_EQ(a.get_int("count"), 3);
  EXPECT_FALSE(a.get_bool("verbose"));
}

TEST(Cli, BooleanFlag) {
  const auto a = parse({"--input", "x", "--verbose"}, kSpecs);
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_THROW(parse({"--verbose=yes"}, kSpecs), InvalidArgument);
}

TEST(Cli, MissingRequiredThrowsOnAccess) {
  const auto a = parse({}, kSpecs);
  EXPECT_THROW(a.get_string("input"), InvalidArgument);
}

TEST(Cli, UnknownOptionThrows) {
  EXPECT_THROW(parse({"--nope", "1"}, kSpecs), InvalidArgument);
}

TEST(Cli, MalformedValueThrows) {
  const auto a = parse({"--scale", "abc", "--input", "x"}, kSpecs);
  EXPECT_THROW((void)a.get_double("scale"), InvalidArgument);
  const auto b = parse({"--count", "1.5x", "--input", "x"}, kSpecs);
  EXPECT_EQ(b.get_int("count"), 1);  // stol parses the leading digits
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(parse({"--input"}, kSpecs), InvalidArgument);
}

TEST(Cli, HelpDetected) {
  const auto a = parse({"--help"}, kSpecs);
  EXPECT_TRUE(a.help_requested());
  EXPECT_NE(a.usage("prog").find("--input"), std::string::npos);
}

TEST(Json, SimpleObject) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("a").value(static_cast<long long>(1));
  w.key("b").value("text");
  w.key("c").value(true);
  w.key("d").null();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"a":1,"b":"text","c":true,"d":null})");
}

TEST(Json, NestedArrays) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_array();
  w.value(1.5);
  w.begin_object().key("x").value(static_cast<std::size_t>(7)).end_object();
  w.begin_array().end_array();
  w.end_array();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"([1.5,{"x":7},[]])");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteBecomesNull) {
  std::ostringstream os;
  json::Writer w(os);
  w.value(std::nan(""));
  EXPECT_EQ(os.str(), "null");
}

TEST(Json, StructuralMisuseThrows) {
  std::ostringstream os;
  json::Writer w(os);
  EXPECT_THROW(w.key("a"), InvariantViolation);  // key outside object
  w.begin_object();
  EXPECT_THROW(w.value(1.0), InvariantViolation);  // value without key
  EXPECT_THROW(w.end_array(), InvariantViolation);
  w.key("k");
  EXPECT_THROW(w.key("again"), InvariantViolation);  // key after key
}

TEST(Json, IncompleteDocumentDetected) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  EXPECT_FALSE(w.complete());
}
