// Batch-oracle equivalence sweep: the incremental stage graph (and the
// legacy recompute wrapper) must reproduce the batch pipeline's events over
// the same samples, across hop / window / guard settings and across synth
// scenarios — including interference (no events either way) and injected
// sensor faults. Batch results are the oracle (core/stages.hpp contract);
// divergence is bounded to the documented seam effects, so the assertions
// check count, chronology, per-event time alignment and distance, not
// bit-equality.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "core/ptrack.hpp"
#include "core/streaming.hpp"
#include "imu/faults.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct NamedTrace {
  std::string name;
  imu::Trace trace;
  bool expect_quiet = false;  ///< interference: the oracle emits ~nothing
};

std::vector<NamedTrace> scenarios() {
  synth::UserProfile user;
  const auto make = [&](const synth::Scenario& sc, std::uint64_t seed) {
    Rng rng(seed);
    return synth::synthesize(sc, user, synth::SynthOptions{}, rng).trace;
  };
  std::vector<NamedTrace> out;
  out.push_back({"walking", make(synth::Scenario::pure_walking(45.0), 701)});
  out.push_back({"stepping", make(synth::Scenario::pure_stepping(45.0), 702)});
  out.push_back({"mixed", make(synth::Scenario::mixed_gait(60.0), 703)});
  out.push_back({"interference",
                 make(synth::Scenario::interference(synth::ActivityKind::Gaming,
                                                    45.0,
                                                    synth::Posture::Standing),
                      704),
                 /*expect_quiet=*/true});
  {
    imu::Trace faulty = make(synth::Scenario::pure_walking(45.0), 705);
    Rng rng(706);
    faulty = imu::inject_dropouts(faulty, 4.0, 10, 60, rng);
    faulty = imu::clip_acceleration(faulty, 25.0);
    out.push_back({"faulted", std::move(faulty)});
  }
  return out;
}

core::StreamingConfig base_config() {
  synth::UserProfile user;
  core::StreamingConfig cfg;
  cfg.pipeline.stride.profile = {user.arm_length, user.leg_length, 2.0};
  return cfg;
}

std::vector<core::StepEvent> run_stream(const imu::Trace& trace,
                                        const core::StreamingConfig& cfg) {
  core::StreamingTracker stream(trace.fs(), cfg);
  std::vector<core::StepEvent> events;
  // Push in uneven chunks and poll between them: equivalence must not
  // depend on how the stream is sliced.
  std::size_t i = 0, chunk = 137;
  while (i < trace.size()) {
    const std::size_t n = std::min(chunk, trace.size() - i);
    for (std::size_t j = 0; j < n; ++j) stream.push(trace[i + j]);
    i += n;
    chunk = chunk == 137 ? 411 : 137;
    for (const auto& e : stream.poll()) events.push_back(e);
  }
  for (const auto& e : stream.finish()) events.push_back(e);
  return events;
}

void expect_equivalent(const NamedTrace& s,
                       const std::vector<core::StepEvent>& batch,
                       const std::vector<core::StepEvent>& stream,
                       bool incremental) {
  SCOPED_TRACE(s.name);
  // Chronological, never retracted, never duplicated.
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GT(stream[i].t, stream[i - 1].t);
  }
  const double b = static_cast<double>(batch.size());
  EXPECT_NEAR(static_cast<double>(stream.size()), b, 0.08 * b + 2.0);
  if (s.expect_quiet) {
    EXPECT_LE(stream.size(), batch.size() + 2);
    return;
  }
  if (incremental) {
    // Events align with the oracle's event times: the stages are the same
    // code over the same samples, so only hop-seam effects (per-region
    // gravity estimate, filter margins) shift the odd peak.
    std::size_t matched = 0;
    for (const core::StepEvent& e : stream) {
      for (const core::StepEvent& o : batch) {
        if (std::abs(o.t - e.t) <= 0.06) {
          ++matched;
          break;
        }
      }
    }
    EXPECT_GE(static_cast<double>(matched),
              0.9 * static_cast<double>(stream.size()));
  }
  double dist_b = 0.0, dist_s = 0.0;
  for (const auto& e : batch) dist_b += e.stride;
  for (const auto& e : stream) dist_s += e.stride;
  EXPECT_NEAR(dist_s, dist_b, 0.10 * dist_b + 1.0);
}

}  // namespace

class IncrementalEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(IncrementalEquivalence, TracksBatchOracleAcrossScenarios) {
  const double hop_s = GetParam();
  for (const NamedTrace& s : scenarios()) {
    core::StreamingConfig cfg = base_config();
    cfg.hop_s = hop_s;
    core::PTrack batch(cfg.pipeline);
    const core::TrackResult oracle = batch.process(s.trace);
    const auto events = run_stream(s.trace, cfg);
    expect_equivalent(s, oracle.events, events, /*incremental=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(HopSweep, IncrementalEquivalence,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0),
                         [](const auto& pinfo) {
                           return "hop_" +
                                  std::to_string(static_cast<int>(
                                      pinfo.param * 10.0)) +
                                  "ds";
                         });

struct RecomputeParams {
  double hop_s, window_s, guard_s;
};

class RecomputeEquivalence
    : public ::testing::TestWithParam<RecomputeParams> {};

TEST_P(RecomputeEquivalence, TracksBatchOracleAcrossScenarios) {
  const RecomputeParams p = GetParam();
  for (const NamedTrace& s : scenarios()) {
    core::StreamingConfig cfg = base_config();
    cfg.mode = core::StreamingConfig::Mode::kRecompute;
    cfg.hop_s = p.hop_s;
    cfg.window_s = p.window_s;
    cfg.guard_s = p.guard_s;
    core::PTrack batch(cfg.pipeline);
    const core::TrackResult oracle = batch.process(s.trace);
    const auto events = run_stream(s.trace, cfg);
    expect_equivalent(s, oracle.events, events, /*incremental=*/false);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowGuardSweep, RecomputeEquivalence,
    ::testing::Values(RecomputeParams{1.0, 12.0, 3.0},
                      RecomputeParams{2.0, 12.0, 3.0},
                      RecomputeParams{1.0, 20.0, 5.0},
                      RecomputeParams{2.0, 20.0, 5.0},
                      RecomputeParams{1.0, 30.0, 8.0},
                      RecomputeParams{2.0, 30.0, 8.0}),
    [](const auto& pinfo) {
      return "hop" + std::to_string(static_cast<int>(pinfo.param.hop_s)) +
             "_w" + std::to_string(static_cast<int>(pinfo.param.window_s)) +
             "_g" + std::to_string(static_cast<int>(pinfo.param.guard_s));
    });

// ---------------------------------------------------------------------------
// Determinism and satellite contracts.

TEST(StreamingEquivalence, SliceInvariant) {
  // The same stream pushed whole vs. in chunks yields bit-identical events
  // (hop boundaries depend only on the sample count).
  synth::UserProfile user;
  Rng rng(710);
  const auto r = synth::synthesize(synth::Scenario::pure_walking(40.0), user,
                                   synth::SynthOptions{}, rng);
  const core::StreamingConfig cfg = base_config();

  core::StreamingTracker whole(r.trace.fs(), cfg);
  whole.push(r.trace);
  auto a = whole.poll();
  for (const auto& e : whole.finish()) a.push_back(e);

  const auto b = run_stream(r.trace, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].t, b[i].t);
    EXPECT_DOUBLE_EQ(a[i].stride, b[i].stride);
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST(StreamingEquivalence, MismatchedSampleRateThrows) {
  const core::StreamingConfig cfg = base_config();
  core::StreamingTracker stream(100.0, cfg);
  synth::UserProfile user;
  Rng rng(711);
  synth::SynthOptions opt;
  opt.device_fs = 50.0;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(5.0), user,
                                   opt, rng);
  ASSERT_NE(r.trace.fs(), 100.0);
  EXPECT_THROW(stream.push(r.trace), InvalidArgument);
  // A matching-rate trace is accepted as before.
  Rng rng2(712);
  const auto ok = synth::synthesize(synth::Scenario::pure_walking(5.0), user,
                                    synth::SynthOptions{}, rng2);
  ASSERT_EQ(ok.trace.fs(), 100.0);
  EXPECT_NO_THROW(stream.push(ok.trace));
}

TEST(StreamingEquivalence, TinyStreamEmitsNothing) {
  // Documented floor: under 32 samples there is not even one projectable
  // region plus a cycle's worth of peaks, in either mode.
  synth::UserProfile user;
  Rng rng(713);
  const auto r = synth::synthesize(synth::Scenario::pure_walking(2.0), user,
                                   synth::SynthOptions{}, rng);
  for (const auto mode : {core::StreamingConfig::Mode::kIncremental,
                          core::StreamingConfig::Mode::kRecompute}) {
    core::StreamingConfig cfg = base_config();
    cfg.mode = mode;
    core::StreamingTracker stream(r.trace.fs(), cfg);
    for (std::size_t i = 0; i < 31; ++i) stream.push(r.trace[i]);
    const auto events = stream.finish();
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(stream.steps(), 0u);
  }
}
