// Unit tests for the PTrack stride estimator on synthesized gait.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "common/error.hpp"
#include "core/frontend.hpp"
#include "core/step_counter.hpp"
#include "core/stride_estimator.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct StrideFixture {
  synth::UserProfile user;
  synth::SynthResult result;
  core::ProjectedTrace projected;
  core::TrackResult counted;
};

StrideFixture make(synth::ActivityKind kind, std::uint64_t seed) {
  StrideFixture s;
  Rng rng(seed);
  synth::Scenario scenario = kind == synth::ActivityKind::Walking
                                 ? synth::Scenario::pure_walking(40.0)
                                 : synth::Scenario::pure_stepping(40.0);
  s.result = synth::synthesize(scenario, s.user, synth::SynthOptions{}, rng);
  s.projected = core::project_trace(s.result.trace, 5.0);
  const core::StepCounter counter{core::StepCounterConfig{}};
  s.counted = counter.process_projected(s.projected);
  return s;
}

core::StrideEstimator estimator_for(const synth::UserProfile& user) {
  core::StrideConfig cfg;
  cfg.profile = {user.arm_length, user.leg_length, 2.0};
  return core::StrideEstimator(cfg);
}

}  // namespace

TEST(StrideEstimator, WalkingCyclesYieldEstimates) {
  const StrideFixture s = make(synth::ActivityKind::Walking, 61);
  const core::StrideEstimator est = estimator_for(s.user);
  std::size_t produced = 0;
  for (const core::CycleRecord& c : s.counted.cycles) {
    if (c.type != core::GaitType::Walking) continue;
    produced += est.estimate_cycle(s.projected, c).size();
  }
  EXPECT_GT(produced, 20u);
}

TEST(StrideEstimator, WalkingBounceNearTruth) {
  const StrideFixture s = make(synth::ActivityKind::Walking, 62);
  const core::StrideEstimator est = estimator_for(s.user);
  std::vector<double> bounces;
  for (const core::CycleRecord& c : s.counted.cycles) {
    if (c.type != core::GaitType::Walking) continue;
    for (const core::SweepEstimate& e : est.estimate_cycle(s.projected, c)) {
      if (e.valid) bounces.push_back(e.bounce);
    }
  }
  ASSERT_GT(bounces.size(), 10u);
  const double truth = s.user.bounce_for_stride(s.user.mean_stride());
  EXPECT_NEAR(stats::median(bounces), truth, 0.35 * truth);
}

TEST(StrideEstimator, SteppingDirectBounceNearTruth) {
  const StrideFixture s = make(synth::ActivityKind::Stepping, 63);
  const core::StrideEstimator est = estimator_for(s.user);
  std::vector<double> bounces;
  for (const core::CycleRecord& c : s.counted.cycles) {
    if (c.type != core::GaitType::Stepping) continue;
    for (const core::SweepEstimate& e : est.estimate_cycle(s.projected, c)) {
      if (e.valid) bounces.push_back(e.bounce);
    }
  }
  ASSERT_GT(bounces.size(), 10u);
  const double truth = s.user.bounce_for_stride(s.user.mean_stride());
  EXPECT_NEAR(stats::median(bounces), truth, 0.2 * truth);
}

TEST(StrideEstimator, SteppingStrideNearTruth) {
  const StrideFixture s = make(synth::ActivityKind::Stepping, 64);
  const core::StrideEstimator est = estimator_for(s.user);
  std::vector<double> strides;
  for (const core::CycleRecord& c : s.counted.cycles) {
    if (c.type == core::GaitType::Interference) continue;
    for (const core::SweepEstimate& e : est.estimate_cycle(s.projected, c)) {
      if (e.valid) strides.push_back(e.stride);
    }
  }
  ASSERT_GT(strides.size(), 10u);
  EXPECT_NEAR(stats::median(strides), s.user.mean_stride(),
              0.2 * s.user.mean_stride());
}

TEST(StrideEstimator, InterferenceCyclesYieldNothing) {
  const StrideFixture s = make(synth::ActivityKind::Walking, 65);
  const core::StrideEstimator est = estimator_for(s.user);
  core::CycleRecord fake;
  fake.begin = 0;
  fake.mid = 50;
  fake.end = 100;
  fake.type = core::GaitType::Interference;
  EXPECT_TRUE(est.estimate_cycle(s.projected, fake).empty());
}

TEST(StrideEstimator, TinyCycleYieldsNothing) {
  const StrideFixture s = make(synth::ActivityKind::Walking, 66);
  const core::StrideEstimator est = estimator_for(s.user);
  core::CycleRecord fake;
  fake.begin = 0;
  fake.mid = 5;
  fake.end = 10;
  fake.type = core::GaitType::Walking;
  EXPECT_TRUE(est.estimate_cycle(s.projected, fake).empty());
}

TEST(StrideEstimator, CycleOutOfRangeThrows) {
  const StrideFixture s = make(synth::ActivityKind::Walking, 67);
  const core::StrideEstimator est = estimator_for(s.user);
  core::CycleRecord fake;
  fake.begin = 0;
  fake.end = s.projected.vertical.size() + 10;
  fake.type = core::GaitType::Walking;
  EXPECT_THROW(est.estimate_cycle(s.projected, fake), InvalidArgument);
}

TEST(StrideEstimator, InvalidProfileThrows) {
  core::StrideConfig cfg;
  cfg.profile.arm_length = 0.0;
  EXPECT_THROW(core::StrideEstimator{cfg}, InvalidArgument);
}

TEST(StrideEstimator, SetProfileTakesEffect) {
  const StrideFixture s = make(synth::ActivityKind::Stepping, 68);
  core::StrideConfig cfg;
  cfg.profile = {s.user.arm_length, s.user.leg_length, 2.0};
  core::StrideEstimator est(cfg);

  // Doubling the leg length scales stepping strides up.
  std::vector<double> before;
  std::vector<double> after;
  for (const core::CycleRecord& c : s.counted.cycles) {
    if (c.type != core::GaitType::Stepping) continue;
    for (const core::SweepEstimate& e : est.estimate_cycle(s.projected, c)) {
      before.push_back(e.stride);
    }
  }
  core::StrideProfile big = cfg.profile;
  big.leg_length *= 2.0;
  est.set_profile(big);
  for (const core::CycleRecord& c : s.counted.cycles) {
    if (c.type != core::GaitType::Stepping) continue;
    for (const core::SweepEstimate& e : est.estimate_cycle(s.projected, c)) {
      after.push_back(e.stride);
    }
  }
  ASSERT_FALSE(before.empty());
  ASSERT_EQ(before.size(), after.size());
  EXPECT_GT(stats::mean(after), stats::mean(before));
}
