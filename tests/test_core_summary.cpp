// Tests for the activity summary and the k calibration.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/calibration.hpp"
#include "core/ptrack.hpp"
#include "core/summary.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult make(const synth::Scenario& scenario, std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(scenario, user, synth::SynthOptions{}, rng);
}

core::TrackResult track(const imu::Trace& trace) {
  synth::UserProfile user;
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack tracker(cfg);
  return tracker.process(trace);
}

}  // namespace

TEST(Summary, WalkingOnly) {
  const auto r = make(synth::Scenario::pure_walking(60.0), 701);
  const auto res = track(r.trace);
  const auto s = core::summarize(res, r.trace.fs());
  EXPECT_EQ(s.steps, res.steps);
  EXPECT_NEAR(s.distance_m, res.distance(), 1e-9);
  EXPECT_GT(s.walking_s, 45.0);
  EXPECT_NEAR(s.stepping_s, 0.0, 5.0);
  EXPECT_NEAR(s.mean_cadence_hz, 1.85, 0.3);
  EXPECT_GT(s.mean_stride_m, 0.4);
  EXPECT_GE(s.max_stride_m, s.mean_stride_m);
}

TEST(Summary, MixedSplitsTime) {
  const auto r = make(synth::Scenario::mixed_gait(90.0), 702);
  const auto s = core::summarize(track(r.trace), r.trace.fs());
  EXPECT_GT(s.walking_s, 20.0);
  EXPECT_GT(s.stepping_s, 20.0);
  EXPECT_NEAR(s.active_s, s.walking_s + s.stepping_s, 1e-9);
}

TEST(Summary, InterferenceGoesToExcluded) {
  synth::Scenario scenario;
  scenario.walk(30.0).activity(synth::ActivityKind::Spoofer, 30.0);
  const auto r = make(scenario, 703);
  const auto s = core::summarize(track(r.trace), r.trace.fs());
  EXPECT_GT(s.excluded_s, 15.0);  // the spoofer's candidates are excluded
  EXPECT_GT(s.walking_s, 20.0);
}

TEST(Summary, EmptyResult) {
  const auto s = core::summarize(core::TrackResult{}, 100.0);
  EXPECT_EQ(s.steps, 0u);
  EXPECT_DOUBLE_EQ(s.mean_cadence_hz, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_stride_m, 0.0);
}

TEST(Summary, InvalidFsThrows) {
  EXPECT_THROW(core::summarize(core::TrackResult{}, 0.0), InvalidArgument);
}

TEST(CalibrateK, CorrectsScaledProfile) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_walking(60.0), 704);

  // A mis-scaled starting k: the calibration must pull the modeled
  // distance to the known value.
  core::StrideProfile profile{user.arm_length, user.leg_length, 1.5};
  const auto cal =
      core::calibrate_k(r.trace, r.truth.total_distance(), profile);
  EXPECT_GT(cal.steps, 50u);
  EXPECT_GT(cal.k, 1.5);  // the low k under-measured; calibration raises it

  // Verify: tracking with the calibrated k lands near the true distance.
  core::PTrackConfig cfg;
  cfg.stride.profile = profile;
  cfg.stride.profile.k = cal.k;
  core::PTrack tracker(cfg);
  const double d = tracker.process(r.trace).distance();
  EXPECT_NEAR(d, r.truth.total_distance(), 0.05 * r.truth.total_distance());
}

TEST(CalibrateK, ThrowsWithoutSteps) {
  const auto r = make(
      synth::Scenario::interference(synth::ActivityKind::Idle, 30.0,
                                    synth::Posture::Seated),
      705);
  synth::UserProfile user;
  core::StrideProfile profile{user.arm_length, user.leg_length, 2.0};
  EXPECT_THROW(core::calibrate_k(r.trace, 50.0, profile), Error);
}

TEST(CalibrateK, InvalidDistanceThrows) {
  const auto r = make(synth::Scenario::pure_walking(20.0), 706);
  synth::UserProfile user;
  core::StrideProfile profile{user.arm_length, user.leg_length, 2.0};
  EXPECT_THROW(core::calibrate_k(r.trace, 0.0, profile), InvalidArgument);
}
