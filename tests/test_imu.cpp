// Unit tests for the IMU substrate: traces, slicing, the sensor error
// model, and CSV persistence.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "imu/noise.hpp"
#include "imu/trace.hpp"
#include "common/csv.hpp"
#include "imu/trace_io.hpp"

using namespace ptrack;

namespace {

imu::Trace make_trace(std::size_t n, double fs = 100.0) {
  std::vector<imu::Sample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    imu::Sample s;
    s.t = static_cast<double>(i) / fs;
    s.accel = {static_cast<double>(i), 0.5, -1.0};
    s.gyro = {0.0, 0.1, 0.2};
    samples.push_back(s);
  }
  return imu::Trace(fs, std::move(samples));
}

}  // namespace

TEST(Trace, BasicAccessors) {
  const imu::Trace t = make_trace(200);
  EXPECT_EQ(t.size(), 200u);
  EXPECT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.fs(), 100.0);
  EXPECT_DOUBLE_EQ(t.dt(), 0.01);
  EXPECT_DOUBLE_EQ(t.duration(), 2.0);
}

TEST(Trace, InvalidConstruction) {
  EXPECT_THROW(imu::Trace(0.0, {}), InvalidArgument);
  std::vector<imu::Sample> bad(2);
  bad[0].t = 1.0;
  bad[1].t = 0.5;  // decreasing time
  EXPECT_THROW(imu::Trace(100.0, std::move(bad)), InvalidArgument);
}

TEST(Trace, SliceBoundsAndContent) {
  const imu::Trace t = make_trace(100);
  const imu::Trace s = t.slice(10, 20);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_DOUBLE_EQ(s[0].accel.x, 10.0);
  EXPECT_THROW(t.slice(50, 40), InvalidArgument);
  EXPECT_THROW(t.slice(0, 101), InvalidArgument);
}

TEST(Trace, AppendShiftsTimestamps) {
  imu::Trace a = make_trace(50);
  const imu::Trace b = make_trace(50);
  a.append(b);
  EXPECT_EQ(a.size(), 100u);
  // Times strictly increasing across the seam.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i].t, a[i - 1].t);
  }
}

TEST(Trace, AppendRateMismatchThrows) {
  imu::Trace a = make_trace(10, 100.0);
  const imu::Trace b = make_trace(10, 50.0);
  EXPECT_THROW(a.append(b), InvalidArgument);
}

TEST(Trace, AxisExtraction) {
  const imu::Trace t = make_trace(5);
  const auto xs = t.accel_axis(0);
  EXPECT_DOUBLE_EQ(xs[3], 3.0);
  const auto ys = t.accel_axis(1);
  EXPECT_DOUBLE_EQ(ys[0], 0.5);
  EXPECT_THROW(t.accel_axis(3), InvalidArgument);
}

TEST(Trace, MagnitudeIsNorm) {
  const imu::Trace t = make_trace(5);
  const auto mag = t.accel_magnitude();
  EXPECT_DOUBLE_EQ(mag[0], (Vec3{0.0, 0.5, -1.0}).norm());
}

TEST(Noise, NoiselessModelIsIdentity) {
  const imu::Trace clean = make_trace(100);
  Rng rng(1);
  const imu::Trace out = imu::corrupt(clean, imu::noiseless(), rng);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(out[i].accel, clean[i].accel);
  }
}

TEST(Noise, DeterministicGivenSeed) {
  const imu::Trace clean = make_trace(100);
  imu::SensorErrorModel model;
  Rng a(9);
  Rng b(9);
  const imu::Trace ta = imu::corrupt(clean, model, a);
  const imu::Trace tb = imu::corrupt(clean, model, b);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].accel, tb[i].accel);
  }
}

TEST(Noise, BiasIsConstantWithinTrace) {
  // With zero white noise and zero quantization, the corruption reduces to
  // one constant per-axis bias.
  const imu::Trace clean = make_trace(100);
  imu::SensorErrorModel model = imu::noiseless();
  model.accel_bias_stddev = 0.1;
  Rng rng(5);
  const imu::Trace out = imu::corrupt(clean, model, rng);
  const Vec3 bias0 = out[0].accel - clean[0].accel;
  for (std::size_t i = 1; i < out.size(); ++i) {
    const Vec3 bias = out[i].accel - clean[i].accel;
    EXPECT_NEAR(bias.x, bias0.x, 1e-12);
    EXPECT_NEAR(bias.y, bias0.y, 1e-12);
    EXPECT_NEAR(bias.z, bias0.z, 1e-12);
  }
}

TEST(Noise, QuantizationSnapsToGrid) {
  const imu::Trace clean = make_trace(20);
  imu::SensorErrorModel model = imu::noiseless();
  model.accel_quantization = 0.5;
  Rng rng(5);
  const imu::Trace out = imu::corrupt(clean, model, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double q = out[i].accel.y / 0.5;
    EXPECT_NEAR(q, std::round(q), 1e-9);
  }
}

TEST(TraceIo, CsvRoundTrip) {
  const std::string path = "/tmp/ptrack_test_trace.csv";
  const imu::Trace t = make_trace(50);
  imu::save_csv(t, path);
  const imu::Trace loaded = imu::load_csv(path);
  ASSERT_EQ(loaded.size(), t.size());
  EXPECT_DOUBLE_EQ(loaded.fs(), t.fs());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(loaded[i].accel.x, t[i].accel.x, 1e-9);
    EXPECT_NEAR(loaded[i].gyro.z, t[i].gyro.z, 1e-9);
    EXPECT_NEAR(loaded[i].t, t[i].t, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsWrongHeader) {
  const std::string path = "/tmp/ptrack_test_badheader.csv";
  csv::write(path, {"x", "y"}, {{1.0, 2.0}});
  EXPECT_THROW(imu::load_csv(path), Error);
  std::remove(path.c_str());
}
