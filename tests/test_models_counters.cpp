// Unit tests for the baseline step counters (GFit-style peak counter and
// Montage), including the vulnerabilities the paper builds on.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/gfit.hpp"
#include "models/montage.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult make(synth::ActivityKind kind, double seconds,
                        std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  synth::Scenario scenario;
  if (kind == synth::ActivityKind::Walking) {
    scenario = synth::Scenario::pure_walking(seconds);
  } else if (kind == synth::ActivityKind::Stepping) {
    scenario = synth::Scenario::pure_stepping(seconds);
  } else {
    scenario =
        synth::Scenario::interference(kind, seconds, synth::Posture::Standing);
  }
  return synth::synthesize(scenario, user, synth::SynthOptions{}, rng);
}

}  // namespace

TEST(PeakCounter, AccurateOnWalking) {
  const auto r = make(synth::ActivityKind::Walking, 60.0, 21);
  models::PeakCounter counter(models::gfit_watch_config());
  const auto det = counter.count_steps(r.trace);
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(det.count), truth, 0.06 * truth);
}

TEST(PeakCounter, AccurateOnStepping) {
  const auto r = make(synth::ActivityKind::Stepping, 60.0, 22);
  models::PeakCounter counter(models::gfit_watch_config());
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(counter.count_steps(r.trace).count), truth,
              0.06 * truth);
}

TEST(PeakCounter, VulnerableToSpoofing) {
  // The vulnerability is the paper's premise (Fig. 1(c)): the peak counter
  // *must* tick on the spoofer.
  const auto r = make(synth::ActivityKind::Spoofer, 40.0, 23);
  models::PeakCounter counter(models::gfit_watch_config());
  EXPECT_GT(counter.count_steps(r.trace).count, 30u);
}

TEST(PeakCounter, VulnerableToEating) {
  const auto r = make(synth::ActivityKind::Eating, 120.0, 24);
  models::PeakCounter counter(models::gfit_watch_config());
  EXPECT_GT(counter.count_steps(r.trace).count, 10u);
}

TEST(PeakCounter, QuietWhenIdle) {
  const auto r = make(synth::ActivityKind::Idle, 60.0, 25);
  models::PeakCounter counter(models::gfit_watch_config());
  EXPECT_LT(counter.count_steps(r.trace).count, 3u);
}

TEST(PeakCounter, StepTimesAreOrderedAndSpaced) {
  const auto r = make(synth::ActivityKind::Walking, 30.0, 26);
  models::PeakCounter counter(models::gfit_watch_config());
  const auto det = counter.count_steps(r.trace);
  ASSERT_GT(det.step_times.size(), 10u);
  for (std::size_t i = 1; i < det.step_times.size(); ++i) {
    EXPECT_GE(det.step_times[i] - det.step_times[i - 1],
              counter.config().min_peak_interval_s - 1e-9);
  }
}

TEST(PeakCounter, TinyTraceYieldsZero) {
  const auto r = make(synth::ActivityKind::Walking, 30.0, 27);
  models::PeakCounter counter(models::gfit_watch_config());
  EXPECT_EQ(counter.count_steps(r.trace.slice(0, 4)).count, 0u);
}

TEST(PeakCounter, PresetsDiffer) {
  EXPECT_NE(models::gfit_watch_config().threshold_factor,
            models::phone_coprocessor_config().threshold_factor);
  EXPECT_EQ(models::miband_config().name, "Band");
}

TEST(PeakCounter, InvalidConfigThrows) {
  models::PeakCounterConfig cfg;
  cfg.lowpass_hz = 0.0;
  EXPECT_THROW(models::PeakCounter{cfg}, InvalidArgument);
}

TEST(MontageCounter, AccurateOnWalking) {
  const auto r = make(synth::ActivityKind::Walking, 60.0, 31);
  models::MontageCounter counter;
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(counter.count_steps(r.trace).count), truth,
              0.08 * truth);
}

TEST(MontageCounter, AccurateOnStepping) {
  const auto r = make(synth::ActivityKind::Stepping, 60.0, 32);
  models::MontageCounter counter;
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(counter.count_steps(r.trace).count), truth,
              0.05 * truth);
}

TEST(MontageCounter, VulnerableToSpoofing) {
  const auto r = make(synth::ActivityKind::Spoofer, 60.0, 33);
  models::MontageCounter counter;
  EXPECT_GT(counter.count_steps(r.trace).count, 40u);
}

TEST(MontageStride, ReasonableOnStepping) {
  // With the device riding the body (stepping), Montage's assumption holds
  // and its strides should be in the right ballpark.
  const auto r = make(synth::ActivityKind::Stepping, 60.0, 34);
  synth::UserProfile user;
  models::MontageStride stride(user.leg_length, 2.0);
  const auto est = stride.estimate(r.trace);
  ASSERT_GT(est.size(), 20u);
  double acc = 0.0;
  for (const auto& e : est) acc += e.stride;
  const double mean = acc / static_cast<double>(est.size());
  EXPECT_NEAR(mean, user.mean_stride(), 0.25);
}

TEST(MontageStride, InvalidParamsThrow) {
  EXPECT_THROW(models::MontageStride(0.0, 2.0), InvalidArgument);
  EXPECT_THROW(models::MontageStride(0.9, -1.0), InvalidArgument);
}
