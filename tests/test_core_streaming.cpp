// Tests for the streaming (online) tracker: bounded memory, monotone
// emission, batch consistency, and graceful degradation under injected
// sensor faults (quality flags must ride along on emitted events).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/streaming.hpp"
#include "imu/faults.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult make(const synth::Scenario& scenario, std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(scenario, user, synth::SynthOptions{}, rng);
}

core::StreamingConfig config_for_user() {
  synth::UserProfile user;
  core::StreamingConfig cfg;
  cfg.pipeline.stride.profile = {user.arm_length, user.leg_length, 2.0};
  return cfg;
}

}  // namespace

TEST(Streaming, MatchesBatchStepCountOnWalking) {
  const auto r = make(synth::Scenario::pure_walking(60.0), 501);

  core::PTrack batch(config_for_user().pipeline);
  const auto batch_result = batch.process(r.trace);

  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  stream.push(r.trace);
  auto events = stream.poll();
  const auto tail = stream.finish();
  events.insert(events.end(), tail.begin(), tail.end());

  const double batch_steps = static_cast<double>(batch_result.steps);
  EXPECT_NEAR(static_cast<double>(events.size()), batch_steps,
              0.08 * batch_steps + 2.0);
}

TEST(Streaming, DrainMatchesBatchOracle) {
  const auto r = make(synth::Scenario::pure_walking(60.0), 509);

  // Reference stream: push everything, flush once through finish().
  core::StreamingTracker ref(r.trace.fs(), config_for_user());
  ref.push(r.trace);
  const auto want = ref.finish();
  ASSERT_GT(want.size(), 45u);

  // drain_into with interleaved polling — the shape of ptrack_serve's
  // SIGTERM drain path — must reproduce the exact same event stream.
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  std::vector<core::StepEvent> got;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    stream.push(r.trace[i]);
    if (i % 137 == 136) stream.poll_into(got);
  }
  stream.drain_into(got);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].t, want[i].t) << "event " << i;
    EXPECT_EQ(got[i].stride, want[i].stride) << "event " << i;
    EXPECT_EQ(got[i].quality, want[i].quality) << "event " << i;
    EXPECT_EQ(got[i].type, want[i].type) << "event " << i;
    EXPECT_EQ(got[i].degraded, want[i].degraded) << "event " << i;
  }

  // And the drained stream stays tied to the batch pipeline's step count.
  core::PTrack batch(config_for_user().pipeline);
  const auto batch_result = batch.process(r.trace);
  const double batch_steps = static_cast<double>(batch_result.steps);
  EXPECT_NEAR(static_cast<double>(got.size()), batch_steps,
              0.08 * batch_steps + 2.0);
}

TEST(Streaming, EventsEmittedIncrementally) {
  const auto r = make(synth::Scenario::pure_walking(30.0), 502);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());

  std::size_t polls_with_events = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    stream.push(r.trace[i]);
    if (i % 500 == 499) {  // poll every 5 s
      const auto events = stream.poll();
      polls_with_events += !events.empty();
      total += events.size();
    }
  }
  total += stream.finish().size();
  EXPECT_GE(polls_with_events, 3u);  // events arrive while walking continues
  EXPECT_GT(total, 45u);  // ~55 true steps in 30 s
}

TEST(Streaming, EventsAreChronologicalAndUnique) {
  const auto r = make(synth::Scenario::mixed_gait(60.0), 503);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());

  std::vector<core::StepEvent> all;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    stream.push(r.trace[i]);
    if (i % 200 == 0) {
      for (const auto& e : stream.poll()) all.push_back(e);
    }
  }
  for (const auto& e : stream.finish()) all.push_back(e);

  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].t, all[i - 1].t - 1e-9);  // ordered, no duplicates
  }
}

TEST(Streaming, RejectsInterference) {
  const auto r = make(
      synth::Scenario::interference(synth::ActivityKind::Spoofer, 60.0,
                                    synth::Posture::Standing),
      504);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  stream.push(r.trace);
  stream.finish();
  EXPECT_LE(stream.steps(), 2u);
}

TEST(Streaming, DistanceAccumulates) {
  const auto r = make(synth::Scenario::pure_walking(60.0), 505);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  stream.push(r.trace);
  stream.poll();
  stream.finish();
  const double truth = r.truth.total_distance();
  EXPECT_NEAR(stream.distance(), truth, 0.2 * truth);
}

TEST(Streaming, StatelessBetweenQuietPeriods) {
  // Walk, long idle, walk: the second walk is still counted.
  synth::Scenario scenario;
  scenario.walk(20.0)
      .activity(synth::ActivityKind::Idle, 30.0)
      .walk(20.0);
  const auto r = make(scenario, 506);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  stream.push(r.trace);
  stream.poll();
  stream.finish();
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(stream.steps()), truth, 0.15 * truth + 2.0);
}

TEST(Streaming, InvalidConfigThrows) {
  core::StreamingConfig cfg;
  cfg.window_s = 5.0;  // <= 2 * guard
  EXPECT_THROW(core::StreamingTracker(100.0, cfg), InvalidArgument);
  EXPECT_THROW(core::StreamingTracker(0.0, {}), InvalidArgument);
}

TEST(Streaming, FaultsAcrossChunkSeamsDegradeGracefully) {
  // A dropout run straddling a hop boundary (hop_s = 2 s, so the 10 s mark
  // is a seam) plus a saturated stretch later on: the tracker must keep
  // emitting monotone, never-retracted events, flag the affected ones, and
  // agree with the batch pipeline on the overall count.
  const auto r = make(synth::Scenario::pure_walking(60.0), 508);
  imu::Trace faulty = r.trace;
  const double fs = faulty.fs();
  auto& samples = faulty.samples();
  const auto at = [&](double t) {
    return std::min(samples.size() - 1,
                    static_cast<std::size_t>(t * fs));
  };
  // Sample-and-hold dropout from 9.9 s to 10.4 s (spans the 10 s seam).
  for (std::size_t i = at(9.9); i < at(10.4); ++i) {
    samples[i].accel = samples[at(9.9) - 1].accel;
    samples[i].gyro = samples[at(9.9) - 1].gyro;
  }
  // Saturated plateau: one accel component pinned at a 2.5 g rail for 1 s.
  for (std::size_t i = at(30.0); i < at(31.0); ++i) {
    samples[i].accel.z = 25.0;
  }

  core::PTrack batch(config_for_user().pipeline);
  const auto batch_result = batch.process(faulty);
  EXPECT_TRUE(batch_result.quality.degraded());
  const auto flagged = [](const std::vector<core::StepEvent>& events) {
    return std::count_if(events.begin(), events.end(),
                         [](const core::StepEvent& e) {
                           return e.quality < 1.0;
                         });
  };
  EXPECT_GE(flagged(batch_result.events), 1);

  core::StreamingTracker stream(fs, config_for_user());
  std::vector<core::StepEvent> all;
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    stream.push(faulty[i]);
    if (i % 300 == 0) {
      for (const auto& e : stream.poll()) all.push_back(e);
    }
  }
  for (const auto& e : stream.finish()) all.push_back(e);

  // No retraction or duplication: strictly increasing timestamps.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].t, all[i - 1].t - 1e-9);
  }
  // Count agrees with batch on the same faulty trace.
  const double batch_steps = static_cast<double>(batch_result.steps);
  EXPECT_NEAR(static_cast<double>(all.size()), batch_steps,
              0.1 * batch_steps + 2.0);
  // The streaming events around the faults carry the degradation too, and
  // the tracker's degraded counter is consistent with what it emitted.
  EXPECT_GE(flagged(all), 1);
  const auto degraded_emitted = static_cast<std::size_t>(
      std::count_if(all.begin(), all.end(),
                    [](const core::StepEvent& e) { return e.degraded; }));
  EXPECT_EQ(stream.degraded_steps(), degraded_emitted);
  for (const auto& e : all) {
    EXPECT_GE(e.quality, 0.0);
    EXPECT_LE(e.quality, 1.0);
  }
}

TEST(Streaming, FinishThenContinue) {
  const auto r = make(synth::Scenario::pure_walking(40.0), 507);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  const std::size_t half = r.trace.size() / 2;
  stream.push(r.trace.slice(0, half));
  stream.finish();
  const std::size_t steps_at_half = stream.steps();
  stream.push(r.trace.slice(half, r.trace.size()));
  stream.finish();
  EXPECT_GT(stream.steps(), steps_at_half + 20);
}

TEST(Streaming, StatsSnapshotTracksLifetime) {
  const auto r = make(synth::Scenario::pure_walking(40.0), 508);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());

  const auto before = stream.stats();
  EXPECT_EQ(before.samples_pushed, 0u);
  EXPECT_EQ(before.windows_processed, 0u);
  EXPECT_EQ(before.events_emitted, 0u);
  EXPECT_DOUBLE_EQ(before.degraded_fraction(), 0.0);

  stream.push(r.trace);
  std::size_t polled = stream.poll().size();
  polled += stream.finish().size();

  const auto after = stream.stats();
  EXPECT_EQ(after.samples_pushed, r.trace.size());
  EXPECT_GT(after.windows_processed, 0u);
  EXPECT_EQ(after.events_emitted, polled);
  EXPECT_EQ(after.events_emitted, stream.steps());
  EXPECT_EQ(after.degraded_events, stream.degraded_steps());
  EXPECT_LE(after.degraded_events, after.events_emitted);
  EXPECT_DOUBLE_EQ(after.distance_m, stream.distance());
  EXPECT_GE(after.degraded_fraction(), 0.0);
  EXPECT_LE(after.degraded_fraction(), 1.0);
}
