// Tests for the streaming (online) tracker: bounded memory, monotone
// emission, and batch consistency.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/streaming.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult make(const synth::Scenario& scenario, std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(scenario, user, synth::SynthOptions{}, rng);
}

core::StreamingConfig config_for_user() {
  synth::UserProfile user;
  core::StreamingConfig cfg;
  cfg.pipeline.stride.profile = {user.arm_length, user.leg_length, 2.0};
  return cfg;
}

}  // namespace

TEST(Streaming, MatchesBatchStepCountOnWalking) {
  const auto r = make(synth::Scenario::pure_walking(60.0), 501);

  core::PTrack batch(config_for_user().pipeline);
  const auto batch_result = batch.process(r.trace);

  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  stream.push(r.trace);
  auto events = stream.poll();
  const auto tail = stream.finish();
  events.insert(events.end(), tail.begin(), tail.end());

  const double batch_steps = static_cast<double>(batch_result.steps);
  EXPECT_NEAR(static_cast<double>(events.size()), batch_steps,
              0.08 * batch_steps + 2.0);
}

TEST(Streaming, EventsEmittedIncrementally) {
  const auto r = make(synth::Scenario::pure_walking(30.0), 502);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());

  std::size_t polls_with_events = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    stream.push(r.trace[i]);
    if (i % 500 == 499) {  // poll every 5 s
      const auto events = stream.poll();
      polls_with_events += !events.empty();
      total += events.size();
    }
  }
  total += stream.finish().size();
  EXPECT_GE(polls_with_events, 3u);  // events arrive while walking continues
  EXPECT_GT(total, 45u);  // ~55 true steps in 30 s
}

TEST(Streaming, EventsAreChronologicalAndUnique) {
  const auto r = make(synth::Scenario::mixed_gait(60.0), 503);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());

  std::vector<core::StepEvent> all;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    stream.push(r.trace[i]);
    if (i % 200 == 0) {
      for (const auto& e : stream.poll()) all.push_back(e);
    }
  }
  for (const auto& e : stream.finish()) all.push_back(e);

  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].t, all[i - 1].t - 1e-9);  // ordered, no duplicates
  }
}

TEST(Streaming, RejectsInterference) {
  const auto r = make(
      synth::Scenario::interference(synth::ActivityKind::Spoofer, 60.0,
                                    synth::Posture::Standing),
      504);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  stream.push(r.trace);
  stream.finish();
  EXPECT_LE(stream.steps(), 2u);
}

TEST(Streaming, DistanceAccumulates) {
  const auto r = make(synth::Scenario::pure_walking(60.0), 505);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  stream.push(r.trace);
  stream.poll();
  stream.finish();
  const double truth = r.truth.total_distance();
  EXPECT_NEAR(stream.distance(), truth, 0.2 * truth);
}

TEST(Streaming, StatelessBetweenQuietPeriods) {
  // Walk, long idle, walk: the second walk is still counted.
  synth::Scenario scenario;
  scenario.walk(20.0)
      .activity(synth::ActivityKind::Idle, 30.0)
      .walk(20.0);
  const auto r = make(scenario, 506);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  stream.push(r.trace);
  stream.poll();
  stream.finish();
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(stream.steps()), truth, 0.15 * truth + 2.0);
}

TEST(Streaming, InvalidConfigThrows) {
  core::StreamingConfig cfg;
  cfg.window_s = 5.0;  // <= 2 * guard
  EXPECT_THROW(core::StreamingTracker(100.0, cfg), InvalidArgument);
  EXPECT_THROW(core::StreamingTracker(0.0, {}), InvalidArgument);
}

TEST(Streaming, FinishThenContinue) {
  const auto r = make(synth::Scenario::pure_walking(40.0), 507);
  core::StreamingTracker stream(r.trace.fs(), config_for_user());
  const std::size_t half = r.trace.size() / 2;
  stream.push(r.trace.slice(0, half));
  stream.finish();
  const std::size_t steps_at_half = stream.steps();
  stream.push(r.trace.slice(half, r.trace.size()));
  stream.finish();
  EXPECT_GT(stream.steps(), steps_at_half + 20);
}
