// Unit tests for integration — especially the mean-removal double
// integration PTrack's displacement measurements rest on.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "dsp/detrend.hpp"
#include "dsp/integrate.hpp"
#include "dsp/resample.hpp"

using namespace ptrack;

TEST(Cumtrapz, ConstantAccelGivesLinearVelocity) {
  const std::vector<double> a(101, 2.0);
  const auto v = dsp::cumtrapz(a, 0.01);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_NEAR(v.back(), 2.0 * 1.0, 1e-9);  // 2 m/s^2 over 1 s
}

TEST(Cumtrapz, SizePreserved) {
  const std::vector<double> a{1, 2, 3};
  EXPECT_EQ(dsp::cumtrapz(a, 0.1).size(), 3u);
}

TEST(IntegrateTwice, QuadraticPosition) {
  const std::vector<double> a(201, 1.0);  // 1 m/s^2 for 2 s
  const auto k = dsp::integrate_twice(a, 0.01);
  EXPECT_NEAR(k.position.back(), 0.5 * 2.0 * 2.0, 0.01);  // x = a t^2 / 2
}

TEST(MeanRemoval, RecoversDisplacementUnderBias) {
  // True motion: half sine of velocity => zero velocity at both ends,
  // net displacement = integral of velocity. Add a constant accel bias.
  const double fs = 100.0;
  const double dt = 1.0 / fs;
  const double T = 0.5;
  const auto n = static_cast<std::size_t>(T * fs);
  std::vector<double> accel(n);
  const double v_peak = 1.2;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    // v(t) = v_peak * sin(pi t / T) -> a = v_peak * pi/T * cos(pi t / T)
    accel[i] = v_peak * kPi / T * std::cos(kPi * t / T);
  }
  const double true_disp = v_peak * 2.0 * T / kPi;  // integral of v

  // Without bias both approaches agree.
  EXPECT_NEAR(dsp::net_displacement(accel, dt), true_disp, 0.025);

  // A 0.2 m/s^2 bias ruins the naive integral but not mean removal.
  std::vector<double> biased = accel;
  for (double& a : biased) a += 0.2;
  const double naive = dsp::integrate_twice(biased, dt).position.back();
  const double corrected = dsp::net_displacement(biased, dt);
  EXPECT_NEAR(corrected, true_disp, 0.025);
  EXPECT_GT(std::abs(naive - true_disp), std::abs(corrected - true_disp));
}

TEST(MeanRemoval, PeakToPeakOfBounce) {
  // Vertical bounce z = (b/2)(1 - cos(2 pi t / T)): p2p displacement = b.
  const double fs = 100.0;
  const double T = 0.5;
  const double b = 0.07;
  const auto n = static_cast<std::size_t>(T * fs) + 1;
  std::vector<double> accel(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double w = kTwoPi / T;
    accel[i] = 0.5 * b * w * w * std::cos(w * t);
  }
  EXPECT_NEAR(dsp::peak_to_peak_displacement(accel, 1.0 / fs), b, 0.012);
}

TEST(MeanRemoval, TinySegmentsReturnZero) {
  const std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(dsp::net_displacement(one, 0.01), 0.0);
  EXPECT_DOUBLE_EQ(dsp::peak_to_peak_displacement(one, 0.01), 0.0);
}

TEST(ZeroVelocitySegments, SplitsAtCrossings) {
  // Velocity: two full sine periods -> interior crossings split it.
  std::vector<double> vel;
  for (int i = 0; i < 200; ++i) {
    vel.push_back(std::sin(kTwoPi * static_cast<double>(i) / 100.0));
  }
  const auto segs = dsp::zero_velocity_segments(vel, 4);
  ASSERT_GE(segs.size(), 3u);
  // Segments tile the range.
  EXPECT_EQ(segs.front().first, 0u);
  EXPECT_EQ(segs.back().second, vel.size());
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].first, segs[i - 1].second);
  }
}

TEST(ZeroVelocitySegments, EmptyInput) {
  EXPECT_TRUE(dsp::zero_velocity_segments(std::vector<double>{}).empty());
}

TEST(Detrend, RemovesLine) {
  std::vector<double> xs(50);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = 3.0 + 0.5 * static_cast<double>(i);
  }
  for (double v : dsp::detrend_linear(xs)) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Detrend, FitLineCoefficients) {
  std::vector<double> xs(10);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = -2.0 + 1.5 * static_cast<double>(i);
  }
  const dsp::LineFit fit = dsp::fit_line(xs);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-9);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
}

TEST(Resample, DownUpRoundTripPreservesShape) {
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) {
    xs.push_back(std::sin(kTwoPi * static_cast<double>(i) / 80.0));
  }
  const auto down = dsp::resample_linear(xs, 400.0, 100.0);
  const auto up = dsp::resample_linear(down, 100.0, 400.0);
  for (std::size_t i = 10; i + 10 < up.size() && i < xs.size(); ++i) {
    EXPECT_NEAR(up[i], xs[i], 0.02);
  }
}

TEST(Resample, SampleAtClampsOutside) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(dsp::sample_at(xs, 10.0, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(dsp::sample_at(xs, 10.0, 99.0), 3.0);
  EXPECT_NEAR(dsp::sample_at(xs, 10.0, 0.05), 1.5, 1e-12);
}
