// Work-stealing scheduler tests (DESIGN.md §18): every submitted task runs
// exactly once across producers, workers and lanes; the latency lane
// strictly preempts queued throughput work; steal-half redistributes a
// pinned backlog; parallel_for keeps the fork-join contract (positional
// determinism, first-exception propagation, no reentrancy from workers);
// submission is allocation-free at steady state; and the HopJob actor
// produces bit-identical events to a directly-driven StreamingTracker.
//
// The stress cases are the TSan targets: N producers x M workers x both
// lanes with randomized affinity (steal pressure), concurrent parallel_for
// callers, and a producer hammering a HopJob while the batch lane is busy.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/alloc_hooks.hpp"
#include "common/error.hpp"
#include "core/hop_job.hpp"
#include "core/ptrack.hpp"
#include "core/streaming.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/hop_executor.hpp"
#include "runtime/scheduler.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;
using runtime::Lane;
using runtime::Scheduler;
using runtime::SchedulerOptions;
using runtime::Task;

namespace {

/// Spin-waits (yielding) until `pred` holds or ~10 s pass.
template <typename Pred>
bool wait_until(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

SchedulerOptions opts(std::size_t workers) {
  SchedulerOptions o;
  o.workers = workers;
  return o;
}

imu::Trace make_walk_trace(std::uint64_t seed, double duration_s) {
  Rng rng(seed);
  synth::UserProfile user;
  const auto scenario = synth::Scenario::pure_walking(duration_s);
  return synth::synthesize(scenario, user, synth::SynthOptions{}, rng).trace;
}

void expect_events_identical(const std::vector<core::StepEvent>& a,
                             const std::vector<core::StepEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not merely close: the actor wraps the same tracker.
    EXPECT_EQ(a[i].t, b[i].t) << "event " << i;
    EXPECT_EQ(a[i].stride, b[i].stride) << "event " << i;
    EXPECT_EQ(a[i].type, b[i].type) << "event " << i;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Core scheduling semantics

TEST(Scheduler, RunsEverySubmittedTaskExactlyOnceAcrossProducersAndLanes) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 500;
  constexpr std::size_t kTotal = kProducers * kPerProducer;

  std::vector<std::atomic<int>> hits(kTotal);
  {
    Scheduler sched(opts(3));
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::mt19937_64 rng(0xabc + p);
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          Task t;
          t.fn = [](void* ctx, std::size_t, std::uint64_t arg) {
            static_cast<std::atomic<int>*>(ctx)[arg].fetch_add(1);
          };
          t.ctx = hits.data();
          t.arg = p * kPerProducer + i;
          const Lane lane = (i % 2 == 0) ? Lane::kLatency : Lane::kThroughput;
          // Randomized placement: pinned rings and round-robin both in play.
          const std::uint64_t affinity =
              (rng() % 3 == 0) ? runtime::kNoAffinity : rng() % 8;
          sched.submit(lane, t, affinity);
        }
      });
    }
    for (auto& th : producers) th.join();
    const auto s = sched.stats();
    EXPECT_EQ(s.submitted_latency + s.submitted_throughput, kTotal);
    // Scheduler destruction drains every queued task before joining.
  }
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(Scheduler, LatencyLaneDrainsBeforeQueuedThroughputWork) {
  // One worker, all tasks pinned to its ring: execution order is exactly
  // the worker loop's drain order, so the lane priority is observable
  // deterministically.
  Scheduler sched(opts(1));

  std::atomic<bool> gate_open{false};
  std::atomic<bool> gate_running{false};
  struct GateCtx {
    std::atomic<bool>* open;
    std::atomic<bool>* running;
  } gate_ctx{&gate_open, &gate_running};
  Task gate;
  gate.fn = [](void* ctx, std::size_t, std::uint64_t) {
    auto* g = static_cast<GateCtx*>(ctx);
    g->running->store(true);
    while (!g->open->load()) std::this_thread::yield();
  };
  gate.ctx = &gate_ctx;
  sched.submit(Lane::kLatency, gate, /*affinity=*/0);
  ASSERT_TRUE(wait_until([&] { return gate_running.load(); }));

  // With the worker held, queue throughput FIRST, latency SECOND — arrival
  // order must lose to lane priority.
  struct OrderCtx {
    std::mutex mu;
    std::vector<std::uint64_t> order;
  } order_ctx;
  Task record;
  record.fn = [](void* ctx, std::size_t, std::uint64_t arg) {
    auto* o = static_cast<OrderCtx*>(ctx);
    std::lock_guard<std::mutex> lk(o->mu);
    o->order.push_back(arg);
  };
  record.ctx = &order_ctx;
  constexpr std::uint64_t kEach = 5;
  for (std::uint64_t i = 0; i < kEach; ++i) {
    record.arg = 100 + i;  // throughput ids
    sched.submit(Lane::kThroughput, record, /*affinity=*/0);
  }
  for (std::uint64_t i = 0; i < kEach; ++i) {
    record.arg = i;  // latency ids
    sched.submit(Lane::kLatency, record, /*affinity=*/0);
  }
  gate_open.store(true);
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard<std::mutex> lk(order_ctx.mu);
    return order_ctx.order.size() == 2 * kEach;
  }));

  std::lock_guard<std::mutex> lk(order_ctx.mu);
  for (std::size_t i = 0; i < kEach; ++i) {
    EXPECT_LT(order_ctx.order[i], 100u)
        << "latency task expected at position " << i;
    EXPECT_GE(order_ctx.order[kEach + i], 100u)
        << "throughput task expected at position " << (kEach + i);
  }
  // FIFO within a lane: oldest queued hop first (bounded unfairness).
  for (std::size_t i = 0; i + 1 < kEach; ++i) {
    EXPECT_LT(order_ctx.order[i], order_ctx.order[i + 1]);
  }
}

TEST(Scheduler, StealHalfRedistributesAPinnedBacklog) {
  Scheduler sched(opts(4));
  constexpr std::size_t kTasks = 64;
  std::atomic<std::size_t> done{0};
  struct Ctx {
    std::atomic<std::size_t>* done;
  } ctx{&done};
  for (std::size_t i = 0; i < kTasks; ++i) {
    Task t;
    t.fn = [](void* c, std::size_t, std::uint64_t) {
      // Sleeping releases the core (this box may be single-CPU), so the
      // other woken workers get scheduled and must steal to help.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      static_cast<Ctx*>(c)->done->fetch_add(1);
    };
    t.ctx = &ctx;
    sched.submit(Lane::kThroughput, t, /*affinity=*/0);  // all on one ring
  }
  ASSERT_TRUE(wait_until([&] { return done.load() == kTasks; }));
  const auto s = sched.stats();
  EXPECT_GT(s.steals, 0u) << "a 64-task backlog pinned to one of four "
                             "workers must provoke steal-half";
  EXPECT_EQ(s.executed_throughput, kTasks);
}

TEST(Scheduler, ParksWhenIdleAndWakesOnSubmit) {
  Scheduler sched(opts(2));
  // Outlast the spin phase so the workers actually park.
  ASSERT_TRUE(wait_until([&] { return sched.stats().parks >= 2; }));

  std::atomic<bool> ran{false};
  Task t;
  t.fn = [](void* c, std::size_t, std::uint64_t) {
    static_cast<std::atomic<bool>*>(c)->store(true);
  };
  t.ctx = &ran;
  sched.submit(Lane::kLatency, t);
  ASSERT_TRUE(wait_until([&] { return ran.load(); }));
  EXPECT_GT(sched.stats().wakeups, 0u);
}

TEST(Scheduler, ZeroWorkersRunsEverythingInline) {
  Scheduler sched(opts(0));
  EXPECT_EQ(sched.workers(), 0u);
  const auto main_id = std::this_thread::get_id();

  std::atomic<int> runs{0};
  struct Ctx {
    std::atomic<int>* runs;
    std::thread::id main_id;
  } ctx{&runs, main_id};
  Task t;
  t.fn = [](void* c, std::size_t executor, std::uint64_t) {
    auto* x = static_cast<Ctx*>(c);
    EXPECT_EQ(std::this_thread::get_id(), x->main_id);
    EXPECT_EQ(executor, 0u);
    x->runs->fetch_add(1);
  };
  t.ctx = &ctx;
  sched.submit(Lane::kLatency, t);
  EXPECT_EQ(runs.load(), 1);  // ran before submit returned

  // parallel_for degenerates to a strictly-inline, in-order loop.
  std::vector<std::size_t> order;
  sched.parallel_for(Lane::kThroughput, 5, [&](std::size_t i, std::size_t e) {
    EXPECT_EQ(e, sched.caller_executor());
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sched.stats().inline_runs, 1u);
}

TEST(Scheduler, ParallelForPropagatesFirstExceptionAndStaysUsable) {
  Scheduler sched(opts(2));
  EXPECT_THROW(sched.parallel_for(Lane::kThroughput, 50,
                                  [&](std::size_t task, std::size_t) {
                                    if (task == 23) {
                                      throw std::runtime_error("task 23");
                                    }
                                  }),
               std::runtime_error);
  std::atomic<int> ok{0};
  sched.parallel_for(Lane::kThroughput, 8,
                     [&](std::size_t, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(Scheduler, ParallelForFromOwnWorkerIsRejected) {
  Scheduler sched(opts(1));
  std::atomic<bool> ran{false};
  struct Ctx {
    Scheduler* sched;
    std::atomic<bool>* ran;
  } ctx{&sched, &ran};
  Task t;
  t.fn = [](void* c, std::size_t, std::uint64_t) {
    auto* x = static_cast<Ctx*>(c);
    // The nested call must throw (worker blocking on its own pool would
    // deadlock); the scheduler swallows and counts it.
    x->sched->parallel_for(Lane::kThroughput, 1,
                           [](std::size_t, std::size_t) {});
    x->ran->store(true);
  };
  t.ctx = &ctx;
  sched.submit(Lane::kThroughput, t);
  ASSERT_TRUE(wait_until([&] { return sched.stats().task_exceptions == 1; }));
  EXPECT_FALSE(ran.load());
}

TEST(Scheduler, ConcurrentParallelForCallersShareTheWorkers) {
  Scheduler sched(opts(3));
  constexpr std::size_t kN = 300;
  std::vector<std::atomic<int>> a(kN);
  std::vector<std::atomic<int>> b(kN);
  std::thread other([&] {
    sched.parallel_for(Lane::kThroughput, kN, [&](std::size_t i, std::size_t) {
      b[i].fetch_add(1);
    });
  });
  sched.parallel_for(Lane::kLatency, kN,
                     [&](std::size_t i, std::size_t) { a[i].fetch_add(1); });
  other.join();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i].load(), 1) << "latency job task " << i;
    ASSERT_EQ(b[i].load(), 1) << "throughput job task " << i;
  }
}

TEST(Scheduler, SubmissionIsAllocationFreeAfterWarmup) {
  Scheduler sched(opts(2));
  // Warm-up: registers the obs handles (function-local statics) and sizes
  // nothing else — rings were pre-sized in the constructor.
  std::atomic<int> sink{0};
  Task t;
  t.fn = [](void* c, std::size_t, std::uint64_t) {
    static_cast<std::atomic<int>*>(c)->fetch_add(1);
  };
  t.ctx = &sink;
  for (int i = 0; i < 32; ++i) {
    sched.submit(i % 2 == 0 ? Lane::kLatency : Lane::kThroughput, t,
                 static_cast<std::uint64_t>(i));
  }
  ASSERT_TRUE(wait_until([&] { return sink.load() == 32; }));
  // Make sure the park/wake metric handles registered too: wait for the
  // workers to park, then submit through the targeted-wake path once.
  ASSERT_TRUE(wait_until([&] { return sched.stats().parks >= 1; }));
  for (int i = 0; i < 4; ++i) sched.submit(Lane::kLatency, t);
  ASSERT_TRUE(wait_until([&] { return sink.load() == 36; }));

  const auto before = alloc::thread_stats();
  {
    alloc::NoAllocScope guard("scheduler submit steady state",
                              alloc::NoAllocScope::Mode::kCount);
    for (int i = 0; i < 200; ++i) {
      sched.submit(i % 2 == 0 ? Lane::kLatency : Lane::kThroughput, t,
                   static_cast<std::uint64_t>(i));
    }
  }
  const auto after = alloc::thread_stats();
  if (alloc::hooks_enabled()) {
    EXPECT_EQ(after.allocations, before.allocations)
        << "steady-state submit must not touch the heap";
  }
  ASSERT_TRUE(wait_until([&] { return sink.load() == 236; }));
  EXPECT_EQ(sched.stats().spills, 0u);
}

// ---------------------------------------------------------------------------
// BatchRunner equivalence on top of the scheduler

TEST(SchedulerBatch, PositionalResultsIdenticalAtPoolSizes128) {
  std::vector<imu::Trace> traces;
  traces.reserve(6);
  for (std::uint64_t i = 0; i < 6; ++i) {
    traces.push_back(
        make_walk_trace(0x5eed + i, 20.0 + 2.0 * static_cast<double>(i % 3)));
  }

  // Direct single-threaded reference.
  std::vector<core::TrackResult> expected;
  expected.reserve(traces.size());
  core::PTrack direct;
  for (const auto& tr : traces) expected.push_back(direct.process(tr));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    runtime::BatchRunner runner({}, {.threads = threads});
    const auto results = runner.run(traces);
    ASSERT_EQ(results.size(), traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      ASSERT_TRUE(results[i].has_value())
          << "threads=" << threads << " slot " << i;
      const auto& got = *results[i];
      EXPECT_EQ(got.steps, expected[i].steps);
      ASSERT_EQ(got.events.size(), expected[i].events.size());
      for (std::size_t e = 0; e < got.events.size(); ++e) {
        EXPECT_EQ(got.events[e].t, expected[i].events[e].t);
        EXPECT_EQ(got.events[e].stride, expected[i].events[e].stride);
        EXPECT_EQ(got.events[e].type, expected[i].events[e].type);
      }
    }
  }
}

TEST(SchedulerBatch, BorrowedSchedulerUsesItsThroughputLane) {
  Scheduler sched(opts(2));
  runtime::BatchRunner runner({}, {.scheduler = &sched});
  EXPECT_EQ(runner.threads(), 3u);  // 2 workers + the calling thread

  const auto traces = std::vector<imu::Trace>{make_walk_trace(0xbee, 20.0)};
  const auto results = runner.run(traces);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].has_value());

  core::PTrack direct;
  const auto expected = direct.process(traces[0]);
  EXPECT_EQ((*results[0]).steps, expected.steps);

  const auto s = sched.stats();
  EXPECT_GT(s.submitted_throughput, 0u);
  EXPECT_EQ(s.submitted_latency, 0u);
}

TEST(SchedulerBatch, DispatchOnlyCallerClaimsNoTasks) {
  Scheduler sched(opts(2));

  // Dispatch-only parallel_for: every index runs exactly once, none of
  // them on the calling thread's executor id.
  constexpr std::size_t kN = 64;
  std::array<std::atomic<int>, kN> hits = {};
  std::atomic<bool> caller_ran{false};
  sched.parallel_for(
      Lane::kThroughput, kN,
      [&](std::size_t i, std::size_t executor) {
        if (executor == sched.caller_executor()) caller_ran.store(true);
        hits[i].fetch_add(1);
      },
      /*caller_participates=*/false);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_FALSE(caller_ran.load());

  // Exceptions still propagate to the dispatching caller.
  EXPECT_THROW(sched.parallel_for(
                   Lane::kThroughput, 8,
                   [](std::size_t i, std::size_t) {
                     if (i == 3) throw std::runtime_error("boom");
                   },
                   /*caller_participates=*/false),
               std::runtime_error);

  // BatchRunner passthrough: positional results identical to a direct run.
  runtime::BatchRunner runner(
      {}, {.scheduler = &sched, .caller_participates = false});
  const auto traces = std::vector<imu::Trace>{make_walk_trace(0xd15, 20.0)};
  const auto results = runner.run(traces);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].has_value());
  core::PTrack direct;
  EXPECT_EQ((*results[0]).steps, direct.process(traces[0]).steps);

  // With zero workers the caller is the only executor, so participation
  // is forced rather than deadlocking.
  Scheduler inline_sched(opts(0));
  std::size_t ran = 0;
  inline_sched.parallel_for(
      Lane::kThroughput, 4, [&](std::size_t, std::size_t) { ++ran; },
      /*caller_participates=*/false);
  EXPECT_EQ(ran, 4u);
}

// ---------------------------------------------------------------------------
// HopJob: off-thread streaming hops

namespace {

/// Degenerate executor: runs the hop on the calling thread, immediately.
class InlineExecutor final : public core::HopExecutor {
 public:
  void submit(core::HopJob& job, std::uint64_t) override {
    job.run_scheduled(/*executor=*/0);
  }
};

}  // namespace

TEST(HopJob, InlineExecutorMatchesDirectTracker) {
  const auto trace = make_walk_trace(0xcafe, 30.0);
  core::StreamingConfig cfg;

  InlineExecutor exec;
  core::HopJob job(exec, /*stream_id=*/7, trace.fs(), cfg);
  core::StreamingTracker ref(trace.fs(), cfg);

  std::vector<core::StepEvent> got;
  std::vector<core::StepEvent> want;
  // Chunked pushes with interleaved polls — the streaming call shape.
  const auto& samples = trace.samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    job.push(samples[i]);
    ref.push(samples[i]);
    if (i % 257 == 0) {
      job.poll_into(got);
      ref.poll_into(want);
    }
  }
  job.drain_into(got);
  ref.poll_into(want);
  ref.drain_into(want);

  ASSERT_GT(want.size(), 0u) << "a 30 s walk must emit steps";
  expect_events_identical(got, want);
  EXPECT_EQ(job.stats().samples_pushed, samples.size());
  EXPECT_GT(job.runs_completed(), 0u);
}

TEST(HopJob, OffThreadHopsMatchDirectTrackerBitForBit) {
  const auto trace = make_walk_trace(0xdead, 30.0);
  core::StreamingConfig cfg;

  Scheduler sched(opts(2));
  runtime::SchedulerHopExecutor exec(sched);
  core::StreamingTracker ref(trace.fs(), cfg);
  std::vector<core::StepEvent> got;
  std::vector<core::StepEvent> want;
  {
    core::HopJob job(exec, /*stream_id=*/42, trace.fs(), cfg);
    const auto& samples = trace.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      job.push(samples[i]);
      ref.push(samples[i]);
      if (i % 509 == 0) job.poll_into(got);  // poll while hops are in flight
    }
    job.drain_into(got);
    EXPECT_EQ(job.stats().samples_pushed, samples.size());
  }
  ref.poll_into(want);
  ref.drain_into(want);

  ASSERT_GT(want.size(), 0u);
  expect_events_identical(got, want);
  EXPECT_GT(sched.stats().submitted_latency, 0u);
}

TEST(HopJob, AffinityKeepsHopsOnThePreferredWorker) {
  Scheduler sched(opts(2));
  runtime::SchedulerHopExecutor exec(sched);
  const auto trace = make_walk_trace(0xfeed, 20.0);
  // stream_id 0 -> worker 0 is the preferred executor.
  core::HopJob job(exec, /*stream_id=*/0, trace.fs(), {});

  std::size_t on_preferred = 0;
  constexpr std::size_t kRounds = 20;
  const std::size_t chunk = trace.size() / kRounds;
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = r * chunk; i < (r + 1) * chunk; ++i) {
      job.push(trace.samples()[i]);
    }
    job.wait_idle();
    on_preferred += job.last_executor() == 0 ? 1 : 0;
    // Let the workers park so the next push exercises the targeted wake.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Cache-warmth is a hint, not a guarantee (a spinning sibling may grab a
  // hop first), but with parked workers the targeted wake must dominate.
  EXPECT_GT(on_preferred, kRounds / 2)
      << "affinity hint should route most hops to worker 0";
}

TEST(HopJob, RejectsMismatchedRateAndSurvivesGarbageSamples) {
  InlineExecutor exec;
  core::HopJob job(exec, /*stream_id=*/1, 128.0, {});
  // A fs-mismatched trace throws on the producer side, before anything is
  // enqueued (same contract as StreamingTracker::push(Trace))...
  EXPECT_THROW(job.push(make_walk_trace(0x1, 5.0)), InvalidArgument);
  EXPECT_EQ(job.stats().samples_pushed, 0u);
  // ...while nonphysical samples flow through the quality layer's
  // detect/repair instead of poisoning the actor: hops keep running and
  // the job stays drainable.
  imu::Sample bad;
  bad.accel = {1.0e308, -1.0e308, 1.0e308};
  bad.gyro = {1.0e308, 1.0e308, -1.0e308};
  for (int i = 0; i < 300; ++i) job.push(bad);
  EXPECT_NO_THROW(job.wait_idle());
  EXPECT_EQ(job.stats().samples_pushed, 300u);
  EXPECT_GT(job.runs_completed(), 0u);
  std::vector<core::StepEvent> out;
  EXPECT_NO_THROW(job.drain_into(out));
  EXPECT_EQ(out.size(), job.stats().events_emitted);
}

TEST(HopJob, StressProducerVsBatchOnSharedScheduler) {
  // The mixed-load shape under TSan: one producer streams hops on the
  // latency lane while batch sweeps saturate the throughput lane of the
  // same scheduler.
  Scheduler sched(opts(3));
  runtime::SchedulerHopExecutor exec(sched);
  const auto trace = make_walk_trace(0xace, 25.0);
  core::StreamingTracker ref(trace.fs(), {});
  std::vector<core::StepEvent> got;

  std::atomic<bool> stop_batch{false};
  std::thread batcher([&] {
    while (!stop_batch.load()) {
      sched.parallel_for(Lane::kThroughput, 64, [](std::size_t, std::size_t) {
        volatile double x = 0.0;
        for (int i = 0; i < 2000; ++i) x = x + 1.0;
      });
    }
  });
  {
    core::HopJob job(exec, /*stream_id=*/9, trace.fs(), {});
    for (const auto& s : trace.samples()) {
      job.push(s);
      ref.push(s);
    }
    job.drain_into(got);
  }
  stop_batch.store(true);
  batcher.join();

  std::vector<core::StepEvent> want;
  ref.poll_into(want);
  ref.drain_into(want);
  ASSERT_GT(want.size(), 0u);
  expect_events_identical(got, want);
}
