// Unit tests for the biomechanical gait generator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "synth/gait_generator.hpp"

using namespace ptrack;

namespace {

synth::UserProfile clean_user() {
  synth::UserProfile u;
  u.step_time_jitter = 0.0;
  u.stride_jitter = 0.0;
  u.arm_phase_jitter = 0.0;
  u.swing_cushion = 0.0;
  return u;
}

synth::GaitPath generate(synth::ActivityKind kind, double seconds,
                         const synth::UserProfile& user, uint64_t seed = 1,
                         double speed = 0.0) {
  synth::GaitParams p;
  p.kind = kind;
  p.duration = seconds;
  p.fs = 400.0;
  p.speed = speed;
  Rng rng(seed);
  return synth::generate_gait(p, user, rng);
}

}  // namespace

TEST(GaitGenerator, StepCountMatchesCadence) {
  const synth::UserProfile u = clean_user();
  const auto path = generate(synth::ActivityKind::Walking, 30.0, u);
  // cadence * duration steps expected (+-1 boundary step).
  const double expected = u.cadence * 30.0;
  EXPECT_NEAR(static_cast<double>(path.steps.size()), expected, 2.0);
}

TEST(GaitGenerator, StridesMatchProfile) {
  const synth::UserProfile u = clean_user();
  const auto path = generate(synth::ActivityKind::Walking, 20.0, u);
  for (const synth::StepTruth& s : path.steps) {
    EXPECT_NEAR(s.stride, u.mean_stride(), 1e-9);
    EXPECT_NEAR(s.bounce, u.bounce_for_stride(u.mean_stride()), 1e-9);
  }
}

TEST(GaitGenerator, TotalForwardTravelEqualsStrideSum) {
  const synth::UserProfile u = clean_user();
  const auto path = generate(synth::ActivityKind::Walking, 30.0, u);
  const double traveled = path.body.back().x - path.body.front().x;
  double sum = 0.0;
  for (const synth::StepTruth& s : path.steps) sum += s.stride;
  // The last partial step adds at most one stride.
  EXPECT_NEAR(traveled, sum, u.mean_stride() + 1e-6);
  EXPECT_GE(traveled, sum - 1e-9);
}

TEST(GaitGenerator, BodyBounceAmplitudeIsTruthBounce) {
  const synth::UserProfile u = clean_user();
  const auto path = generate(synth::ActivityKind::Walking, 10.0, u);
  double zmin = 1e9;
  double zmax = -1e9;
  for (const Vec3& b : path.body) {
    zmin = std::min(zmin, b.z);
    zmax = std::max(zmax, b.z);
  }
  EXPECT_NEAR(zmax - zmin, u.bounce_for_stride(u.mean_stride()), 1e-6);
}

TEST(GaitGenerator, SteppingWristRigidWithBody) {
  const synth::UserProfile u = clean_user();
  const auto path = generate(synth::ActivityKind::Stepping, 10.0, u);
  const Vec3 offset0 = path.wrist[0] - path.body[0];
  for (std::size_t i = 0; i < path.wrist.size(); ++i) {
    const Vec3 offset = path.wrist[i] - path.body[i];
    EXPECT_NEAR((offset - offset0).norm(), 0.0, 1e-9);
  }
}

TEST(GaitGenerator, WalkingWristSwingsRelativeToBody) {
  const synth::UserProfile u = clean_user();
  const auto path = generate(synth::ActivityKind::Walking, 10.0, u);
  double min_x = 1e9;
  double max_x = -1e9;
  for (std::size_t i = 0; i < path.wrist.size(); ++i) {
    const double rel = path.wrist[i].x - path.body[i].x;
    min_x = std::min(min_x, rel);
    max_x = std::max(max_x, rel);
  }
  const double expected_sweep = 2.0 * u.arm_length * std::sin(u.swing_amplitude);
  EXPECT_NEAR(max_x - min_x, expected_sweep, 0.02);
}

TEST(GaitGenerator, SwingOnlyBodyStatic) {
  const synth::UserProfile u = clean_user();
  const auto path = generate(synth::ActivityKind::SwingOnly, 5.0, u);
  EXPECT_TRUE(path.steps.empty());
  for (const Vec3& b : path.body) {
    EXPECT_NEAR((b - path.body.front()).norm(), 0.0, 1e-9);
  }
}

TEST(GaitGenerator, HeadingRotatesTravel) {
  const synth::UserProfile u = clean_user();
  synth::GaitParams p;
  p.kind = synth::ActivityKind::Walking;
  p.duration = 10.0;
  p.heading = kPi / 2;  // walk along +y
  p.fs = 400.0;
  Rng rng(2);
  const auto path = synth::generate_gait(p, u, rng);
  const Vec3 travel = path.body.back() - path.body.front();
  EXPECT_GT(travel.y, 5.0);
  EXPECT_NEAR(travel.x, 0.0, 0.1);
}

TEST(GaitGenerator, SpeedOverrideScalesStride) {
  const synth::UserProfile u = clean_user();
  const auto slow =
      generate(synth::ActivityKind::Walking, 20.0, u, 1, u.speed * 0.8);
  ASSERT_FALSE(slow.steps.empty());
  EXPECT_NEAR(slow.steps.front().stride, u.mean_stride() * 0.8, 1e-9);
}

TEST(GaitGenerator, TiltStreamPresent) {
  const synth::UserProfile u = clean_user();
  const auto walking = generate(synth::ActivityKind::Walking, 5.0, u);
  EXPECT_EQ(walking.tilt.size(), walking.wrist.size());
  double max_tilt = 0.0;
  for (double t : walking.tilt) max_tilt = std::max(max_tilt, std::abs(t));
  EXPECT_NEAR(max_tilt, u.swing_amplitude, 0.05);

  const auto stepping = generate(synth::ActivityKind::Stepping, 5.0, u);
  for (double t : stepping.tilt) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(GaitGenerator, QuarterPhaseBetweenBodyChannels) {
  // The body's vertical and anterior accelerations must be a quarter step
  // period apart (Kim et al.) — verified on the stepping wrist, which
  // rides the body.
  const synth::UserProfile u = clean_user();
  const auto path = generate(synth::ActivityKind::Stepping, 12.0, u);
  const double fs = 400.0;
  // Differentiate positions twice.
  std::vector<double> av(path.wrist.size(), 0.0);
  std::vector<double> aa(path.wrist.size(), 0.0);
  for (std::size_t i = 1; i + 1 < path.wrist.size(); ++i) {
    av[i] = (path.wrist[i + 1].z - 2 * path.wrist[i].z + path.wrist[i - 1].z) *
            fs * fs;
    aa[i] = (path.wrist[i + 1].x - 2 * path.wrist[i].x + path.wrist[i - 1].x) *
            fs * fs;
  }
  // Quarter of a step period, in samples.
  const double step_period = 1.0 / u.cadence;
  const double quarter = step_period / 4.0 * fs;
  // Find the lag with the best cross-correlation near +-quarter.
  double best = -2.0;
  int best_lag = 0;
  const int search = static_cast<int>(step_period * fs / 2.0);
  for (int lag = -search; lag <= search; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 2000; i + 2000 < av.size(); ++i) {
      const int j = static_cast<int>(i) + lag;
      acc += av[i] * aa[static_cast<std::size_t>(j)];
    }
    if (acc > best) {
      best = acc;
      best_lag = lag;
    }
  }
  EXPECT_NEAR(std::abs(static_cast<double>(best_lag)), quarter, quarter * 0.2);
}

TEST(GaitGenerator, RejectsInterferenceKinds) {
  synth::GaitParams p;
  p.kind = synth::ActivityKind::Eating;
  Rng rng(1);
  EXPECT_THROW(synth::generate_gait(p, clean_user(), rng), InvalidArgument);
}
