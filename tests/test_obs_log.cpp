// Structured-logging tests: record formatting (JSON-lines, escaping,
// value truncation), level gating and --log-level specs, deterministic
// token-bucket suppression, ring overflow accounting (drop, never block)
// and drain-to-sink plumbing.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/log.hpp"

using namespace ptrack;
using obs::log::Level;
using obs::log::kv;

namespace {

/// Empties every ring so a test observes only its own records.
void clear_rings() {
  std::ostringstream sink;
  obs::log::drain(sink);
}

}  // namespace

TEST(ObsLog, LevelNamesRoundTrip) {
  for (const Level lv : {Level::kTrace, Level::kDebug, Level::kInfo,
                         Level::kWarn, Level::kError, Level::kOff}) {
    Level back = Level::kInfo;
    ASSERT_TRUE(obs::log::parse_level(obs::log::to_string(lv), back));
    EXPECT_EQ(back, lv);
  }
  Level out = Level::kInfo;
  EXPECT_FALSE(obs::log::parse_level("verbose", out));
  EXPECT_FALSE(obs::log::parse_level("", out));
}

TEST(ObsLog, SubsystemNameMustBeSnakeCase) {
  EXPECT_THROW(static_cast<void>(obs::log::subsystem("Net")), Error);
  EXPECT_THROW(static_cast<void>(obs::log::subsystem("")), Error);
  EXPECT_THROW(static_cast<void>(obs::log::subsystem("a.b")), Error);
  EXPECT_NO_THROW(static_cast<void>(obs::log::subsystem("testlog_ok_1")));
}

TEST(ObsLog, FormatRecordIsOneJsonLine) {
  obs::log::Record rec;
  rec.wall_unix_s = 1.5;
  rec.subsystem = "testlog";
  rec.event = "hello";
  rec.level = Level::kInfo;
  rec.tid = 7;
  rec.kvs[0] = kv("n", 42);
  rec.kvs[1] = kv("ok", true);
  rec.kvs[2] = kv("who", "a\"b");
  rec.n_kv = 3;
  std::ostringstream os;
  obs::log::format_record(os, rec);
  EXPECT_EQ(os.str(),
            "{\"ts\":1.500000,\"level\":\"info\",\"subsys\":\"testlog\","
            "\"event\":\"hello\",\"tid\":7,\"n\":42,\"ok\":true,"
            "\"who\":\"a\\\"b\"}\n");
  // And it parses back as strict JSON.
  const json::Value v = json::parse(os.str());
  EXPECT_EQ(v.at("event").as_string(), "hello");
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), 42.0);
}

TEST(ObsLog, StringValuesTruncateNeverOverflow) {
  const obs::log::KeyValue p =
      kv("s", "0123456789012345678901234567");  // 28 chars
  std::ostringstream os;
  obs::log::Record rec;
  rec.subsystem = "testlog";
  rec.event = "trunc";
  rec.kvs[0] = p;
  rec.n_kv = 1;
  obs::log::format_record(os, rec);
  EXPECT_NE(os.str().find("\"s\":\"01234567890123456789012\""),
            std::string::npos);  // 23 chars kept + NUL
}

TEST(ObsLog, EmitKeepsFirstSixPairs) {
  clear_rings();
  obs::log::Subsystem& sub = obs::log::subsystem("testlog_kvs");
  sub.emit(Level::kInfo, "many_kvs",
           {kv("a", 1), kv("b", 2), kv("c", 3), kv("d", 4), kv("e", 5),
            kv("f", 6), kv("g", 7), kv("h", 8)});
  std::ostringstream os;
  ASSERT_EQ(obs::log::drain(os), 1u);
  const json::Value v = json::parse(os.str());
  EXPECT_TRUE(v.contains("f"));
  EXPECT_FALSE(v.contains("g"));  // pairs beyond kMaxKvs dropped
  EXPECT_FALSE(v.contains("h"));
}

TEST(ObsLog, LevelGatingBlocksBelowThreshold) {
  obs::log::Subsystem& sub = obs::log::subsystem("testlog_gate");
  sub.set_level(Level::kWarn);
  EXPECT_FALSE(sub.should(Level::kTrace));
  EXPECT_FALSE(sub.should(Level::kDebug));
  EXPECT_FALSE(sub.should(Level::kInfo));
  EXPECT_TRUE(sub.should(Level::kWarn));
  EXPECT_TRUE(sub.should(Level::kError));
  EXPECT_FALSE(sub.should(Level::kOff));  // kOff is never emittable
  sub.set_level(Level::kOff);
  EXPECT_FALSE(sub.should(Level::kError));
}

TEST(ObsLog, ApplyLevelSpec) {
  EXPECT_TRUE(obs::log::apply_level_spec("debug"));
  EXPECT_EQ(obs::log::subsystem("testlog_spec_a").level(), Level::kDebug);

  EXPECT_TRUE(obs::log::apply_level_spec("info,testlog_spec_a=warn"));
  EXPECT_EQ(obs::log::subsystem("testlog_spec_a").level(), Level::kWarn);
  EXPECT_EQ(obs::log::subsystem("testlog_spec_b").level(), Level::kInfo);

  EXPECT_FALSE(obs::log::apply_level_spec(""));
  EXPECT_FALSE(obs::log::apply_level_spec("verbose"));
  EXPECT_FALSE(obs::log::apply_level_spec("net="));
  EXPECT_FALSE(obs::log::apply_level_spec("Net=debug"));
  EXPECT_FALSE(obs::log::apply_level_spec("info,,debug"));

  ASSERT_TRUE(obs::log::apply_level_spec("info"));  // restore for later tests
}

TEST(ObsLog, RateLimitSuppressesDeterministically) {
  obs::log::Subsystem& sub = obs::log::subsystem("testlog_rate");
  sub.set_level(Level::kInfo);
  // Zero refill rate: exactly `burst` records pass, then suppression.
  sub.set_rate_limit(0.0, 2.0);
  EXPECT_TRUE(sub.should(Level::kInfo));
  EXPECT_TRUE(sub.should(Level::kInfo));
  EXPECT_FALSE(sub.should(Level::kInfo));
  EXPECT_FALSE(sub.should(Level::kError));  // limiter is per-subsystem
  // Re-arming the bucket restores emission.
  sub.set_rate_limit(0.0, 1.0);
  EXPECT_TRUE(sub.should(Level::kInfo));
  EXPECT_FALSE(sub.should(Level::kInfo));
}

TEST(ObsLog, RingOverflowDropsAndIsAccounted) {
  clear_rings();
  obs::log::Subsystem& sub = obs::log::subsystem("testlog_ring");
  // 140 emits into a 128-slot ring with no drain in between: 12 drop.
  for (int i = 0; i < 140; ++i) {
    sub.emit(Level::kInfo, "flood", {kv("i", i)});
  }
  std::ostringstream os;
  const std::size_t written = obs::log::drain(os);
  // 128 real records plus the synthetic drop notice.
  EXPECT_EQ(written, 129u);
  EXPECT_NE(os.str().find("\"event\":\"log_records_dropped\""),
            std::string::npos);
  EXPECT_NE(os.str().find("\"dropped\":12"), std::string::npos);
  // Every drained line is valid JSON.
  std::istringstream lines(os.str());
  std::string line;
  std::size_t n_lines = 0;
  while (std::getline(lines, line)) {
    EXPECT_NO_THROW(static_cast<void>(json::parse(line))) << line;
    ++n_lines;
  }
  EXPECT_EQ(n_lines, written);
}

TEST(ObsLog, DrainGoesToConfiguredSink) {
  clear_rings();
  std::ostringstream sink;
  obs::log::set_sink(&sink);
  obs::log::subsystem("testlog_sink").emit(Level::kWarn, "to_sink", {});
  const std::size_t written = obs::log::drain();  // no-arg: uses the sink
  obs::log::set_sink(nullptr);
  EXPECT_EQ(written, 1u);
  EXPECT_NE(sink.str().find("\"event\":\"to_sink\""), std::string::npos);
  EXPECT_NE(sink.str().find("\"level\":\"warn\""), std::string::npos);
}

#if PTRACK_OBS_ENABLED
TEST(ObsLog, MacroEmitsAndRespectsLevel) {
  clear_rings();
  obs::log::set_level("testlog_macro", Level::kInfo);
  PTRACK_LOG_INFO("testlog_macro", "macro_event", kv("x", 1));
  PTRACK_LOG_DEBUG("testlog_macro", "quiet_event", kv("x", 2));
  std::ostringstream os;
  obs::log::drain(os);
  EXPECT_NE(os.str().find("\"event\":\"macro_event\""), std::string::npos);
  EXPECT_EQ(os.str().find("\"event\":\"quiet_event\""), std::string::npos);
}
#endif
