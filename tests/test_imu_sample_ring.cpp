// Tests for the SoA sample ring (imu/sample_ring.hpp) and the generic
// absolute-indexed Ring<T> (common/ring.hpp): absolute indexing across
// trims, span contiguity, compaction, and the flag accounting the event
// assembler builds step confidences from.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/ring.hpp"
#include "imu/quality.hpp"
#include "imu/sample_ring.hpp"

using namespace ptrack;

namespace {

imu::Sample sample_at(std::size_t i) {
  imu::Sample s;
  const auto v = static_cast<double>(i);
  s.t = v / 100.0;
  s.accel = {v, v + 0.25, v + 0.5};
  s.gyro = {-v, -v - 0.25, -v - 0.5};
  return s;
}

}  // namespace

TEST(SampleRing, AbsoluteIndexingSurvivesTrimming) {
  imu::SampleRing ring;
  for (std::size_t i = 0; i < 100; ++i) ring.push(sample_at(i), 0);
  EXPECT_EQ(ring.base(), 0u);
  EXPECT_EQ(ring.end(), 100u);
  EXPECT_EQ(ring.size(), 100u);

  ring.trim_to(40);
  EXPECT_EQ(ring.base(), 40u);
  EXPECT_EQ(ring.end(), 100u);  // end() never moves backwards
  EXPECT_EQ(ring.size(), 60u);

  // Absolute addressing is unchanged by the trim.
  const auto az = ring.az(40, 100);
  ASSERT_EQ(az.size(), 60u);
  for (std::size_t i = 0; i < az.size(); ++i) {
    EXPECT_DOUBLE_EQ(az[i], static_cast<double>(40 + i) + 0.5);
  }
  const imu::Sample s = ring.sample(77);
  EXPECT_DOUBLE_EQ(s.accel.x, 77.0);
  EXPECT_DOUBLE_EQ(s.gyro.z, -77.5);
}

TEST(SampleRing, TrimClampsAndNeverUntrims) {
  imu::SampleRing ring;
  for (std::size_t i = 0; i < 10; ++i) ring.push(sample_at(i), 0);
  ring.trim_to(6);
  ring.trim_to(2);  // backwards: no-op (clamped to base)
  EXPECT_EQ(ring.base(), 6u);
  ring.trim_to(1000);  // beyond end: clamped to end (empty ring)
  EXPECT_EQ(ring.base(), 10u);
  EXPECT_TRUE(ring.empty());
  // Pushing after a full trim continues the absolute index space.
  ring.push(sample_at(10), 0);
  EXPECT_EQ(ring.base(), 10u);
  EXPECT_EQ(ring.end(), 11u);
  EXPECT_DOUBLE_EQ(ring.ax(10, 11)[0], 10.0);
}

TEST(SampleRing, CompactionPreservesContentAndBoundsMemory) {
  imu::SampleRing ring;
  // Streaming pattern: push a hop, trim the consumed prefix, repeat. The
  // dead prefix must get compacted away (not accumulate forever).
  std::size_t pushed = 0;
  for (std::size_t hop = 0; hop < 50; ++hop) {
    for (std::size_t i = 0; i < 200; ++i) ring.push(sample_at(pushed++), 0);
    if (ring.end() > 600) ring.trim_to(ring.end() - 600);
  }
  EXPECT_GT(ring.compactions(), 0u);
  EXPECT_EQ(ring.size(), 600u);
  EXPECT_EQ(ring.end(), pushed);
  // Content survives every compaction slide.
  const auto ax = ring.ax(ring.base(), ring.end());
  for (std::size_t i = 0; i < ax.size(); ++i) {
    EXPECT_DOUBLE_EQ(ax[i], static_cast<double>(ring.base() + i));
  }
}

TEST(SampleRing, FlagAccountingMatchesQualityReportArithmetic) {
  imu::SampleRing ring;
  for (std::size_t i = 0; i < 50; ++i) {
    std::uint8_t flags = 0;
    if (i >= 10 && i < 20) flags = imu::kFlagDropout | imu::kFlagRepaired;
    if (i >= 30 && i < 34) flags = imu::kFlagMasked;
    ring.push(sample_at(i), flags);
  }
  EXPECT_EQ(ring.count_flagged(0, 50, 0xFF), 14u);
  EXPECT_EQ(ring.count_flagged(0, 50, imu::kFlagMasked), 4u);
  EXPECT_DOUBLE_EQ(ring.fraction_flagged(0, 50, 0xFF), 14.0 / 50.0);
  EXPECT_DOUBLE_EQ(ring.fraction_flagged(30, 34, imu::kFlagMasked), 1.0);
  // Empty interval yields 0, mirroring QualityReport::fraction_flagged.
  EXPECT_DOUBLE_EQ(ring.fraction_flagged(25, 25, 0xFF), 0.0);
  const auto f = ring.flags(10, 20);
  for (const std::uint8_t b : f) EXPECT_EQ(b, imu::kFlagDropout | imu::kFlagRepaired);
}

TEST(SampleRing, OutOfRangeSpanViolatesContract) {
  imu::SampleRing ring;
  for (std::size_t i = 0; i < 10; ++i) ring.push(sample_at(i), 0);
  ring.trim_to(5);
  EXPECT_THROW((void)ring.ax(8, 7), InvalidArgument);  // inverted
  if constexpr (checks_enabled()) {
    EXPECT_THROW((void)ring.ax(0, 10), InvariantViolation);  // below base
    EXPECT_THROW((void)ring.ax(5, 11), InvariantViolation);  // beyond end
  }
}

TEST(GenericRing, AbsoluteIndexingTrimAndMutation) {
  Ring<double> ring;
  for (std::size_t i = 0; i < 64; ++i) ring.push(static_cast<double>(i));
  EXPECT_EQ(ring.base(), 0u);
  EXPECT_EQ(ring.end(), 64u);
  EXPECT_DOUBLE_EQ(ring[63], 63.0);

  ring.trim_to(32);
  EXPECT_EQ(ring.base(), 32u);
  EXPECT_DOUBLE_EQ(ring[40], 40.0);
  const auto span = ring.span(32, 64);
  ASSERT_EQ(span.size(), 32u);
  EXPECT_DOUBLE_EQ(span.front(), 32.0);

  // at() mutation by absolute index (the stride backfill path).
  ring.at(40) = -1.0;
  EXPECT_DOUBLE_EQ(ring[40], -1.0);
}

TEST(GenericRing, CompactionKeepsValues) {
  Ring<int> ring;
  std::size_t pushed = 0;
  for (std::size_t round = 0; round < 40; ++round) {
    for (int i = 0; i < 100; ++i) ring.push(static_cast<int>(pushed++));
    if (ring.end() > 150) ring.trim_to(ring.end() - 150);
  }
  EXPECT_EQ(ring.size(), 150u);
  for (std::size_t i = ring.base(); i < ring.end(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i));
  }
}

TEST(GenericRing, SpanContractAndEmpty) {
  Ring<double> ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.span(0, 0).size(), 0u);
  if constexpr (checks_enabled()) {
    ring.push(1.0);
    EXPECT_THROW((void)ring.span(0, 2), InvariantViolation);
  }
}
