// Unit tests for FFT/spectral helpers and correlation utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/windows.hpp"

using namespace ptrack;

namespace {

std::vector<double> sine(double freq, double fs, double seconds,
                         double phase = 0.0) {
  const auto n = static_cast<std::size_t>(seconds * fs);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = std::sin(kTwoPi * freq * static_cast<double>(i) / fs + phase);
  }
  return out;
}

}  // namespace

TEST(Fft, ForwardInverseRoundTrip) {
  std::vector<std::complex<double>> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::sin(0.3 * static_cast<double>(i)), 0.0};
  }
  auto original = data;
  dsp::fft(data);
  dsp::fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> data(16, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  dsp::fft(data);
  for (const auto& c : data) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<std::complex<double>> data(10);
  EXPECT_THROW(dsp::fft(data), InvalidArgument);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(dsp::next_pow2(1), 1u);
  EXPECT_EQ(dsp::next_pow2(2), 2u);
  EXPECT_EQ(dsp::next_pow2(3), 4u);
  EXPECT_EQ(dsp::next_pow2(1000), 1024u);
}

TEST(MagnitudeSpectrum, UnitSineHasUnitPeak) {
  // 8 Hz sine, 256 samples at 64 Hz: exactly 32 cycles -> bin-aligned.
  const auto xs = sine(8.0, 64.0, 4.0);
  const auto mag = dsp::magnitude_spectrum(xs);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    if (mag[k] > mag[peak]) peak = k;
  }
  EXPECT_NEAR(mag[peak], 1.0, 0.01);
  // Bin index: 8 Hz / (64 Hz / 256) = 32.
  EXPECT_EQ(peak, 32u);
}

TEST(DominantFrequency, FindsSine) {
  const auto xs = sine(2.5, 100.0, 8.0);
  EXPECT_NEAR(dsp::dominant_frequency(xs, 100.0), 2.5, 0.15);
}

TEST(DominantFrequency, ZeroForDc) {
  const std::vector<double> xs(64, 3.0);
  EXPECT_DOUBLE_EQ(dsp::dominant_frequency(xs, 100.0), 0.0);
}

TEST(SpectralEntropy, ToneLowNoiseHigh) {
  const auto tone = sine(5.0, 100.0, 4.0);
  std::vector<double> noise(tone.size());
  unsigned state = 12345;
  for (double& v : noise) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<double>(state) / 4294967295.0 - 0.5;
  }
  EXPECT_LT(dsp::spectral_entropy(tone), 0.35);
  EXPECT_GT(dsp::spectral_entropy(noise), 0.7);
}

TEST(SpectralEnergy, ScalesWithAmplitude) {
  const auto one = sine(4.0, 100.0, 4.0);
  std::vector<double> two(one.size());
  for (std::size_t i = 0; i < one.size(); ++i) two[i] = 2.0 * one[i];
  EXPECT_NEAR(dsp::spectral_energy(two) / dsp::spectral_energy(one), 4.0, 0.1);
}

TEST(Autocorr, PeriodicSignalAtFullLag) {
  const auto xs = sine(2.0, 100.0, 4.0);  // period 50 samples
  EXPECT_NEAR(dsp::autocorr_at(xs, 50), 1.0, 0.05);
  EXPECT_NEAR(dsp::autocorr_at(xs, 25), -1.0, 0.05);
  EXPECT_DOUBLE_EQ(dsp::autocorr_at(xs, 0), 1.0);
}

TEST(Autocorr, ConstantSignalIsZero) {
  const std::vector<double> xs(100, 5.0);
  EXPECT_DOUBLE_EQ(dsp::autocorr_at(xs, 10), 0.0);
}

TEST(Autocorr, LagBoundsChecked) {
  const std::vector<double> xs(10, 1.0);
  EXPECT_THROW(dsp::autocorr_at(xs, 10), InvalidArgument);
}

TEST(Xcorr, FindsKnownLag) {
  const double fs = 100.0;
  const auto a = sine(2.0, fs, 4.0);
  const auto b = sine(2.0, fs, 4.0, -kPi / 2);  // b delayed by T/4 = 12.5
  const int lag = dsp::best_lag(a, b, 25);
  EXPECT_NEAR(static_cast<double>(lag), 12.5, 1.6);
}

TEST(Xcorr, ZeroLagForIdenticalSignals) {
  const auto a = sine(3.0, 100.0, 3.0);
  EXPECT_EQ(dsp::best_lag(a, a, 20), 0);
}

TEST(DominantPeriod, FindsSinePeriod) {
  const auto xs = sine(2.0, 100.0, 6.0);  // 50-sample period
  EXPECT_EQ(dsp::dominant_period(xs, 10, 200), 50u);
}

TEST(DominantPeriod, ZeroWhenNoPeak) {
  const std::vector<double> xs(64, 1.0);
  EXPECT_EQ(dsp::dominant_period(xs, 4, 30), 0u);
}

TEST(Windows, HannEndsAtZeroPeaksAtOne) {
  const auto w = dsp::hann(33);
  EXPECT_DOUBLE_EQ(w.front(), 0.0);
  EXPECT_DOUBLE_EQ(w.back(), 0.0);
  EXPECT_NEAR(w[16], 1.0, 1e-12);
}

TEST(Windows, FrameIndicesCoverSignal) {
  const auto frames = dsp::frame_indices(100, 20, 10);
  ASSERT_EQ(frames.size(), 9u);
  EXPECT_EQ(frames.front().first, 0u);
  EXPECT_EQ(frames.back().second, 100u);
  for (const auto& [b, e] : frames) EXPECT_EQ(e - b, 20u);
}
