// Admin-plane tests: the bounded HTTP request parser (incremental feeds,
// caps, sticky terminal states), the route table, response rendering, and
// the live telemetry endpoints end-to-end over a real Server reactor —
// including the 404/405/503 error paths and a ptrack_top --once run
// driven as a subprocess (PTRACK_TOP_PATH).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hpp"
#include "net/admin.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

using namespace ptrack;
using namespace ptrack::net;

namespace {

std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

HttpParseStatus feed_all(HttpRequestParser& p, std::string_view s) {
  return p.feed(as_bytes(s));
}

template <typename Pred>
bool wait_for(Pred pred, double timeout_s) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < timeout_s) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// Server with both an ingest and an admin UDS listener, reactor on its
/// own thread. Mirrors test_net_server's ServerRunner plus listen_admin.
struct AdminRunner {
  Server server;
  Endpoint ep;
  Endpoint admin_ep;
  std::thread thread;

  explicit AdminRunner(ServerConfig cfg, const std::string& name)
      : server(std::move(cfg)),
        ep(Endpoint::uds("/tmp/ptadm_" + std::to_string(::getpid()) + "_" +
                         name + ".sock")),
        admin_ep(Endpoint::uds("/tmp/ptadm_" + std::to_string(::getpid()) +
                               "_" + name + ".admin.sock")) {
    server.listen(ep);
    server.listen_admin(admin_ep);
    thread = std::thread([this] { server.run(); });
    EXPECT_TRUE(wait_for([this] { return server.running(); }, 5.0));
  }

  ~AdminRunner() {
    server.request_stop();
    if (thread.joinable()) thread.join();
  }
};

}  // namespace

TEST(NetHttp, ParsesSimpleGet) {
  HttpRequestParser p;
  EXPECT_EQ(feed_all(p, "GET /metrics HTTP/1.0\r\n\r\n"),
            HttpParseStatus::kDone);
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/metrics");
  EXPECT_EQ(p.request().minor_version, 0);
}

TEST(NetHttp, ToleratesBareLfAndHeaders) {
  HttpRequestParser p;
  EXPECT_EQ(feed_all(p,
                     "GET /metrics.json?pretty=1 HTTP/1.1\n"
                     "Host: localhost\nAccept: */*\n\n"),
            HttpParseStatus::kDone);
  EXPECT_EQ(p.request().target, "/metrics.json?pretty=1");
  EXPECT_EQ(p.request().minor_version, 1);
}

TEST(NetHttp, IncrementalByteAtATimeFeed) {
  const std::string_view req = "GET /healthz HTTP/1.0\r\n\r\n";
  HttpRequestParser p;
  HttpParseStatus st = HttpParseStatus::kNeedMore;
  for (std::size_t i = 0; i < req.size(); ++i) {
    st = feed_all(p, req.substr(i, 1));
    if (i + 1 < req.size()) {
      ASSERT_EQ(st, HttpParseStatus::kNeedMore) << "byte " << i;
    }
  }
  EXPECT_EQ(st, HttpParseStatus::kDone);
  EXPECT_EQ(p.request().target, "/healthz");
}

TEST(NetHttp, DoneIsStickySurplusIgnored) {
  HttpRequestParser p;
  ASSERT_EQ(feed_all(p, "GET /metrics HTTP/1.0\r\n\r\n"),
            HttpParseStatus::kDone);
  EXPECT_EQ(feed_all(p, "GET /other HTTP/1.0\r\n\r\n"),
            HttpParseStatus::kDone);
  EXPECT_EQ(p.request().target, "/metrics");  // first request wins
}

TEST(NetHttp, ErrorIsSticky) {
  HttpRequestParser p;
  ASSERT_EQ(feed_all(p, "get /metrics HTTP/1.0\r\n\r\n"),
            HttpParseStatus::kError);
  ASSERT_TRUE(p.failed());
  EXPECT_NE(p.error(), nullptr);
  EXPECT_EQ(feed_all(p, "GET /metrics HTTP/1.0\r\n\r\n"),
            HttpParseStatus::kError);
}

TEST(NetHttp, RejectsMalformedRequestLines) {
  const std::string_view bad[] = {
      "GET  HTTP/1.0\r\n\r\n",                // empty target
      "GET metrics HTTP/1.0\r\n\r\n",         // not origin-form
      "GET /metrics HTTP/2.0\r\n\r\n",        // unsupported version
      "GET /metrics\r\n\r\n",                 // missing version
      "\r\nGET /metrics HTTP/1.0\r\n\r\n",    // leading blank line
      "GET /me\ttrics HTTP/1.0\r\n\r\n",      // control byte in target
  };
  for (const std::string_view req : bad) {
    HttpRequestParser p;
    EXPECT_EQ(feed_all(p, req), HttpParseStatus::kError) << req;
  }
}

TEST(NetHttp, EnforcesTargetAndRequestCaps) {
  {
    HttpRequestParser p;
    const std::string req = "GET /" +
                            std::string(kMaxHttpTargetBytes, 'a') +
                            " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(feed_all(p, req), HttpParseStatus::kError);
  }
  {
    HttpRequestParser p;
    // No terminator within the request cap: error, not a growing buffer.
    const std::string junk(kMaxHttpRequestBytes + 64, 'A');
    EXPECT_EQ(feed_all(p, junk), HttpParseStatus::kError);
  }
}

TEST(NetHttp, AdminRouteTable) {
  EXPECT_EQ(admin_route("/metrics"), AdminRoute::kMetrics);
  EXPECT_EQ(admin_route("/metrics.json"), AdminRoute::kMetricsJson);
  EXPECT_EQ(admin_route("/healthz"), AdminRoute::kHealthz);
  EXPECT_EQ(admin_route("/readyz"), AdminRoute::kReadyz);
  EXPECT_EQ(admin_route("/sessions"), AdminRoute::kSessions);
  EXPECT_EQ(admin_route("/metrics?window=5"), AdminRoute::kMetrics);
  EXPECT_EQ(admin_route("/"), AdminRoute::kUnknown);
  EXPECT_EQ(admin_route(""), AdminRoute::kUnknown);
  EXPECT_EQ(admin_route("/metrics/extra"), AdminRoute::kUnknown);
  EXPECT_EQ(admin_route("/METRICS"), AdminRoute::kUnknown);
}

TEST(NetHttp, ResponseBuilder) {
  const std::string r = http_response(200, "text/plain", "hi");
  EXPECT_EQ(r.find("HTTP/1.0 200 OK\r\n"), 0u);
  EXPECT_NE(r.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 6), "\r\n\r\nhi");
  EXPECT_EQ(std::string(http_status_text(404)), "Not Found");
}

TEST(NetHttp, RenderReadyzFlipsOnDrain) {
  AdminStatusView view;
  std::string_view ctype;
  int status = 0;
  std::string body = render_admin_body(AdminRoute::kReadyz, view, {},
                                       &ctype, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"ready\""), std::string::npos);
  view.draining = true;
  body = render_admin_body(AdminRoute::kReadyz, view, {}, &ctype, &status);
  EXPECT_EQ(status, 503);
}

TEST(NetHttp, LiveEndpointsAnswer) {
  AdminRunner runner(ServerConfig{}, "live");

  const HttpGetResult health = http_get(runner.admin_ep, "/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(json::parse(health.body).at("status").as_string(), "ok");

  const HttpGetResult ready = http_get(runner.admin_ep, "/readyz");
  ASSERT_TRUE(ready.ok) << ready.error;
  EXPECT_EQ(ready.status, 200);

  const HttpGetResult prom = http_get(runner.admin_ep, "/metrics");
  ASSERT_TRUE(prom.ok) << prom.error;
  EXPECT_EQ(prom.status, 200);
  EXPECT_NE(prom.body.find("# TYPE "), std::string::npos);
  EXPECT_NE(prom.body.find("ptrack_"), std::string::npos);

  const HttpGetResult mjson = http_get(runner.admin_ep, "/metrics.json");
  ASSERT_TRUE(mjson.ok) << mjson.error;
  EXPECT_EQ(mjson.status, 200);
  const json::Value doc = json::parse(mjson.body);
  EXPECT_EQ(doc.at("schema").as_string(), "ptrack.metrics.v1");

  const HttpGetResult sess = http_get(runner.admin_ep, "/sessions");
  ASSERT_TRUE(sess.ok) << sess.error;
  EXPECT_EQ(sess.status, 200);
  const json::Value sdoc = json::parse(sess.body);
  EXPECT_EQ(sdoc.at("schema").as_string(), "ptrack.sessions.v1");
  EXPECT_EQ(sdoc.at("sessions").items().size(), 0u);

  const HttpGetResult miss = http_get(runner.admin_ep, "/nope");
  ASSERT_TRUE(miss.ok) << miss.error;
  EXPECT_EQ(miss.status, 404);

  EXPECT_GE(runner.server.stats().admin_requests, 6u);
}

TEST(NetHttp, LiveSessionShowsUpInSessions) {
  AdminRunner runner(ServerConfig{}, "rows");
  Socket holder = connect_to(runner.ep);
  ASSERT_TRUE(wait_for(
      [&] { return runner.server.stats().sessions_active == 1; }, 5.0));

  const HttpGetResult sess = http_get(runner.admin_ep, "/sessions");
  ASSERT_TRUE(sess.ok) << sess.error;
  const json::Value sdoc = json::parse(sess.body);
  const auto& rows = sdoc.at("sessions").items();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("state").as_string(), "await_hello");
  EXPECT_DOUBLE_EQ(rows[0].at("samples").as_number(), 0.0);
  holder.close();
}

TEST(NetHttp, NonGetIs405) {
  AdminRunner runner(ServerConfig{}, "post");
  Socket sock = connect_to(runner.admin_ep);
  const std::string_view req = "POST /metrics HTTP/1.0\r\n\r\n";
  std::span<const std::uint8_t> rest = as_bytes(req);
  while (!rest.empty()) {
    rest = rest.subspan(sock.write_some(rest));
  }
  std::string response;
  std::vector<std::uint8_t> buf(4096);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::ptrdiff_t n = sock.read_some(buf);
    if (n == 0) break;
    if (n < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    response.append(reinterpret_cast<const char*>(buf.data()),
                    static_cast<std::size_t>(n));
  }
  EXPECT_EQ(response.find("HTTP/1.0 405 "), 0u);
  EXPECT_NE(response.find("read-only"), std::string::npos);
}

TEST(NetHttp, BudgetExhaustionGets503) {
  ServerConfig cfg;
  cfg.admin_max_sessions = 0;  // every admin connection is over budget
  AdminRunner runner(std::move(cfg), "shed");
  const HttpGetResult r = http_get(runner.admin_ep, "/metrics");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 503);
  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().admin_shed >= 1; }, 5.0));
}

TEST(NetHttp, PtrackTopOnceAgainstLiveServer) {
  AdminRunner runner(ServerConfig{}, "top");
  const std::filesystem::path out_path =
      std::filesystem::temp_directory_path() /
      ("ptrack_test_top_" + std::to_string(::getpid()) + ".txt");
  const std::string cmd = std::string(PTRACK_TOP_PATH) + " --uds " +
                          runner.admin_ep.path + " --once > " +
                          out_path.string();
  const int status = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::ifstream in(out_path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("ptrack_top"), std::string::npos);
  EXPECT_NE(text.find("sessions"), std::string::npos);
  std::filesystem::remove(out_path);
}
