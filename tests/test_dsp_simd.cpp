// Scalar <-> vector bit-equality for the dsp::simd kernel layer.
//
// The dispatch contract (dsp/simd.hpp) promises that every kernel produces
// *identical* results on the scalar fallback and on the detected vector
// ISA — bit for bit, because reductions share one canonical lane-block
// order and elementwise maps replicate exact expression trees with FMA
// contraction disabled. These tests sweep odd lengths, unaligned offsets
// and empty/short inputs under force_isa(). On a machine (or a
// PTRACK_SIMD=OFF build) where detected() == kScalar they degenerate to
// scalar-vs-scalar and still pin the canonical results.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "dsp/butterworth.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/simd.hpp"
#include "dsp/workspace.hpp"

using namespace ptrack;
namespace simd = ptrack::dsp::simd;

namespace {

/// Pins dispatch for one scope and always restores the detected ISA.
class IsaGuard {
 public:
  explicit IsaGuard(simd::Isa isa) { simd::force_isa(isa); }
  ~IsaGuard() { simd::force_isa(simd::detected()); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

/// Lengths hitting every tail case of the 4-wide and 8-wide blocks, plus
/// empty, sub-block and large inputs.
const std::array<std::size_t, 15> kLengths = {0,  1,  2,  3,   5,
                                              7,  8,  9,  15,  16,
                                              31, 64, 100, 1001, 2000};

/// Offsets exercising unaligned span starts (ring views land anywhere).
const std::array<std::size_t, 3> kOffsets = {0, 1, 3};

template <typename T>
std::vector<T> rand_vec(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::vector<T> out(n);
  for (auto& v : out) v = static_cast<T>(dist(rng));
  return out;
}

/// Runs `fn` under the scalar fallback and under the detected ISA and
/// returns both results for bit comparison.
template <typename Fn>
auto both_isas(Fn&& fn) {
  simd::force_isa(simd::Isa::kScalar);
  auto scalar = fn();
  simd::force_isa(simd::detected());
  auto vector = fn();
  return std::pair{scalar, vector};
}

template <typename T>
void expect_bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "index " << i;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(SimdDispatch, ForceIsaClampsToDetected) {
  IsaGuard guard(simd::detected());
  simd::force_isa(simd::Isa::kScalar);
  EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  simd::force_isa(simd::detected());
  EXPECT_EQ(simd::active(), simd::detected());
  // Forcing an ISA the CPU (or build) lacks falls back to scalar instead of
  // dispatching into unsupported instructions.
  const simd::Isa foreign = simd::detected() == simd::Isa::kNeon
                                ? simd::Isa::kAvx2
                                : simd::Isa::kNeon;
  simd::force_isa(foreign);
  EXPECT_EQ(simd::active(), simd::Isa::kScalar);
}

TEST(SimdDispatch, IsaNamesAreStable) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kNeon), "neon");
}

TEST(SimdDispatch, WorkspaceScratchIsCacheLineAligned) {
  dsp::Workspace ws;
  auto& d = ws.real_scratch(0, 333);
  auto& f = ws.float_scratch(0, 333);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.data()) % 64, 0u);
}

// ---------------------------------------------------------------------------
// Reductions: bit-exact across ISAs, lengths and offsets.

TEST(SimdKernels, ReductionsBitExact) {
  IsaGuard guard(simd::detected());
  for (std::size_t n : kLengths) {
    for (std::size_t off : kOffsets) {
      const auto xs = rand_vec<double>(n + off, 11);
      const auto ys = rand_vec<double>(n + off, 12);
      const std::span<const double> x{xs.data() + off, n};
      const std::span<const double> y{ys.data() + off, n};
      const auto [s0, s1] = both_isas([&] { return simd::sum(x); });
      EXPECT_EQ(s0, s1) << "sum n=" << n << " off=" << off;
      const auto [d0, d1] = both_isas([&] { return simd::dot(x, y); });
      EXPECT_EQ(d0, d1) << "dot n=" << n << " off=" << off;
      const auto [q0, q1] =
          both_isas([&] { return simd::sumsq_dev(x, 0.25); });
      EXPECT_EQ(q0, q1) << "sumsq_dev n=" << n << " off=" << off;

      const auto xf = rand_vec<float>(n + off, 13);
      const auto yf = rand_vec<float>(n + off, 14);
      const std::span<const float> fx{xf.data() + off, n};
      const std::span<const float> fy{yf.data() + off, n};
      const auto [f0, f1] = both_isas([&] { return simd::sumf(fx); });
      EXPECT_EQ(f0, f1) << "sumf n=" << n << " off=" << off;
      const auto [g0, g1] = both_isas([&] { return simd::dotf(fx, fy); });
      EXPECT_EQ(g0, g1) << "dotf n=" << n << " off=" << off;
      const auto [h0, h1] =
          both_isas([&] { return simd::sumsq_devf(fx, 0.25F); });
      EXPECT_EQ(h0, h1) << "sumsq_devf n=" << n << " off=" << off;
    }
  }
}

TEST(SimdKernels, EmptyReductionsAreZero) {
  IsaGuard guard(simd::detected());
  EXPECT_EQ(simd::sum({}), 0.0);
  EXPECT_EQ(simd::dot({}, {}), 0.0);
  EXPECT_EQ(simd::sumsq_dev({}, 1.0), 0.0);
  EXPECT_EQ(simd::sumf({}), 0.0F);
}

// ---------------------------------------------------------------------------
// Elementwise maps.

TEST(SimdKernels, ProjectionsBitExact) {
  IsaGuard guard(simd::detected());
  const Vec3 up = Vec3{0.3, -0.7, 0.648}.normalized();
  const Vec3 dir = Vec3{0.9, 0.1, -0.42}.normalized();
  for (std::size_t n : kLengths) {
    for (std::size_t off : kOffsets) {
      const auto xs = rand_vec<double>(n + off, 21);
      const auto ys = rand_vec<double>(n + off, 22);
      const auto zs = rand_vec<double>(n + off, 23);
      const std::span<const double> x{xs.data() + off, n};
      const std::span<const double> y{ys.data() + off, n};
      const std::span<const double> z{zs.data() + off, n};

      const auto [a0, a1] = both_isas([&] {
        std::vector<double> out(n);
        simd::axis_project(x, y, z, up, 9.81, out);
        return out;
      });
      expect_bits_equal(a0, a1);

      const auto [r0, r1] = both_isas([&] {
        std::vector<double> out(n);
        simd::residual_project(x, y, z, up, dir, out);
        return out;
      });
      expect_bits_equal(r0, r1);

      const auto xf = rand_vec<float>(n + off, 24);
      const auto yf = rand_vec<float>(n + off, 25);
      const auto zf = rand_vec<float>(n + off, 26);
      const std::span<const float> fx{xf.data() + off, n};
      const std::span<const float> fy{yf.data() + off, n};
      const std::span<const float> fz{zf.data() + off, n};

      const auto [b0, b1] = both_isas([&] {
        std::vector<float> out(n);
        simd::axis_projectf(fx, fy, fz, up, 9.81F, out);
        return out;
      });
      expect_bits_equal(b0, b1);

      const auto [c0, c1] = both_isas([&] {
        std::vector<float> out(n);
        simd::residual_projectf(fx, fy, fz, up, dir, out);
        return out;
      });
      expect_bits_equal(c0, c1);
    }
  }
}

TEST(SimdKernels, ElementwiseMapsBitExact) {
  IsaGuard guard(simd::detected());
  for (std::size_t n : kLengths) {
    for (std::size_t off : kOffsets) {
      const auto xs = rand_vec<double>(n + off, 31);
      const auto ys = rand_vec<double>(n + off, 32);
      const std::span<const double> x{xs.data() + off, n};
      const std::span<const double> y{ys.data() + off, n};

      const auto [n0, n1] = both_isas([&] {
        std::vector<double> out(n);
        simd::negate(x, out);
        return out;
      });
      expect_bits_equal(n0, n1);

      const auto [s0, s1] = both_isas([&] {
        std::vector<double> out(n);
        simd::sub_scalar(x, 0.7031, out);
        return out;
      });
      expect_bits_equal(s0, s1);

      const auto [d0, d1] = both_isas([&] {
        std::vector<double> out(n);
        simd::diff_div(x, y, 17.0, out);
        return out;
      });
      expect_bits_equal(d0, d1);

      const auto xf = rand_vec<float>(n + off, 33);
      const auto [w0, w1] = both_isas([&] {
        std::vector<double> out(n);
        simd::widen({xf.data() + off, n}, out);
        return out;
      });
      expect_bits_equal(w0, w1);

      const auto [m0, m1] = both_isas([&] {
        std::vector<float> out(n);
        simd::narrow(x, out);
        return out;
      });
      expect_bits_equal(m0, m1);
    }
  }
}

// ---------------------------------------------------------------------------
// Scans.

TEST(SimdKernels, ProminenceScansBitExact) {
  IsaGuard guard(simd::detected());
  for (std::size_t n : kLengths) {
    const auto xs = rand_vec<double>(n, 41);
    // Thresholds below, inside and above the data range: no breaker at all,
    // breakers at arbitrary block positions, immediate breaker.
    for (double h : {-10.0, -1.0, 0.0, 1.0, 10.0}) {
      const auto [f0, f1] =
          both_isas([&] { return simd::min_until_greater_fwd(xs, h); });
      EXPECT_EQ(f0, f1) << "fwd n=" << n << " h=" << h;
      const auto [b0, b1] =
          both_isas([&] { return simd::min_until_greater_bwd(xs, h); });
      EXPECT_EQ(b0, b1) << "bwd n=" << n << " h=" << h;
    }
  }
  // Empty input returns the threshold itself (prominence walk off an edge
  // peak: no minimum on that side).
  EXPECT_EQ(simd::min_until_greater_fwd({}, 2.5), 2.5);
  EXPECT_EQ(simd::min_until_greater_bwd({}, 2.5), 2.5);
}

TEST(SimdKernels, ScansExcludeSamplesPastTheBreaker) {
  IsaGuard guard(simd::detected());
  // A deep minimum *behind* the first sample greater than h must not leak
  // into the result — the walk stops at the breaker (inclusive).
  std::vector<double> xs{0.5, 0.2, 1.5, -9.0, 0.1};
  EXPECT_EQ(simd::min_until_greater_fwd(xs, 1.0), 0.2);
  std::vector<double> rev{0.1, -9.0, 1.5, 0.2, 0.5};
  EXPECT_EQ(simd::min_until_greater_bwd(rev, 1.0), 0.2);
}

TEST(SimdKernels, NormalizeLagsBitExact) {
  IsaGuard guard(simd::detected());
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                        std::size_t{1001}}) {
    const auto raw = rand_vec<double>(n, 51);
    const auto [a, b] = both_isas([&] {
      std::vector<double> out(n);
      simd::normalize_lags(raw, n, 0.37, out);
      return out;
    });
    expect_bits_equal(a, b);
    // Clamp contract: every normalized value lands in [-1, 1].
    for (double v : a) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Lane-parallel IIR.

TEST(SimdKernels, CascadeMultiBitExactAcrossIsas) {
  IsaGuard guard(simd::detected());
  const auto cascade = dsp::butterworth_lowpass(4, 5.0, 100.0);
  std::vector<dsp::BiquadCoeffs> sections;
  for (const auto& s : cascade.sections()) sections.push_back(s.coeffs());
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{333}, std::size_t{2000}}) {
    for (bool backward : {false, true}) {
      const auto seed_data =
          rand_vec<double>(n * simd::kIirLanes, 61);
      const auto [a, b] = both_isas([&] {
        std::vector<double> data = seed_data;
        simd::cascade_multi(sections, data.data(), n, backward);
        return data;
      });
      expect_bits_equal(a, b);

      const auto seed_dataf = rand_vec<float>(n * simd::kIirLanes, 62);
      const auto [c, d] = both_isas([&] {
        std::vector<float> data = seed_dataf;
        simd::cascade_multif(sections, data.data(), n, backward);
        return data;
      });
      expect_bits_equal(c, d);
    }
  }
}

TEST(SimdKernels, CascadeMultiLaneMatchesSingleChannelBiquad) {
  IsaGuard guard(simd::detected());
  // Each interleaved lane must be bit-identical to BiquadCascade::step run
  // over that channel alone (the header's per-lane contract).
  const auto proto = dsp::butterworth_lowpass(4, 5.0, 100.0);
  std::vector<dsp::BiquadCoeffs> sections;
  for (const auto& s : proto.sections()) sections.push_back(s.coeffs());
  const std::size_t n = 257;
  std::vector<std::vector<double>> chans;
  for (std::size_t c = 0; c < simd::kIirLanes; ++c) {
    chans.push_back(rand_vec<double>(n, static_cast<std::uint32_t>(70 + c)));
  }
  std::vector<double> data(n * simd::kIirLanes);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < simd::kIirLanes; ++c) {
      data[i * simd::kIirLanes + c] = chans[c][i];
    }
  }
  simd::cascade_multi(sections, data.data(), n, /*backward=*/false);
  for (std::size_t c = 0; c < simd::kIirLanes; ++c) {
    dsp::BiquadCascade ref = proto;
    ref.reset();
    for (std::size_t i = 0; i < n; ++i) {
      const double want = ref.step(chans[c][i]);
      EXPECT_EQ(data[i * simd::kIirLanes + c], want)
          << "lane " << c << " sample " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Composite: the batched filtfilt entry points.

TEST(SimdComposite, FiltfiltMultiMatchesSingleChannel) {
  IsaGuard guard(simd::detected());
  // filtfilt_multi_into promises bit-identity with per-channel
  // filtfilt_into; that makes the projection stage's batched filters safe
  // to swap in without perturbing the double pipeline.
  const auto cascade = dsp::butterworth_lowpass(4, 5.0, 100.0);
  dsp::Workspace ws_multi;
  dsp::Workspace ws_single;
  for (std::size_t n : {std::size_t{16}, std::size_t{129}, std::size_t{750}}) {
    const auto a = rand_vec<double>(n, 81);
    const auto b = rand_vec<double>(n, 82);
    std::vector<double> out_a(n);
    std::vector<double> out_b(n);
    const std::array<std::span<const double>, 2> xs{
        std::span<const double>(a), std::span<const double>(b)};
    const std::array<std::span<double>, 2> outs{std::span<double>(out_a),
                                                std::span<double>(out_b)};
    dsp::filtfilt_multi_into(cascade, xs, 64, ws_multi, outs);

    std::vector<double> ref_a(n);
    std::vector<double> ref_b(n);
    dsp::filtfilt_into(cascade, a, 64, ws_single, ref_a);
    dsp::filtfilt_into(cascade, b, 64, ws_single, ref_b);
    expect_bits_equal(out_a, ref_a);
    expect_bits_equal(out_b, ref_b);
  }
}

TEST(SimdComposite, FiltfiltMultiMeanMatchesSerialMean) {
  IsaGuard guard(simd::detected());
  const auto cascade = dsp::butterworth_lowpass(2, 0.3, 100.0);
  dsp::Workspace ws;
  const std::size_t n = 512;
  const auto a = rand_vec<double>(n, 91);
  const auto b = rand_vec<double>(n, 92);
  const auto c = rand_vec<double>(n, 93);
  const std::array<std::span<const double>, 3> xs{
      std::span<const double>(a), std::span<const double>(b),
      std::span<const double>(c)};
  const auto means = dsp::filtfilt_multi_mean(cascade, xs, 64, ws);

  dsp::Workspace ws2;
  for (std::size_t ci = 0; ci < 3; ++ci) {
    std::vector<double> out(n);
    dsp::filtfilt_into(cascade, xs[ci], 64, ws2, out);
    double sum = 0.0;
    for (double v : out) sum += v;
    EXPECT_EQ(means[ci], sum / static_cast<double>(n)) << "channel " << ci;
  }
}
