// Unit tests for gait-cycle candidate segmentation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "core/segmentation.hpp"

using namespace ptrack;

namespace {

// Synthetic vertical channel: strong peaks at a given cadence.
std::vector<double> step_signal(double fs, double seconds, double cadence,
                                double amp = 4.0) {
  const auto n = static_cast<std::size_t>(fs * seconds);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = amp * std::cos(kTwoPi * cadence * static_cast<double>(i) / fs);
  }
  return out;
}

}  // namespace

TEST(StepPeaks, FindsAllStepPeaks) {
  const auto xs = step_signal(100.0, 10.0, 2.0);  // 20 peaks
  const auto peaks = core::step_peaks(xs, 100.0, {});
  EXPECT_NEAR(static_cast<double>(peaks.size()), 20.0, 1.0);
}

TEST(StepPeaks, WeakSignalFiltered) {
  const auto xs = step_signal(100.0, 10.0, 2.0, 0.1);  // below prominence
  EXPECT_TRUE(core::step_peaks(xs, 100.0, {}).empty());
}

TEST(StepPeaks, RefractoryIntervalEnforced) {
  core::StepCounterConfig cfg;
  const auto xs = step_signal(100.0, 10.0, 2.0);
  const auto peaks = core::step_peaks(xs, 100.0, cfg);
  const auto min_gap =
      static_cast<std::size_t>(cfg.min_step_interval_s * 100.0);
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    EXPECT_GE(peaks[i] - peaks[i - 1], min_gap);
  }
}

TEST(SegmentCycles, PairsNonOverlapping) {
  const auto xs = step_signal(100.0, 12.0, 2.0);
  const auto cycles = core::segment_cycles(xs, 100.0, {});
  ASSERT_GE(cycles.size(), 10u);
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    EXPECT_LT(cycles[i].begin, cycles[i].mid);
    EXPECT_LT(cycles[i].mid, cycles[i].end);
    if (i > 0) {
      EXPECT_EQ(cycles[i].begin, cycles[i - 1].end);
    }
  }
}

TEST(SegmentCycles, CycleSpansTwoSteps) {
  const double cadence = 2.0;
  const double fs = 100.0;
  const auto xs = step_signal(fs, 12.0, cadence);
  const auto cycles = core::segment_cycles(xs, fs, {});
  const double expected = 2.0 * fs / cadence;  // samples per cycle
  for (const auto& c : cycles) {
    EXPECT_NEAR(static_cast<double>(c.end - c.begin), expected, 4.0);
  }
}

TEST(SegmentCycles, SlowPeaksRejectedByMaxInterval) {
  // 0.5 Hz "steps": gaps of 2 s exceed max_step_interval_s.
  const auto xs = step_signal(100.0, 20.0, 0.5);
  EXPECT_TRUE(core::segment_cycles(xs, 100.0, {}).empty());
}

TEST(SegmentCycles, FewPeaksYieldNoCycles) {
  const auto xs = step_signal(100.0, 1.0, 2.0);  // ~2 peaks only
  EXPECT_TRUE(core::segment_cycles(xs, 100.0, {}).empty());
}

TEST(SegmentCycles, GapSplitsCandidates) {
  // Steps, then silence, then steps: no candidate spans the silence.
  auto xs = step_signal(100.0, 6.0, 2.0);
  const auto quiet = std::vector<double>(300, 0.0);
  xs.insert(xs.end(), quiet.begin(), quiet.end());
  const auto tail = step_signal(100.0, 6.0, 2.0);
  xs.insert(xs.end(), tail.begin(), tail.end());

  core::StepCounterConfig cfg;
  const auto cycles = core::segment_cycles(xs, 100.0, cfg);
  const auto max_len =
      static_cast<std::size_t>(2.0 * cfg.max_step_interval_s * 100.0);
  for (const auto& c : cycles) {
    EXPECT_LE(c.end - c.begin, max_len);
  }
}
