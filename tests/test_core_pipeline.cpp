// Integration tests for the full PTrack pipeline (facade): counting,
// stride filling, robustness, and result invariants.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult make(const synth::Scenario& scenario, std::uint64_t seed,
                        const synth::UserProfile& user) {
  Rng rng(seed);
  return synth::synthesize(scenario, user, synth::SynthOptions{}, rng);
}

core::PTrack tracker_for(const synth::UserProfile& user) {
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  return core::PTrack(cfg);
}

}  // namespace

TEST(Pipeline, WalkingCountedAccurately) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_walking(60.0), 71, user);
  const auto res = tracker_for(user).process(r.trace);
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(res.steps), truth, 0.08 * truth);
}

TEST(Pipeline, SteppingCountedAccurately) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_stepping(60.0), 72, user);
  const auto res = tracker_for(user).process(r.trace);
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(res.steps), truth, 0.05 * truth);
}

TEST(Pipeline, SpooferRejected) {
  synth::UserProfile user;
  const auto r = make(
      synth::Scenario::interference(synth::ActivityKind::Spoofer, 60.0,
                                    synth::Posture::Standing),
      73, user);
  const auto res = tracker_for(user).process(r.trace);
  EXPECT_EQ(res.steps, 0u);
}

TEST(Pipeline, InterferenceNearlySilent) {
  synth::UserProfile user;
  for (auto kind : {synth::ActivityKind::Eating, synth::ActivityKind::Poker,
                    synth::ActivityKind::Gaming}) {
    const auto r = make(
        synth::Scenario::interference(kind, 60.0, synth::Posture::Standing),
        74, user);
    const auto res = tracker_for(user).process(r.trace);
    EXPECT_LE(res.steps, 6u) << to_string(kind);
  }
}

TEST(Pipeline, EventsMatchStepCount) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_walking(30.0), 75, user);
  const auto res = tracker_for(user).process(r.trace);
  EXPECT_EQ(res.events.size(), res.steps);
  EXPECT_EQ(res.steps % 2, 0u);  // cycles contribute step pairs
}

TEST(Pipeline, EventsChronological) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::mixed_gait(60.0), 76, user);
  const auto res = tracker_for(user).process(r.trace);
  for (std::size_t i = 1; i < res.events.size(); ++i) {
    EXPECT_LE(res.events[i - 1].t, res.events[i].t);
  }
}

TEST(Pipeline, AllCountedEventsHaveStrides) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_walking(60.0), 77, user);
  const auto res = tracker_for(user).process(r.trace);
  ASSERT_GT(res.events.size(), 20u);
  for (const core::StepEvent& e : res.events) {
    EXPECT_GT(e.stride, 0.1);
    EXPECT_LT(e.stride, 2.0);
  }
}

TEST(Pipeline, DistanceNearTruthForWalking) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_walking(90.0), 78, user);
  const auto res = tracker_for(user).process(r.trace);
  const double truth = r.truth.total_distance();
  EXPECT_NEAR(res.distance(), truth, 0.15 * truth);
}

TEST(Pipeline, MixedGaitBothTypesAppear) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::mixed_gait(90.0), 79, user);
  const auto res = tracker_for(user).process(r.trace);
  std::size_t walking = 0;
  std::size_t stepping = 0;
  for (const core::CycleRecord& c : res.cycles) {
    walking += c.type == core::GaitType::Walking;
    stepping += c.type == core::GaitType::Stepping;
  }
  EXPECT_GT(walking, 10u);
  EXPECT_GT(stepping, 10u);
}

TEST(Pipeline, EmptyAndTinyTraces) {
  synth::UserProfile user;
  const auto tracker = tracker_for(user);
  EXPECT_EQ(tracker.process(imu::Trace{}).steps, 0u);
  const auto r = make(synth::Scenario::pure_walking(10.0), 80, user);
  EXPECT_EQ(tracker.process(r.trace.slice(0, 8)).steps, 0u);
}

TEST(Pipeline, CycleRecordsCoverCountedSteps) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_walking(40.0), 81, user);
  const auto res = tracker_for(user).process(r.trace);
  std::size_t counted_cycles = 0;
  for (const core::CycleRecord& c : res.cycles) {
    counted_cycles += c.type != core::GaitType::Interference;
  }
  EXPECT_EQ(res.steps, 2 * counted_cycles);
}

TEST(Pipeline, AdapterMatchesFacade) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_walking(30.0), 82, user);
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack facade(cfg);
  core::PTrackCounterAdapter adapter(cfg);
  EXPECT_EQ(adapter.count_steps(r.trace).count, facade.process(r.trace).steps);
  EXPECT_EQ(adapter.name(), "PTrack");
}

TEST(Pipeline, SetProfileChangesStrides) {
  synth::UserProfile user;
  const auto r = make(synth::Scenario::pure_walking(30.0), 83, user);
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack tracker(cfg);
  const double d0 = tracker.process(r.trace).distance();
  core::StrideProfile longer = cfg.stride.profile;
  longer.leg_length *= 1.5;
  tracker.set_profile(longer);
  const double d1 = tracker.process(r.trace).distance();
  EXPECT_GT(d1, d0);
}

TEST(Pipeline, WalkBetweenInterference) {
  // A realistic day fragment: eat, walk, game. Steps counted only in the
  // walking window.
  synth::UserProfile user;
  synth::Scenario scenario;
  scenario.activity(synth::ActivityKind::Eating, 30.0)
      .walk(30.0)
      .activity(synth::ActivityKind::Gaming, 30.0);
  const auto r = make(scenario, 84, user);
  const auto res = tracker_for(user).process(r.trace);
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(res.steps), truth, 0.15 * truth + 4.0);
  // Events fall inside the walking window (with small margin).
  for (const core::StepEvent& e : res.events) {
    EXPECT_GT(e.t, 28.0);
    EXPECT_LT(e.t, 62.0);
  }
}
