// Unit tests for user profiles and the Eq. (2) bounce/stride coupling.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "synth/profile.hpp"
#include "synth/scenario.hpp"
#include "synth/truth.hpp"

using namespace ptrack;

TEST(Profile, BounceStrideRoundTrip) {
  synth::UserProfile p;
  const double stride = 0.72;
  const double bounce = p.bounce_for_stride(stride);
  EXPECT_GT(bounce, 0.0);
  EXPECT_LT(bounce, p.leg_length);
  EXPECT_NEAR(p.stride_for_bounce(bounce), stride, 1e-9);
}

TEST(Profile, LongerStrideNeedsBiggerBounce) {
  synth::UserProfile p;
  EXPECT_GT(p.bounce_for_stride(0.85), p.bounce_for_stride(0.65));
}

TEST(Profile, BounceForStridePreconditions) {
  synth::UserProfile p;
  EXPECT_THROW((void)p.bounce_for_stride(0.0), InvalidArgument);
  EXPECT_THROW((void)p.bounce_for_stride(10.0), InvalidArgument);
  EXPECT_THROW((void)p.stride_for_bounce(-0.1), InvalidArgument);
}

TEST(Profile, MeanStride) {
  synth::UserProfile p;
  p.speed = 1.4;
  p.cadence = 2.0;
  EXPECT_DOUBLE_EQ(p.mean_stride(), 0.7);
}

TEST(Profile, RandomUsersArePlausible) {
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const synth::UserProfile p = synth::random_user(rng);
    EXPECT_GT(p.height, 1.4);
    EXPECT_LT(p.height, 2.0);
    EXPECT_GT(p.arm_length, 0.5);
    EXPECT_LT(p.arm_length, 0.9);
    EXPECT_GT(p.leg_length, 0.7);
    EXPECT_LT(p.leg_length, 1.1);
    EXPECT_GT(p.mean_stride(), 0.4);
    EXPECT_LT(p.mean_stride(), 1.1);
    // The implied bounce must be solvable.
    EXPECT_NO_THROW((void)p.bounce_for_stride(p.mean_stride()));
  }
}

TEST(Truth, IsGait) {
  EXPECT_TRUE(synth::is_gait(synth::ActivityKind::Walking));
  EXPECT_TRUE(synth::is_gait(synth::ActivityKind::Stepping));
  EXPECT_FALSE(synth::is_gait(synth::ActivityKind::Eating));
  EXPECT_FALSE(synth::is_gait(synth::ActivityKind::Spoofer));
  EXPECT_FALSE(synth::is_gait(synth::ActivityKind::SwingOnly));
}

TEST(Truth, NamesAreStable) {
  EXPECT_EQ(synth::to_string(synth::ActivityKind::Walking), "walking");
  EXPECT_EQ(synth::to_string(synth::ActivityKind::Poker), "poker");
}

TEST(Truth, DistanceAndWindowQueries) {
  synth::GroundTruth truth;
  truth.steps.push_back({1.0, 0.7, 0.06, 0});
  truth.steps.push_back({2.0, 0.8, 0.07, 0});
  truth.steps.push_back({3.0, 0.75, 0.065, 0});
  EXPECT_DOUBLE_EQ(truth.total_distance(), 2.25);
  EXPECT_EQ(truth.step_count(), 3u);
  EXPECT_EQ(truth.steps_in(0.5, 2.5), 2u);
  EXPECT_EQ(truth.steps_in(5.0, 9.0), 0u);
}

TEST(Scenario, BuilderAccumulates) {
  synth::Scenario s;
  s.walk(10.0).step(5.0).activity(synth::ActivityKind::Eating, 7.0,
                                  synth::Posture::Seated);
  ASSERT_EQ(s.segments().size(), 3u);
  EXPECT_DOUBLE_EQ(s.total_duration(), 22.0);
  EXPECT_EQ(s.segments()[2].posture, synth::Posture::Seated);
}

TEST(Scenario, RejectsNonPositiveDuration) {
  synth::Scenario s;
  EXPECT_THROW(s.walk(0.0), InvalidArgument);
}

TEST(Scenario, MixedGaitAlternatesAndCoversDuration) {
  const synth::Scenario s = synth::Scenario::mixed_gait(60.0);
  EXPECT_NEAR(s.total_duration(), 60.0, 1e-9);
  ASSERT_GE(s.segments().size(), 3u);
  for (std::size_t i = 1; i < s.segments().size(); ++i) {
    EXPECT_NE(s.segments()[i].kind, s.segments()[i - 1].kind);
  }
}
