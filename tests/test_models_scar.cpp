// Unit tests for the SCAR baseline: features, Gaussian naive Bayes, and
// the training-set dependence the paper exploits in Fig. 7(a).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "models/scar.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

imu::Trace make_trace(synth::ActivityKind kind, double seconds,
                      std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  synth::Scenario scenario;
  if (kind == synth::ActivityKind::Walking) {
    scenario = synth::Scenario::pure_walking(seconds);
  } else if (kind == synth::ActivityKind::Stepping) {
    scenario = synth::Scenario::pure_stepping(seconds);
  } else {
    scenario =
        synth::Scenario::interference(kind, seconds, synth::Posture::Standing);
  }
  return synth::synthesize(scenario, user, synth::SynthOptions{}, rng).trace;
}

models::ScarClassifier trained_classifier(std::uint64_t seed) {
  std::vector<models::LabeledTrace> examples;
  examples.push_back({make_trace(synth::ActivityKind::Walking, 40.0, seed),
                      "walking"});
  examples.push_back({make_trace(synth::ActivityKind::Stepping, 40.0, seed + 1),
                      "stepping"});
  examples.push_back({make_trace(synth::ActivityKind::Eating, 40.0, seed + 2),
                      "eating"});
  examples.push_back({make_trace(synth::ActivityKind::Gaming, 40.0, seed + 3),
                      "gaming"});
  models::ScarClassifier clf;
  clf.fit(examples);
  return clf;
}

}  // namespace

TEST(ScarFeatures, FixedLength) {
  const imu::Trace t = make_trace(synth::ActivityKind::Walking, 4.0, 1);
  const auto f = models::scar_features(t.slice(0, 200));
  EXPECT_EQ(f.size(), models::scar_feature_count());
}

TEST(ScarFeatures, RequiresMinimumSamples) {
  const imu::Trace t = make_trace(synth::ActivityKind::Walking, 4.0, 2);
  EXPECT_THROW(models::scar_features(t.slice(0, 8)), InvalidArgument);
}

TEST(ScarFeatures, DifferentActivitiesDifferentFeatures) {
  const imu::Trace walk = make_trace(synth::ActivityKind::Walking, 4.0, 3);
  const imu::Trace idle = make_trace(synth::ActivityKind::Idle, 4.0, 4);
  const auto fw = models::scar_features(walk.slice(0, 256));
  const auto fi = models::scar_features(idle.slice(0, 256));
  double diff = 0.0;
  for (std::size_t i = 0; i < fw.size(); ++i) diff += std::abs(fw[i] - fi[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(ScarClassifier, ClassifiesTrainedActivities) {
  const auto clf = trained_classifier(100);
  const imu::Trace walk = make_trace(synth::ActivityKind::Walking, 20.0, 200);
  const imu::Trace eat = make_trace(synth::ActivityKind::Eating, 20.0, 201);
  int walk_hits = 0;
  int eat_hits = 0;
  int windows = 0;
  const std::size_t win = 200;
  for (std::size_t b = 0; b + win <= walk.size(); b += win) {
    ++windows;
    if (clf.classify(walk.slice(b, b + win)) == "walking") ++walk_hits;
  }
  EXPECT_GT(walk_hits * 2, windows);  // majority correct
  windows = 0;
  for (std::size_t b = 0; b + win <= eat.size(); b += win) {
    ++windows;
    if (clf.classify(eat.slice(b, b + win)) == "eating") ++eat_hits;
  }
  EXPECT_GT(eat_hits * 2, windows);
}

TEST(ScarClassifier, UntrainedThrows) {
  models::ScarClassifier clf;
  const imu::Trace t = make_trace(synth::ActivityKind::Walking, 4.0, 5);
  EXPECT_THROW(clf.classify(t.slice(0, 200)), InvalidArgument);
  EXPECT_FALSE(clf.trained());
}

TEST(ScarClassifier, ClassListMatchesTraining) {
  const auto clf = trained_classifier(101);
  const auto classes = clf.classes();
  EXPECT_EQ(classes.size(), 4u);
}

TEST(ScarCounter, CountsWalkingIgnoresTrainedInterference) {
  const auto clf = trained_classifier(102);
  models::ScarCounter counter(clf, {"walking", "stepping"});

  Rng rng(300);
  synth::UserProfile user;
  const auto walk = synth::synthesize(synth::Scenario::pure_walking(60.0),
                                      user, synth::SynthOptions{}, rng);
  const double truth = static_cast<double>(walk.truth.step_count());
  EXPECT_NEAR(static_cast<double>(counter.count_steps(walk.trace).count),
              truth, 0.12 * truth);

  const auto eat = synth::synthesize(
      synth::Scenario::interference(synth::ActivityKind::Eating, 60.0,
                                    synth::Posture::Standing),
      user, synth::SynthOptions{}, rng);
  EXPECT_LT(counter.count_steps(eat.trace).count, 6u);
}

TEST(ScarCounter, RequiresTrainedClassifierAndLabels) {
  models::ScarClassifier untrained;
  EXPECT_THROW(models::ScarCounter(untrained, {"walking"}), InvalidArgument);
  const auto clf = trained_classifier(103);
  EXPECT_THROW(models::ScarCounter(clf, {}), InvalidArgument);
}
