// Unit tests for the naive stride baselines of Fig. 1(d).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "models/stride_baselines.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult walking(std::uint64_t seed, double seconds = 60.0) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(synth::Scenario::pure_walking(seconds), user,
                           synth::SynthOptions{}, rng);
}

double mean_abs_error(const std::vector<models::StrideEstimate>& est,
                      const synth::GroundTruth& truth) {
  std::vector<double> errs;
  for (const auto& e : est) {
    double best = 1e9;
    double s = 0.0;
    for (const auto& st : truth.steps) {
      if (std::abs(st.t - e.t) < best) {
        best = std::abs(st.t - e.t);
        s = st.stride;
      }
    }
    if (best < 0.6) errs.push_back(std::abs(e.stride - s));
  }
  return errs.empty() ? -1.0 : stats::mean(errs);
}

}  // namespace

TEST(EmpiricalStride, ProducesPerStepEstimates) {
  const auto r = walking(41);
  models::EmpiricalStride est;
  const auto strides = est.estimate(r.trace);
  EXPECT_GT(strides.size(), 40u);
  for (const auto& s : strides) {
    EXPECT_GT(s.stride, 0.0);
    EXPECT_LT(s.stride, 3.0);
  }
}

TEST(EmpiricalStride, InvalidKThrows) {
  EXPECT_THROW(models::EmpiricalStride(0.0), InvalidArgument);
}

TEST(BiomechanicalStride, BiasedOnWrist) {
  // On the wrist the arm's vertical travel superposes on the body bounce
  // (largely cancelling it mid-swing), so the naive biomechanical readout
  // is strongly biased — the Fig. 1(d) motivation.
  const auto r = walking(42);
  synth::UserProfile user;
  models::BiomechanicalStride est(user.leg_length, 2.0);
  const auto strides = est.estimate(r.trace);
  ASSERT_GT(strides.size(), 20u);
  double acc = 0.0;
  for (const auto& s : strides) acc += s.stride;
  const double mean = acc / static_cast<double>(strides.size());
  EXPECT_GT(std::abs(mean - user.mean_stride()), 0.15 * user.mean_stride());
}

TEST(IntegralStride, WorseThanEmpirical) {
  // Fig. 1(d) ordering: the naive double integral is the worst model.
  const auto r = walking(43, 90.0);
  models::EmpiricalStride emp;
  models::IntegralStride integral;
  const double e_emp = mean_abs_error(emp.estimate(r.trace), r.truth);
  const double e_int = mean_abs_error(integral.estimate(r.trace), r.truth);
  ASSERT_GT(e_emp, 0.0);
  ASSERT_GT(e_int, 0.0);
  EXPECT_GT(e_int, e_emp);
}

TEST(AllBaselines, EmptyOnTinyTrace) {
  const auto r = walking(44, 30.0);
  const imu::Trace tiny = r.trace.slice(0, 8);
  models::EmpiricalStride emp;
  models::IntegralStride integral;
  synth::UserProfile user;
  models::BiomechanicalStride bio(user.leg_length, 2.0);
  EXPECT_TRUE(emp.estimate(tiny).empty());
  EXPECT_TRUE(integral.estimate(tiny).empty());
  EXPECT_TRUE(bio.estimate(tiny).empty());
}

TEST(AllBaselines, NamesAreStable) {
  models::EmpiricalStride emp;
  models::IntegralStride integral;
  synth::UserProfile user;
  models::BiomechanicalStride bio(user.leg_length, 2.0);
  EXPECT_EQ(emp.name(), "Empirical");
  EXPECT_EQ(bio.name(), "Biomechanical");
  EXPECT_EQ(integral.name(), "Integral");
}
