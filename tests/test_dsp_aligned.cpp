// Contracts of the aligned DSP scratch storage (dsp/aligned.hpp) and the
// SIMD dispatcher's ISA clamping (dsp/simd.hpp force_isa): alignment is a
// performance promise the allocator must actually deliver, and forcing an
// ISA the CPU lacks must select the scalar fallback, never an illegal
// instruction path.

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "dsp/aligned.hpp"
#include "dsp/simd.hpp"

using namespace ptrack;

namespace {

bool aligned_to(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

}  // namespace

TEST(AlignedAllocator, DeliversRequestedAlignment) {
  dsp::AlignedVector<double> v(1, 0.0);
  for (std::size_t n : {1u, 3u, 64u, 1000u, 4097u}) {
    v.assign(n, 1.5);
    ASSERT_TRUE(aligned_to(v.data(), 64)) << "n = " << n;
    EXPECT_EQ(v.back(), 1.5);
  }
  // A non-default alignment parameter is honored too.
  std::vector<float, dsp::AlignedAllocator<float, 128>> w(33, 2.0F);
  EXPECT_TRUE(aligned_to(w.data(), 128));
}

TEST(AlignedAllocator, RebindPreservesAlignment) {
  using A = dsp::AlignedAllocator<double, 64>;
  using R = A::rebind<float>::other;
  static_assert(std::is_same_v<R, dsp::AlignedAllocator<float, 64>>);
  // Rebound copies compare equal (stateless allocator family).
  A a;
  R r(a);
  EXPECT_TRUE(r == R{});
  float* p = r.allocate(17);
  EXPECT_TRUE(aligned_to(p, 64));
  r.deallocate(p, 17);
}

TEST(AlignedAllocator, MovePropagatesStorage) {
  dsp::AlignedVector<double> src(257, 3.25);
  const double* data = src.data();
  dsp::AlignedVector<double> dst = std::move(src);
  // Stateless equal allocators: the move steals the buffer outright.
  EXPECT_EQ(dst.data(), data);
  EXPECT_EQ(dst.size(), 257u);
  EXPECT_EQ(dst[0], 3.25);
  EXPECT_TRUE(aligned_to(dst.data(), 64));
}

TEST(SimdDispatch, ForcingALackingIsaFallsBackToScalar) {
  const dsp::simd::Isa det = dsp::simd::detected();
  for (const dsp::simd::Isa isa :
       {dsp::simd::Isa::kAvx2, dsp::simd::Isa::kNeon}) {
    if (isa == det) continue;  // this CPU supports it; nothing to reject
    dsp::simd::force_isa(isa);
    EXPECT_EQ(dsp::simd::active(), dsp::simd::Isa::kScalar)
        << "forcing " << dsp::simd::isa_name(isa)
        << " on a CPU that lacks it must clamp to the scalar fallback";
  }
  dsp::simd::force_isa(det);  // restore for any later test in this binary
  EXPECT_EQ(dsp::simd::active(), det);
}

TEST(SimdDispatch, ForcingScalarAlwaysWorks) {
  const dsp::simd::Isa det = dsp::simd::detected();
  dsp::simd::force_isa(dsp::simd::Isa::kScalar);
  EXPECT_EQ(dsp::simd::active(), dsp::simd::Isa::kScalar);
  dsp::simd::force_isa(det);
  EXPECT_EQ(dsp::simd::active(), det);
}
