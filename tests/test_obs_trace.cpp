// Tests for the span tracer and Chrome-trace export: balanced B/E pairs
// (single- and multi-threaded), the runtime kill switch, and the
// end-to-end guarantee that a pipeline run leaves matched stage spans and
// a populated TrackResult::timing block. Everything that depends on
// instrumentation actually being compiled in is gated on
// PTRACK_OBS_ENABLED so the suite also passes under -DPTRACK_OBS=OFF
// (where the export must still emit a valid, empty document).

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "core/ptrack.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

json::Value exported_trace() {
  std::ostringstream os;
  obs::write_chrome_trace(os);
  return json::parse(os.str());
}

/// Walks the trace events and checks per-tid stack balance (E matches the
/// innermost open B by name; nothing left open). Returns the number of
/// closed spans per name.
std::map<std::string, std::size_t> balanced_span_counts(
    const json::Value& doc) {
  std::map<double, std::vector<std::string>> stacks;
  std::map<std::string, std::size_t> closed;
  for (const json::Value& e : doc.at("traceEvents").items()) {
    const std::string& ph = e.at("ph").as_string();
    const std::string& name = e.at("name").as_string();
    const double tid = e.at("tid").as_number();
    EXPECT_GE(e.at("ts").as_number(), 0.0);
    auto& stack = stacks[tid];
    if (ph == "B") {
      stack.push_back(name);
    } else {
      EXPECT_EQ(ph, "E");
      EXPECT_FALSE(stack.empty()) << "stray E for " << name;
      if (stack.empty()) return closed;
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
      ++closed[name];
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left a span open";
  }
  return closed;
}

}  // namespace

TEST(ObsTrace, ExportIsValidWhenEmpty) {
  obs::reset_trace();
  const json::Value doc = exported_trace();
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  EXPECT_TRUE(doc.at("traceEvents").items().empty());
}

TEST(ObsTrace, NestedSpansBalance) {
  obs::set_enabled(true);
  obs::reset_trace();
  {
    PTRACK_OBS_SPAN("test.outer");
    { PTRACK_OBS_SPAN("test.inner"); }
    { PTRACK_OBS_SPAN("test.inner"); }
  }
  const auto closed = balanced_span_counts(exported_trace());
#if PTRACK_OBS_ENABLED
  EXPECT_EQ(closed.at("test.outer"), 1u);
  EXPECT_EQ(closed.at("test.inner"), 2u);
#else
  EXPECT_TRUE(closed.empty());
#endif
}

TEST(ObsTrace, ThreadsGetSeparateBalancedRings) {
  obs::set_enabled(true);
  obs::reset_trace();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        PTRACK_OBS_SPAN("test.worker");
        PTRACK_OBS_SPAN("test.worker_inner");
      }
    });
  }
  for (auto& t : threads) t.join();

  const json::Value doc = exported_trace();
  const auto closed = balanced_span_counts(doc);
#if PTRACK_OBS_ENABLED
  EXPECT_EQ(closed.at("test.worker"), kThreads * kSpansPerThread);
  EXPECT_EQ(closed.at("test.worker_inner"), kThreads * kSpansPerThread);
  // Spans from different threads land on different tids.
  std::map<double, bool> tids;
  for (const json::Value& e : doc.at("traceEvents").items()) {
    tids[e.at("tid").as_number()] = true;
  }
  EXPECT_GE(tids.size(), kThreads);
#endif
}

TEST(ObsTrace, KillSwitchSuppressesRecording) {
  obs::set_enabled(true);
  obs::reset_trace();
  obs::set_enabled(false);
  { PTRACK_OBS_SPAN("test.suppressed"); }
  obs::set_enabled(true);
  const auto closed = balanced_span_counts(exported_trace());
  EXPECT_EQ(closed.count("test.suppressed"), 0u);
}

TEST(ObsTrace, SpanOpenAcrossDisableStillBalances) {
  obs::set_enabled(true);
  obs::reset_trace();
  {
    PTRACK_OBS_SPAN("test.toggled");
    obs::set_enabled(false);  // span was recording at construction
  }
  obs::set_enabled(true);
  const auto closed = balanced_span_counts(exported_trace());
#if PTRACK_OBS_ENABLED
  EXPECT_EQ(closed.at("test.toggled"), 1u);
#endif
}

TEST(ObsTrace, PipelineRunLeavesStageSpansAndTiming) {
  obs::set_enabled(true);
  obs::reset_trace();

  Rng rng(901);
  synth::UserProfile user;
  const auto synth_result = synth::synthesize(
      synth::Scenario::pure_walking(30.0), user, synth::SynthOptions{}, rng);
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  const core::PTrack tracker(cfg);
  const core::TrackResult result = tracker.process(synth_result.trace);
  ASSERT_GT(result.steps, 0u);

  const auto closed = balanced_span_counts(exported_trace());
#if PTRACK_OBS_ENABLED
  EXPECT_GE(closed.at("ptrack.core.process"), 1u);
  EXPECT_GE(closed.at("ptrack.core.project"), 1u);
  EXPECT_GE(closed.at("ptrack.core.count"), 1u);
  EXPECT_GE(closed.at("ptrack.imu.quality"), 1u);

  EXPECT_GT(result.timing.quality_us, 0.0);
  EXPECT_GT(result.timing.project_us, 0.0);
  EXPECT_GT(result.timing.count_us, 0.0);
  EXPECT_GE(result.timing.stride_us, 0.0);
  EXPECT_GE(result.timing.total_us,
            result.timing.project_us + result.timing.count_us);
#else
  EXPECT_TRUE(closed.empty());
  EXPECT_DOUBLE_EQ(result.timing.total_us, 0.0);
#endif
}
