// Property-style parameterized suites: invariants that must hold across
// random users, activities, speeds and sensor qualities.

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "core/bounce.hpp"
#include "core/ptrack.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/integrate.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

// ---------------------------------------------------------------------------
// Counting invariants across random users.

class UserSweep : public ::testing::TestWithParam<int> {};

TEST_P(UserSweep, WalkingAccuracyFloor) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const synth::UserProfile user = synth::random_user(rng);
  const auto r = synth::synthesize(synth::Scenario::pure_walking(60.0), user,
                                   synth::SynthOptions{}, rng);
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack tracker(cfg);
  const auto res = tracker.process(r.trace);
  const double truth = static_cast<double>(r.truth.step_count());
  const double err = std::abs(static_cast<double>(res.steps) - truth) / truth;
  EXPECT_LT(err, 0.30) << "user " << GetParam();
}

TEST_P(UserSweep, SteppingAccuracyFloor) {
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const synth::UserProfile user = synth::random_user(rng);
  const auto r = synth::synthesize(synth::Scenario::pure_stepping(60.0), user,
                                   synth::SynthOptions{}, rng);
  core::PTrack tracker;
  const auto res = tracker.process(r.trace);
  const double truth = static_cast<double>(r.truth.step_count());
  const double err = std::abs(static_cast<double>(res.steps) - truth) / truth;
  EXPECT_LT(err, 0.10) << "user " << GetParam();
}

TEST_P(UserSweep, SpooferAlwaysRejected) {
  Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const synth::UserProfile user = synth::random_user(rng);
  const auto r = synth::synthesize(
      synth::Scenario::interference(synth::ActivityKind::Spoofer, 60.0,
                                    synth::Posture::Standing),
      user, synth::SynthOptions{}, rng);
  core::PTrack tracker;
  EXPECT_LE(tracker.process(r.trace).steps, 2u) << "user " << GetParam();
}

TEST_P(UserSweep, InterferenceMiscountBound) {
  Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const synth::UserProfile user = synth::random_user(rng);
  core::PTrack tracker;
  for (auto kind : {synth::ActivityKind::Eating, synth::ActivityKind::Poker,
                    synth::ActivityKind::Gaming}) {
    const auto r = synth::synthesize(
        synth::Scenario::interference(kind, 60.0, synth::Posture::Standing),
        user, synth::SynthOptions{}, rng);
    EXPECT_LE(tracker.process(r.trace).steps, 8u)
        << "user " << GetParam() << " " << to_string(kind);
  }
}

TEST_P(UserSweep, StrideErrorFloor) {
  Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  const synth::UserProfile user = synth::random_user(rng);
  const auto r = synth::synthesize(synth::Scenario::pure_walking(60.0), user,
                                   synth::SynthOptions{}, rng);
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack tracker(cfg);
  const auto res = tracker.process(r.trace);
  std::vector<double> errs;
  for (const core::StepEvent& e : res.events) {
    if (e.stride <= 0.0) continue;
    double best = 1e9;
    double s = 0.0;
    for (const auto& st : r.truth.steps) {
      if (std::abs(st.t - e.t) < best) {
        best = std::abs(st.t - e.t);
        s = st.stride;
      }
    }
    if (best < 0.6) errs.push_back(std::abs(e.stride - s));
  }
  ASSERT_GT(errs.size(), 20u);
  EXPECT_LT(stats::mean(errs), 0.20) << "user " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomUsers, UserSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Counting degrades gracefully with sensor noise.

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, WalkingAccuracySurvivesNoise) {
  Rng rng(31);
  const synth::UserProfile user = synth::random_user(rng);
  synth::SynthOptions opt;
  opt.noise.accel_noise_stddev *= GetParam();
  opt.noise.accel_bias_stddev *= GetParam();
  const auto r = synth::synthesize(synth::Scenario::pure_walking(60.0), user,
                                   opt, rng);
  core::PTrack tracker;
  const double truth = static_cast<double>(r.truth.step_count());
  const double counted = static_cast<double>(tracker.process(r.trace).steps);
  EXPECT_LT(std::abs(counted - truth) / truth, 0.25)
      << "noise scale " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Scales, NoiseSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 3.0));

// ---------------------------------------------------------------------------
// Walking speed sweep: counting works across the usable speed range.

class SpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpeedSweep, CountingAcrossSpeeds) {
  Rng rng(47);
  synth::UserProfile user;  // default user, speed overridden per segment
  synth::Scenario scenario;
  scenario.walk(60.0, GetParam());
  const auto r =
      synth::synthesize(scenario, user, synth::SynthOptions{}, rng);
  core::PTrack tracker;
  const double truth = static_cast<double>(r.truth.step_count());
  ASSERT_GT(truth, 50.0);
  const double counted = static_cast<double>(tracker.process(r.trace).steps);
  EXPECT_LT(std::abs(counted - truth) / truth, 0.2)
      << "speed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Speeds, SpeedSweep,
                         ::testing::Values(1.0, 1.2, 1.4, 1.6));

// ---------------------------------------------------------------------------
// Bounce solver round-trip property over a randomized geometry grid.

class BounceRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BounceRoundTrip, ForwardInverse) {
  Rng rng(600 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const double m = rng.uniform(0.55, 0.9);
    const double b = rng.uniform(0.02, 0.12);
    const double t1 = rng.uniform(0.2, 0.55);
    const double t2 = rng.uniform(0.2, 0.55);
    const double r1 = m * (1.0 - std::cos(t1));
    const double r2 = m * (1.0 - std::cos(t2));
    const double h1 = r1 - b;
    const double h2 = r2 - b;
    const double d = m * (std::sin(t1) + std::sin(t2));
    const auto sol = core::solve_bounce(h1, h2, d, m);
    ASSERT_TRUE(sol.valid);
    EXPECT_NEAR(sol.bounce, b, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BounceRoundTrip, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// DSP invariants under random signals.

class DspProperty : public ::testing::TestWithParam<int> {};

TEST_P(DspProperty, FiltfiltIsZeroPhaseForBandLimitedSignals) {
  Rng rng(700 + static_cast<std::uint64_t>(GetParam()));
  const double fs = 100.0;
  const double freq = rng.uniform(0.5, 2.0);
  std::vector<double> xs(600);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2 * M_PI * freq * static_cast<double>(i) / fs);
  }
  const auto ys = dsp::zero_phase_lowpass(xs, 5.0, fs, 4);
  // Cross-correlation at zero lag dominates shifted variants: no phase lag.
  double dot0 = 0.0;
  double dot_fwd = 0.0;
  double dot_bwd = 0.0;
  for (std::size_t i = 100; i + 106 < xs.size(); ++i) {
    dot0 += xs[i] * ys[i];
    dot_fwd += xs[i] * ys[i + 5];
    dot_bwd += xs[i + 5] * ys[i];
  }
  EXPECT_GE(dot0, dot_fwd - 1e-9);
  EXPECT_GE(dot0, dot_bwd - 1e-9);
}

TEST_P(DspProperty, MeanRemovalBeatsNaiveUnderBias) {
  Rng rng(800 + static_cast<std::uint64_t>(GetParam()));
  const double fs = 100.0;
  const double T = rng.uniform(0.5, 0.8);
  const double v_peak = rng.uniform(0.5, 2.0);
  const double bias = rng.uniform(0.3, 0.6);
  const auto n = static_cast<std::size_t>(T * fs);
  std::vector<double> accel(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    accel[i] = v_peak * M_PI / T * std::cos(M_PI * t / T) + bias;
  }
  const double truth = v_peak * 2.0 * T / M_PI;
  const double naive = dsp::integrate_twice(accel, 1.0 / fs).position.back();
  const double corrected = dsp::net_displacement(accel, 1.0 / fs);
  EXPECT_LT(std::abs(corrected - truth), std::abs(naive - truth));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DspProperty, ::testing::Range(0, 6));
