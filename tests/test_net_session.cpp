// Session state-machine tests, no sockets involved: bytes in, frames out.
// Covers the HELLO handshake, protocol-order violations, HELLO validation,
// malformed-frame containment, the BYE/drain flush, and the central oracle
// property — a session's event stream is bit-identical (at wire precision)
// to a local StreamingTracker fed the same samples.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/streaming.hpp"
#include "net/session.hpp"
#include "net/wire.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;
using namespace ptrack::net;

namespace {

imu::Trace walking_trace(double seconds, std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(synth::Scenario::pure_walking(seconds), user,
                           synth::SynthOptions{}, rng)
      .trace;
}

/// Decodes every frame a session has queued, consuming out() as a real
/// server write path would.
struct OutReader {
  std::vector<Frame> frames;
  std::vector<std::vector<std::uint8_t>> payload_copies;
  FrameDecoder decoder;

  void pull(Session& session) {
    while (session.out_pending() > 0) {
      const std::span<const std::uint8_t> pending = session.out();
      decoder.feed(pending);
      session.consume_out(pending.size());
      Frame frame;
      while (decoder.next(frame) == DecodeStatus::kFrame) {
        // Copy the payload: the decoder buffer is reused across pulls.
        payload_copies.emplace_back(frame.payload.begin(),
                                    frame.payload.end());
        frames.push_back(
            Frame{frame.type, std::span<const std::uint8_t>(
                                  payload_copies.back())});
      }
      EXPECT_EQ(decoder.error(), ErrorCode::kNone);
    }
  }
};

Session::IoResult feed(Session& session,
                       const std::vector<std::uint8_t>& bytes,
                       std::size_t chunk = 4096) {
  Session::IoResult r = Session::IoResult::kOk;
  for (std::size_t i = 0; i < bytes.size(); i += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - i);
    r = session.on_bytes({bytes.data() + i, n});
  }
  return r;
}

std::vector<std::uint8_t> hello_bytes(std::uint64_t id, double fs,
                                      std::uint8_t precision = 0) {
  std::vector<std::uint8_t> out;
  append_hello(out, Hello{id, fs, precision});
  return out;
}

WireError expect_single_error(Session& session) {
  OutReader reader;
  reader.pull(session);
  WireError err;
  bool found = false;
  for (const Frame& f : reader.frames) {
    if (f.type == FrameType::kError) {
      EXPECT_FALSE(found) << "more than one ERROR frame";
      EXPECT_TRUE(parse_error(f.payload, err));
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no ERROR frame queued";
  return err;
}

}  // namespace

TEST(NetSession, HelloHandshake) {
  Session session{SessionConfig{}};
  EXPECT_EQ(session.state(), Session::State::kAwaitHello);
  EXPECT_FALSE(session.hello_done());

  EXPECT_EQ(feed(session, hello_bytes(77, 104.0)), Session::IoResult::kOk);
  EXPECT_EQ(session.state(), Session::State::kStreaming);
  EXPECT_TRUE(session.hello_done());
  EXPECT_EQ(session.id(), 77u);
  EXPECT_DOUBLE_EQ(session.fs(), 104.0);

  OutReader reader;
  reader.pull(session);
  ASSERT_EQ(reader.frames.size(), 1u);
  EXPECT_EQ(reader.frames[0].type, FrameType::kHelloAck);
  HelloAck ack;
  ASSERT_TRUE(parse_hello_ack(reader.frames[0].payload, ack));
  EXPECT_EQ(ack.session_id, 77u);
  EXPECT_EQ(ack.version, static_cast<std::uint32_t>(kProtocolVersion));
  EXPECT_EQ(session.counters().frames_ok, 1u);
}

TEST(NetSession, SamplesBeforeHelloRejected) {
  Session session{SessionConfig{}};
  std::vector<std::uint8_t> bytes;
  const std::vector<imu::Sample> samples(4);
  append_samples(bytes, samples);
  EXPECT_EQ(feed(session, bytes), Session::IoResult::kClose);
  EXPECT_EQ(session.state(), Session::State::kClosing);
  EXPECT_EQ(expect_single_error(session).code, ErrorCode::kProtocol);
  EXPECT_EQ(session.counters().frames_rejected, 1u);
}

TEST(NetSession, ReHelloRejected) {
  Session session{SessionConfig{}};
  EXPECT_EQ(feed(session, hello_bytes(1, 100.0)), Session::IoResult::kOk);
  // The fs-mismatch renegotiation attempt: second HELLO, different rate.
  EXPECT_EQ(feed(session, hello_bytes(1, 200.0)),
            Session::IoResult::kClose);
  EXPECT_EQ(expect_single_error(session).code, ErrorCode::kProtocol);
}

TEST(NetSession, HelloValidation) {
  {  // fs out of range
    Session session{SessionConfig{}};
    EXPECT_EQ(feed(session, hello_bytes(1, 1e9)), Session::IoResult::kClose);
    EXPECT_EQ(expect_single_error(session).code, ErrorCode::kBadHello);
  }
  {  // NaN fs
    Session session{SessionConfig{}};
    EXPECT_EQ(feed(session, hello_bytes(1, std::nan(""))),
              Session::IoResult::kClose);
    EXPECT_EQ(expect_single_error(session).code, ErrorCode::kBadHello);
  }
  {  // unknown precision
    Session session{SessionConfig{}};
    EXPECT_EQ(feed(session, hello_bytes(1, 100.0, 7)),
              Session::IoResult::kClose);
    EXPECT_EQ(expect_single_error(session).code, ErrorCode::kBadHello);
  }
  {  // f32 disabled by policy
    SessionConfig cfg;
    cfg.allow_f32 = false;
    Session session{cfg};
    EXPECT_EQ(feed(session, hello_bytes(1, 100.0, 1)),
              Session::IoResult::kClose);
    EXPECT_EQ(expect_single_error(session).code, ErrorCode::kBadHello);
  }
}

TEST(NetSession, MalformedFrameClosesWithError) {
  Session session{SessionConfig{}};
  std::vector<std::uint8_t> bytes = hello_bytes(5, 100.0);
  bytes[0] ^= 0xFF;  // corrupt the magic
  EXPECT_EQ(feed(session, bytes), Session::IoResult::kClose);
  EXPECT_EQ(expect_single_error(session).code, ErrorCode::kBadMagic);
  EXPECT_EQ(session.counters().frames_rejected, 1u);
  // Poisoned for good: further bytes don't reopen it.
  EXPECT_EQ(feed(session, hello_bytes(5, 100.0)),
            Session::IoResult::kClose);
}

TEST(NetSession, OversizedSampleCountRejected) {
  SessionConfig cfg;
  cfg.max_samples_per_frame = 16;
  Session session{cfg};
  EXPECT_EQ(feed(session, hello_bytes(5, 100.0)), Session::IoResult::kOk);
  std::vector<std::uint8_t> bytes;
  const std::vector<imu::Sample> samples(17);  // one past the policy bound
  append_samples(bytes, samples);
  EXPECT_EQ(feed(session, bytes), Session::IoResult::kClose);
  EXPECT_EQ(expect_single_error(session).code, ErrorCode::kMalformedFrame);
}

TEST(NetSession, EventsMatchLocalTrackerOracle) {
  const imu::Trace trace = walking_trace(30.0, 901);

  SessionConfig cfg;
  Session session{cfg};
  OutReader reader;
  ASSERT_EQ(feed(session, hello_bytes(11, trace.fs())),
            Session::IoResult::kOk);
  std::vector<std::uint8_t> bytes;
  std::size_t i = 0;
  while (i < trace.size()) {
    const std::size_t n = std::min<std::size_t>(256, trace.size() - i);
    bytes.clear();
    append_samples(bytes, std::span<const imu::Sample>(
                              trace.samples().data() + i, n));
    // Uneven chunking through the decoder: reassembly must be seamless.
    ASSERT_EQ(feed(session, bytes, 1000), Session::IoResult::kOk);
    reader.pull(session);
    i += n;
  }
  bytes.clear();
  append_bye(bytes);
  EXPECT_EQ(feed(session, bytes), Session::IoResult::kClose);
  reader.pull(session);

  std::vector<core::StepEvent> wire_events;
  Drained drained;
  bool drained_seen = false;
  for (const Frame& f : reader.frames) {
    if (f.type == FrameType::kEvent) {
      ASSERT_TRUE(parse_events(f.payload, wire_events));
    } else if (f.type == FrameType::kDrained) {
      ASSERT_TRUE(parse_drained(f.payload, drained));
      drained_seen = true;
    }
  }
  ASSERT_TRUE(drained_seen);
  EXPECT_EQ(drained.samples_total, trace.size());
  EXPECT_EQ(drained.events_total, wire_events.size());

  // Oracle: the same pipeline fed locally. The wire carries t/stride as
  // f64 (exact) and quality as f32 (rounded) — compare at wire precision.
  core::StreamingTracker oracle(trace.fs(), cfg.streaming);
  for (const imu::Sample& s : trace.samples()) oracle.push(s);
  std::vector<core::StepEvent> expected;
  oracle.drain_into(expected);

  ASSERT_EQ(wire_events.size(), expected.size());
  ASSERT_GT(wire_events.size(), 20u);  // ~55 steps in 30 s of walking
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(wire_events[k].t, expected[k].t);
    EXPECT_EQ(wire_events[k].stride, expected[k].stride);
    EXPECT_EQ(static_cast<float>(wire_events[k].quality),
              static_cast<float>(expected[k].quality));
    EXPECT_EQ(wire_events[k].type, expected[k].type);
    EXPECT_EQ(wire_events[k].degraded, expected[k].degraded);
  }
  EXPECT_EQ(session.counters().samples, trace.size());
  EXPECT_EQ(session.counters().events, expected.size());
}

TEST(NetSession, RejectReplacesQueuedOutput) {
  Session session{SessionConfig{}};
  EXPECT_EQ(feed(session, hello_bytes(3, 100.0)), Session::IoResult::kOk);
  EXPECT_GT(session.out_pending(), 0u);  // the HELLO_ACK
  session.reject(ErrorCode::kSlowConsumer, 0, "too slow");
  const WireError err = expect_single_error(session);
  EXPECT_EQ(err.code, ErrorCode::kSlowConsumer);
  EXPECT_EQ(session.state(), Session::State::kClosing);
}

TEST(NetSession, DrainWithoutHelloJustCloses) {
  Session session{SessionConfig{}};
  session.drain();
  EXPECT_EQ(session.state(), Session::State::kClosing);
  EXPECT_EQ(session.out_pending(), 0u);  // nothing to flush, nothing sent
}

TEST(NetSession, MemoryEstimateGrowsWithRate) {
  const SessionConfig cfg;
  const std::size_t slow = session_memory_estimate(cfg, 25.0);
  const std::size_t fast = session_memory_estimate(cfg, 800.0);
  EXPECT_GT(fast, slow);
  Session session{cfg};
  const std::size_t pre_hello = session.memory_estimate();
  ASSERT_EQ(feed(session, hello_bytes(1, 800.0)), Session::IoResult::kOk);
  EXPECT_GT(session.memory_estimate(), pre_hello);
  EXPECT_EQ(session.memory_estimate(), fast);
}
