// Kernel-equivalence tests: the FFT (Wiener-Khinchin) correlation kernels
// must agree with the direct lag-loop oracles to ~1e-9 across signal sizes
// (including non-powers-of-two) and lag ranges (including lag >= n/2), and
// the dispatching entry points must be consistent with both.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/rng.hpp"
#include "dsp/correlate.hpp"
#include "dsp/workspace.hpp"

using namespace ptrack;

namespace {

constexpr double kTol = 1e-9;

std::vector<double> random_signal(std::size_t n, Rng& rng) {
  std::vector<double> xs(n);
  // A gait-like mix: tone + drift + noise, so the correlation structure is
  // nontrivial at every lag.
  const double freq = rng.uniform(0.5, 4.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 100.0;
    xs[i] = std::sin(kTwoPi * freq * t) + 0.3 * t + rng.normal(0.0, 0.5);
  }
  return xs;
}

void expect_close(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], kTol) << "index " << i;
  }
}

}  // namespace

TEST(AutocorrFft, MatchesNaiveAcrossSizesAndLags) {
  Rng rng(0xac0ffee);
  dsp::Workspace ws;
  // Sizes include powers of two and awkward odd/non-pow2 lengths.
  for (std::size_t n : {33u, 100u, 255u, 256u, 1000u, 4097u}) {
    const auto xs = random_signal(n, rng);
    // Lag ranges include tiny, half-signal and the n-1 extreme.
    for (std::size_t max_lag :
         {std::size_t{1}, n / 4, n / 2, (3 * n) / 4, n - 1}) {
      const auto naive = dsp::autocorr_naive(xs, max_lag);
      const auto fft = dsp::autocorr_fft(xs, max_lag, ws);
      expect_close(naive, fft);
    }
  }
}

TEST(AutocorrFft, DispatchAgreesWithOracleOnLongTrace) {
  Rng rng(0xdeba7e);
  const auto xs = random_signal(6000, rng);  // 60 s at 100 Hz
  const auto via_dispatch = dsp::autocorr(xs, 200);  // FFT regime
  const auto naive = dsp::autocorr_naive(xs, 200);
  expect_close(naive, via_dispatch);
}

TEST(AutocorrFft, ConstantSignalIsAllZeros) {
  dsp::Workspace ws;
  const std::vector<double> xs(300, 7.5);
  const auto fft = dsp::autocorr_fft(xs, 150, ws);
  const auto naive = dsp::autocorr_naive(xs, 150);
  for (std::size_t i = 0; i < fft.size(); ++i) {
    EXPECT_DOUBLE_EQ(fft[i], 0.0);
    EXPECT_DOUBLE_EQ(naive[i], 0.0);
  }
}

TEST(AutocorrFft, PeriodicSignalScoresOneAtPeriod) {
  dsp::Workspace ws;
  std::vector<double> xs(800);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(kTwoPi * static_cast<double>(i) / 50.0);
  }
  const auto ac = dsp::autocorr_fft(xs, 400, ws);
  EXPECT_NEAR(ac[50], 1.0, 0.05);
  EXPECT_NEAR(ac[25], -1.0, 0.05);
  EXPECT_NEAR(ac[0], 1.0, kTol);
}

TEST(AutocorrFft, BoundsChecked) {
  dsp::Workspace ws;
  const std::vector<double> xs(16, 1.0);
  EXPECT_THROW(dsp::autocorr_fft(xs, 16, ws), InvalidArgument);
  EXPECT_THROW(dsp::autocorr_naive(xs, 16), InvalidArgument);
}

TEST(XcorrFft, MatchesNaiveAcrossSizesAndLags) {
  Rng rng(0xcafe);
  dsp::Workspace ws;
  for (std::size_t n : {33u, 100u, 257u, 1000u}) {
    const auto a = random_signal(n, rng);
    const auto b = random_signal(n, rng);
    for (std::size_t max_lag : {std::size_t{1}, n / 4, n / 2, n - 1}) {
      const auto naive = dsp::xcorr_naive(a, b, max_lag);
      const auto fft = dsp::xcorr_fft(a, b, max_lag, ws);
      expect_close(naive, fft);
    }
  }
}

TEST(XcorrFft, DispatchAgreesWithOracleOnLongTrace) {
  Rng rng(0xf00d);
  const auto a = random_signal(3000, rng);
  const auto b = random_signal(3000, rng);
  const auto via_dispatch = dsp::xcorr(a, b, 300);  // FFT regime
  const auto naive = dsp::xcorr_naive(a, b, 300);
  expect_close(naive, via_dispatch);
}

TEST(XcorrFft, FindsKnownLagOnLongSignals) {
  // Long enough that the dispatcher takes the FFT path inside best_lag.
  std::vector<double> a(4000);
  std::vector<double> b(4000);
  const double period = 200.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(kTwoPi * static_cast<double>(i) / period);
    b[i] = std::sin(kTwoPi * (static_cast<double>(i) - 50.0) / period);
  }
  EXPECT_NEAR(dsp::best_lag(a, b, 100), 50, 1);
}

TEST(XcorrFft, ZeroSignalYieldsZeros) {
  dsp::Workspace ws;
  const std::vector<double> a(200, 3.0);  // constant -> zero after demean
  std::vector<double> b(200);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = std::sin(0.1 * static_cast<double>(i));
  }
  const auto c = dsp::xcorr_fft(a, b, 100, ws);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DominantPeriod, FftAndNaivePickTheSamePeriod) {
  Rng rng(0xbead);
  dsp::Workspace ws;
  std::vector<double> xs(4096);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(kTwoPi * static_cast<double>(i) / 110.0) +
            rng.normal(0.0, 0.2);
  }
  // Workspace overload (FFT regime) and the default entry point must agree;
  // the window [50, 160] excludes the period's harmonics, so the true
  // period must win.
  const std::size_t via_ws = dsp::dominant_period(xs, 50, 160, ws);
  const std::size_t via_default = dsp::dominant_period(xs, 50, 160);
  EXPECT_EQ(via_ws, via_default);
  EXPECT_EQ(via_ws, 110u);
}

TEST(Workspace, ReuseAcrossSizesIsConsistent) {
  // Interleave different transform sizes through one workspace: cached
  // plans and resized scratch must not leak state between calls.
  Rng rng(0x5eed);
  dsp::Workspace ws;
  const auto small = random_signal(300, rng);
  const auto large = random_signal(5000, rng);

  const auto small_first = dsp::autocorr_fft(small, 150, ws);
  const auto large_first = dsp::autocorr_fft(large, 400, ws);
  const auto small_again = dsp::autocorr_fft(small, 150, ws);
  const auto large_again = dsp::autocorr_fft(large, 400, ws);

  ASSERT_EQ(small_first.size(), small_again.size());
  for (std::size_t i = 0; i < small_first.size(); ++i) {
    EXPECT_DOUBLE_EQ(small_first[i], small_again[i]);
  }
  ASSERT_EQ(large_first.size(), large_again.size());
  for (std::size_t i = 0; i < large_first.size(); ++i) {
    EXPECT_DOUBLE_EQ(large_first[i], large_again[i]);
  }
}
