// Expected<T, E> tests: the result-or-error carrier used by the
// fault-isolated batch runtime. Misuse (reading the wrong alternative)
// must throw, not UB.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/expected.hpp"

using namespace ptrack;

namespace {

struct Err {
  std::string message;
};

using IntOrErr = Expected<int, Err>;

}  // namespace

TEST(Expected, HoldsValue) {
  IntOrErr e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(-1), 42);
}

TEST(Expected, HoldsError) {
  IntOrErr e = make_unexpected(Err{"boom"});
  ASSERT_FALSE(e.has_value());
  EXPECT_FALSE(static_cast<bool>(e));
  EXPECT_EQ(e.error().message, "boom");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, WrongAlternativeThrows) {
  IntOrErr ok(7);
  IntOrErr bad = make_unexpected(Err{"x"});
  EXPECT_THROW(static_cast<void>(ok.error()), Error);
  EXPECT_THROW(static_cast<void>(bad.value()), Error);
  EXPECT_THROW(static_cast<void>(*bad), Error);
}

TEST(Expected, DefaultConstructsToSuccess) {
  // The batch runner sizes its result vector up front and fills slots from
  // worker threads; a default slot must be a (default) success, not a trap.
  std::vector<IntOrErr> results(4);
  for (const auto& r : results) {
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 0);
  }
  results[2] = make_unexpected(Err{"slot 2"});
  EXPECT_TRUE(results[1].has_value());
  EXPECT_FALSE(results[2].has_value());
  EXPECT_EQ(results[2].error().message, "slot 2");
}

TEST(Expected, MutableAccessAndMove) {
  IntOrErr e(5);
  e.value() = 9;
  EXPECT_EQ(*e, 9);

  Expected<std::string, Err> s(std::string("payload"));
  const std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "payload");

  Expected<std::string, Err> err = make_unexpected(Err{"e"});
  err.error().message = "edited";
  EXPECT_EQ(err.error().message, "edited");
}
