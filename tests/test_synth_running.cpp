// Tests for the Running gait variant (the paper treats jogging/running as
// walking variants for identification purposes).

#include <gtest/gtest.h>

#include "core/ptrack.hpp"
#include "synth/gait_generator.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

core::PTrackConfig run_tuned(const synth::UserProfile& user) {
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  // Running cadences reach ~2.8 steps/s; relax the walking-tuned
  // refractory interval accordingly.
  cfg.counter.min_step_interval_s = 0.25;
  return cfg;
}

}  // namespace

TEST(Running, IsGait) {
  EXPECT_TRUE(synth::is_gait(synth::ActivityKind::Running));
  EXPECT_EQ(synth::to_string(synth::ActivityKind::Running), "running");
}

TEST(Running, FasterAndLongerThanWalking) {
  synth::UserProfile user;
  Rng rng(601);
  const auto run = synth::synthesize(synth::Scenario{}.run(30.0), user, rng);
  Rng rng2(601);
  const auto walk =
      synth::synthesize(synth::Scenario::pure_walking(30.0), user, rng2);
  EXPECT_GT(run.truth.step_count(), walk.truth.step_count());
  EXPECT_GT(run.truth.total_distance(), 1.5 * walk.truth.total_distance());
}

TEST(Running, GroundTruthStridesConsistent) {
  synth::UserProfile user;
  synth::GaitParams p;
  p.kind = synth::ActivityKind::Running;
  p.duration = 20.0;
  p.fs = 400.0;
  Rng rng(602);
  const auto path = synth::generate_gait(p, user, rng);
  ASSERT_GT(path.steps.size(), 40u);
  for (const synth::StepTruth& s : path.steps) {
    EXPECT_GT(s.stride, 0.8);   // running strides exceed walking's
    EXPECT_LT(s.stride, 1.6);
    EXPECT_GT(s.bounce, 0.0);
  }
}

TEST(Running, CountedAccuratelyWithRunTunedConfig) {
  synth::UserProfile user;
  Rng rng(603);
  const auto r = synth::synthesize(synth::Scenario{}.run(60.0), user, rng);
  core::PTrack tracker(run_tuned(user));
  const auto res = tracker.process(r.trace);
  const double truth = static_cast<double>(r.truth.step_count());
  EXPECT_NEAR(static_cast<double>(res.steps), truth, 0.10 * truth);
}

TEST(Running, ClassifiedAsWalkingVariantNotInterference) {
  synth::UserProfile user;
  Rng rng(604);
  const auto r = synth::synthesize(synth::Scenario{}.run(60.0), user, rng);
  core::PTrack tracker(run_tuned(user));
  const auto res = tracker.process(r.trace);
  std::size_t gait = 0;
  std::size_t others = 0;
  for (const auto& c : res.cycles) {
    (c.type == core::GaitType::Interference ? others : gait) += 1;
  }
  EXPECT_GT(gait, 4 * others);  // the vast majority counted as gait
}

TEST(Running, DistanceShapeReasonable) {
  // Known limitation: Eq. (2) is walking (double-support) geometry; running
  // strides are under-read. The distance must still land in the right
  // ballpark (documented in DESIGN.md).
  synth::UserProfile user;
  Rng rng(605);
  const auto r = synth::synthesize(synth::Scenario{}.run(60.0), user, rng);
  core::PTrack tracker(run_tuned(user));
  const auto res = tracker.process(r.trace);
  const double truth = r.truth.total_distance();
  EXPECT_GT(res.distance(), 0.55 * truth);
  EXPECT_LT(res.distance(), 1.15 * truth);
}

TEST(Running, SpeedOverride) {
  synth::UserProfile user;
  Rng rng(606);
  const auto slow =
      synth::synthesize(synth::Scenario{}.run(30.0, 2.2), user, rng);
  Rng rng2(606);
  const auto fast =
      synth::synthesize(synth::Scenario{}.run(30.0, 3.2), user, rng2);
  EXPECT_GT(fast.truth.total_distance(), slow.truth.total_distance() * 1.2);
}
