// Zero-allocation steady-state contract (DESIGN.md §15): once a streaming
// tracker has flushed once (warm-up) and its buffers, rings and per-thread
// scratch have reached steady capacity, an incremental hop must not touch
// the heap at all. This sweep drives every equivalence scenario — walking,
// stepping, mixed gait, interference and a fault-injected stream — in both
// double and float32 precision through >= 100 consecutive measured hops and
// asserts the thread's allocation counter does not move. Enforcement mode
// is armed as well (when checks are compiled in), so a regression throws at
// the offending allocation site instead of only failing the final count.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/alloc_hooks.hpp"
#include "core/streaming.hpp"
#include "imu/faults.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

constexpr std::size_t kMeasuredHops = 120;  // acceptance floor is 100

struct NamedTrace {
  std::string name;
  imu::Trace trace;
};

std::vector<NamedTrace> scenarios() {
  synth::UserProfile user;
  const auto make = [&](const synth::Scenario& sc, std::uint64_t seed) {
    Rng rng(seed);
    return synth::synthesize(sc, user, synth::SynthOptions{}, rng).trace;
  };
  std::vector<NamedTrace> out;
  out.push_back({"walking", make(synth::Scenario::pure_walking(45.0), 701)});
  out.push_back({"stepping", make(synth::Scenario::pure_stepping(45.0), 702)});
  out.push_back({"mixed", make(synth::Scenario::mixed_gait(60.0), 703)});
  out.push_back({"interference",
                 make(synth::Scenario::interference(synth::ActivityKind::Gaming,
                                                    45.0,
                                                    synth::Posture::Standing),
                      704)});
  {
    imu::Trace faulty = make(synth::Scenario::pure_walking(45.0), 705);
    Rng rng(706);
    faulty = imu::inject_dropouts(faulty, 4.0, 10, 60, rng);
    faulty = imu::clip_acceleration(faulty, 25.0);
    out.push_back({"faulted", std::move(faulty)});
  }
  return out;
}

// Drives `hops` incremental hops by replaying the trace cyclically (the
// tracker restamps sample times, so the replay is a seamless continuation)
// and polls into a reused sink. Returns the number of operator-new calls
// the measured region performed on this thread.
std::uint64_t run_hops(core::StreamingTracker& stream, const imu::Trace& trace,
                       std::size_t hop_samples, std::size_t& cursor,
                       std::size_t hops, std::vector<core::StepEvent>& sink) {
  const alloc::ThreadStats before = alloc::thread_stats();
  for (std::size_t h = 0; h < hops; ++h) {
    for (std::size_t i = 0; i < hop_samples; ++i) {
      stream.push(trace[cursor]);
      if (++cursor == trace.size()) cursor = 0;
    }
    stream.poll_into(sink);
  }
  const alloc::ThreadStats after = alloc::thread_stats();
  return after.allocations - before.allocations;
}

void expect_steady_hops_allocation_free(const NamedTrace& s,
                                        core::Precision precision) {
  synth::UserProfile user;
  core::StreamingConfig cfg;
  cfg.pipeline.stride.profile = {user.arm_length, user.leg_length, 2.0};
  cfg.precision = precision;

  core::StreamingTracker stream(s.trace.fs(), cfg);
  const auto hop_samples = static_cast<std::size_t>(cfg.hop_s * s.trace.fs());
  ASSERT_GE(s.trace.size(), hop_samples);

  // Warm-up: the full trace, one flush (finish() — this is the warm-up
  // flush the contract names), then unmeasured hops spanning TWO full
  // cyclic replay periods. One period guarantees every cycle shape in the
  // trace — including the wrap-seam cycle the replay stitches together —
  // has sized the per-thread scratch; the second lets any state that the
  // first wrap perturbed (adaptive quality statistics) settle back into
  // the periodic steady state before measurement begins.
  std::vector<core::StepEvent> sink;
  sink.reserve(4096);
  stream.push(s.trace);
  for (const core::StepEvent& e : stream.finish()) sink.push_back(e);
  std::size_t cursor = 0;
  const std::size_t hops_per_wrap =
      (s.trace.size() + hop_samples - 1) / hop_samples;
  const std::size_t warmup_hops = 2 * hops_per_wrap + 5;
  run_hops(stream, s.trace, hop_samples, cursor, warmup_hops, sink);

  // Measured region: arm enforcement (throws at the allocation site when
  // checks are compiled in) and require a zero counter delta either way.
  stream.set_enforce_no_alloc(true);
  const std::uint64_t allocs =
      run_hops(stream, s.trace, hop_samples, cursor, kMeasuredHops, sink);
  if (alloc::hooks_enabled()) {
    EXPECT_EQ(allocs, 0u) << s.name << ": " << allocs
                          << " heap allocations across " << kMeasuredHops
                          << " steady-state hops";
  }
  // The stream stayed live through the measured region (sanity: the hops
  // actually processed samples, not a stalled pipeline).
  EXPECT_GE(stream.stats().windows_processed, warmup_hops + kMeasuredHops);
}

}  // namespace

TEST(NoAllocSteadyState, DoublePrecisionAcrossScenarios) {
  for (const NamedTrace& s : scenarios()) {
    SCOPED_TRACE(s.name);
    expect_steady_hops_allocation_free(s, core::Precision::kDouble);
  }
}

TEST(NoAllocSteadyState, Float32PrecisionAcrossScenarios) {
  for (const NamedTrace& s : scenarios()) {
    SCOPED_TRACE(s.name);
    expect_steady_hops_allocation_free(s, core::Precision::kFloat32);
  }
}
