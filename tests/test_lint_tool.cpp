// End-to-end test of the ptrack_lint binary (tools/ptrack_lint.cpp): builds
// small fixture trees with deliberate violations of each rule, runs the real
// tool through std::system (located via the PTRACK_LINT_PATH compile
// definition) and checks exit codes, human output and the JSON report.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace {

namespace fs = std::filesystem;

int run_lint(const std::string& args, std::string* output = nullptr) {
  // Per-process capture file: ctest runs each discovered case as its own
  // process, possibly in parallel, so a shared name would interleave.
#ifdef _WIN32
  const long pid = 0;
#else
  const long pid = static_cast<long>(::getpid());
#endif
  const fs::path out_file =
      fs::temp_directory_path() /
      ("ptrack_lint_test_stdout." + std::to_string(pid) + ".txt");
  const std::string cmd = std::string(PTRACK_LINT_PATH) + " " + args + " > " +
                          out_file.string() + " 2>&1";
  const int status = std::system(cmd.c_str());
  if (output != nullptr) {
    std::ifstream in(out_file);
    std::stringstream ss;
    ss << in.rdbuf();
    *output = ss.str();
  }
#ifdef _WIN32
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

fs::path fixture_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("ptrack_lint_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_text(const fs::path& p, const std::string& text) {
  fs::create_directories(p.parent_path());
  std::ofstream out(p);
  ASSERT_TRUE(out.is_open());
  out << text;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST(PtrackLint, CleanTreeExitsZero) {
  const fs::path dir = fixture_dir("clean");
  write_text(dir / "core" / "thing.cpp",
             "#include \"thing.hpp\"\n"
             "namespace ptrack::core {\n"
             "void process(int n) {\n"
             "  expects(n > 0, \"process: n > 0\");\n"
             "  for (int i = 0; i < n; ++i) { consume(i); }\n"
             "  finish(n); more(n); even_more(n); and_more(n); tail(n);\n"
             "}\n"
             "}\n");
  write_text(dir / "core" / "thing.hpp",
             "#pragma once\nnamespace ptrack::core { void process(int); }\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 0) << out;
  EXPECT_NE(out.find("0 findings"), std::string::npos) << out;
}

TEST(PtrackLint, AllocRuleFlagsGrowthInHotTus) {
  const fs::path dir = fixture_dir("alloc");
  // dsp/*.cpp is a hot-path TU: bare push_back outside a ctor must fire.
  write_text(dir / "dsp" / "filt.cpp",
             "namespace ptrack::dsp {\n"
             "void filt(std::vector<double>& out) {\n"
             "  out.push_back(1.0);\n"
             "}\n"
             "}\n");
  // The same call in a non-hot TU is fine.
  write_text(dir / "synth" / "gen.cpp",
             "namespace ptrack::synth {\n"
             "void gen(std::vector<double>& out) { out.push_back(1.0); }\n"
             "}\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 1) << out;
  EXPECT_NE(out.find("[alloc]"), std::string::npos) << out;
  EXPECT_NE(out.find("filt.cpp:3"), std::string::npos) << out;
  EXPECT_EQ(out.find("gen.cpp"), std::string::npos) << out;
}

TEST(PtrackLint, AllocRuleExemptsConstructorsAndHonorsDirectives) {
  const fs::path dir = fixture_dir("alloc_exempt");
  write_text(dir / "dsp" / "stage.cpp",
             "namespace ptrack::dsp {\n"
             "Stage::Stage(std::size_t n) {\n"
             "  buf_.reserve(n);\n"  // ctor: reserved setup, exempt
             "}\n"
             "void Stage::run() {\n"
             "  // ptrack-lint: allow(alloc) amortized into reserved scratch\n"
             "  buf_.push_back(0.0);\n"
             "  scratch_.resize(8);\n"  // NOT covered: two lines below
             "}\n"
             "}\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 1) << out;
  // Only the resize escapes the directive's one-line reach.
  EXPECT_EQ(out.find("push_back"), std::string::npos) << out;
  EXPECT_EQ(out.find("reserve"), std::string::npos) << out;
  EXPECT_NE(out.find("resize"), std::string::npos) << out;
}

TEST(PtrackLint, PushPopAllowCoversARegion) {
  const fs::path dir = fixture_dir("pushpop");
  write_text(dir / "dsp" / "ring.cpp",
             "namespace ptrack::dsp {\n"
             "// ptrack-lint: push-allow(alloc) amortized ring growth\n"
             "void Ring::push(double x) {\n"
             "  a_.push_back(x);\n"
             "  b_.push_back(x);\n"
             "}\n"
             "// ptrack-lint: pop-allow(alloc)\n"
             "void Ring::other() { c_.push_back(1.0); }\n"
             "}\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 1) << out;
  EXPECT_EQ(out.find("ring.cpp:4"), std::string::npos) << out;
  EXPECT_EQ(out.find("ring.cpp:5"), std::string::npos) << out;
  EXPECT_NE(out.find("ring.cpp:8"), std::string::npos) << out;
}

TEST(PtrackLint, UnbalancedPushAllowIsAFinding) {
  const fs::path dir = fixture_dir("unbalanced");
  write_text(dir / "util.cpp",
             "// ptrack-lint: push-allow(alloc) never closed\n"
             "namespace ptrack { void f() {} }\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 1) << out;
  EXPECT_NE(out.find("never closed by pop-allow"), std::string::npos) << out;
}

TEST(PtrackLint, SpanNameRuleRequiresDottedLiteral) {
  const fs::path dir = fixture_dir("span");
  write_text(dir / "obs_user.cpp",
             "namespace ptrack {\n"
             "void a() { PTRACK_OBS_SPAN(\"ptrack.core.project\"); }\n"
             "void b() { PTRACK_OBS_SPAN(\"core.project\"); }\n"
             "void c() { PTRACK_OBS_SPAN(name_variable); }\n"
             "}\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 1) << out;
  EXPECT_EQ(out.find("obs_user.cpp:2"), std::string::npos) << out;
  EXPECT_NE(out.find("obs_user.cpp:3"), std::string::npos) << out;
  EXPECT_NE(out.find("obs_user.cpp:4"), std::string::npos) << out;
}

TEST(PtrackLint, EntryCheckRuleWantsGuardsInCoreCpp) {
  const fs::path dir = fixture_dir("entry");
  write_text(dir / "core" / "api.cpp",
             "namespace ptrack::core {\n"
             "void guarded(int n) {\n"
             "  expects(n > 0, \"n > 0\");\n"
             "  aa(n); bb(n); cc(n); dd(n); ee(n); ff(n); gg(n); hh(n);\n"
             "  ii(n); jj(n); kk(n); ll(n); mm(n); nn(n); oo(n); pp(n);\n"
             "}\n"
             "void unguarded(int n) {\n"
             "  aa(n); bb(n); cc(n); dd(n); ee(n); ff(n); gg(n); hh(n);\n"
             "  ii(n); jj(n); kk(n); ll(n); mm(n); nn(n); oo(n); pp(n);\n"
             "}\n"
             "void trivial(int n) { aa(n); }\n"  // tiny body: exempt
             "namespace {\n"
             "void helper(int n) {\n"  // anonymous namespace: exempt
             "  aa(n); bb(n); cc(n); dd(n); ee(n); ff(n); gg(n); hh(n);\n"
             "  ii(n); jj(n); kk(n); ll(n); mm(n); nn(n); oo(n); pp(n);\n"
             "}\n"
             "}\n"
             "}\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 1) << out;
  EXPECT_NE(out.find("'unguarded'"), std::string::npos) << out;
  EXPECT_EQ(out.find("'guarded'"), std::string::npos) << out;
  EXPECT_EQ(out.find("'trivial'"), std::string::npos) << out;
  EXPECT_EQ(out.find("'helper'"), std::string::npos) << out;
}

TEST(PtrackLint, HeaderRuleWantsPragmaOnceAndNoUsingNamespace) {
  const fs::path dir = fixture_dir("header");
  write_text(dir / "good.hpp", "#pragma once\nnamespace ptrack {}\n");
  write_text(dir / "bad.hpp",
             "namespace ptrack {}\nusing namespace std;\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 1) << out;
  EXPECT_NE(out.find("missing #pragma once"), std::string::npos) << out;
  EXPECT_NE(out.find("using namespace"), std::string::npos) << out;
  EXPECT_EQ(out.find("good.hpp"), std::string::npos) << out;
}

TEST(PtrackLint, LogKeyRuleWantsLiteralSnakeCase) {
  const fs::path dir = fixture_dir("logkey");
  write_text(dir / "logging_user.cpp",
             "namespace ptrack {\n"
             "void a() { PTRACK_LOG_INFO(\"net\", \"conn_open\","
             " kv(\"fd\", fd)); }\n"
             "void b() { PTRACK_LOG_WARN(\"net\", event_name,"
             " kv(\"fd\", fd)); }\n"
             "void c() { PTRACK_LOG_INFO(\"Net\", \"conn_open\"); }\n"
             "void d() { PTRACK_LOG_ERROR(\"net\", \"oops\","
             " kv(key_var, 1)); }\n"
             "void e() { PTRACK_LOG(\"net\", Level::kInfo, \"ok_event\","
             " kv(\"n\", 1)); }\n"
             "}\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 1) << out;
  EXPECT_NE(out.find("[log-key]"), std::string::npos) << out;
  EXPECT_EQ(out.find("logging_user.cpp:2"), std::string::npos) << out;
  EXPECT_NE(out.find("logging_user.cpp:3"), std::string::npos) << out;
  EXPECT_NE(out.find("logging_user.cpp:4"), std::string::npos) << out;
  EXPECT_NE(out.find("logging_user.cpp:5"), std::string::npos) << out;
  EXPECT_EQ(out.find("logging_user.cpp:6"), std::string::npos) << out;
}

TEST(PtrackLint, LogKeyRuleIgnoresKvOutsideLogCalls) {
  const fs::path dir = fixture_dir("logkey_scope");
  // kv() used as a plain function (e.g. the overload definitions or a
  // map helper) is out of the rule's scope — only log call sites count.
  write_text(dir / "kv_user.cpp",
             "namespace ptrack {\n"
             "auto p = kv(dynamic_key, 1);\n"
             "}\n");
  std::string out;
  EXPECT_EQ(run_lint(dir.string(), &out), 0) << out;
}

TEST(PtrackLint, JsonReportIsMachineReadable) {
  const fs::path dir = fixture_dir("report");
  write_text(dir / "dsp" / "x.cpp",
             "namespace ptrack::dsp { void f(V& v) { v.resize(3); } }\n");
  const fs::path report = dir / "report.json";
  std::string out;
  EXPECT_EQ(run_lint(dir.string() + " --report " + report.string(), &out), 1)
      << out;
  const std::string json = slurp(report);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"alloc\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos) << json;

  // A clean tree writes clean: true with an empty findings array.
  const fs::path clean = fixture_dir("report_clean");
  write_text(clean / "ok.hpp", "#pragma once\n");
  EXPECT_EQ(
      run_lint(clean.string() + " --report " + report.string(), &out), 0)
      << out;
  const std::string clean_json = slurp(report);
  EXPECT_NE(clean_json.find("\"clean\": true"), std::string::npos)
      << clean_json;
  EXPECT_NE(clean_json.find("\"findings\": []"), std::string::npos)
      << clean_json;
}

TEST(PtrackLint, UsageErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(run_lint("", &out), 2);
  EXPECT_EQ(run_lint("--bogus-flag", &out), 2);
  EXPECT_EQ(run_lint("/nonexistent/path/xyz", &out), 2);
}
