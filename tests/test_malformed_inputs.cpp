// Table-driven coverage of the malformed-input paths at the parsing trust
// boundaries: csv::parse/read, imu::trace_from_document/load_csv, and
// cli::Args. Every `throw Error` site in src/common/csv.cpp and
// src/imu/trace_io.cpp is exercised; the same hostile shapes are committed
// as fuzz seeds under fuzz/corpus/.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "imu/trace_io.hpp"

namespace {

using namespace ptrack;

std::string write_temp(const std::string& tag, const std::string& content) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ptrack_malformed_" + tag + ".csv"))
          .string();
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path;
}

// Expects `fn` to throw a ptrack::Error whose message contains `needle`.
template <typename Fn>
void expect_error_containing(const Fn& fn, const std::string& needle,
                             const std::string& context) {
  try {
    fn();
    FAIL() << context << ": expected ptrack::Error, nothing thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << context << ": message '" << e.what() << "' lacks '" << needle
        << "'";
  } catch (const std::exception& e) {
    FAIL() << context << ": wrong exception type: " << e.what();
  }
}

struct CsvCase {
  const char* tag;
  const char* content;
  const char* expect_substring;
};

TEST(MalformedCsv, ParseRejectsEveryHostileShape) {
  const std::vector<CsvCase> cases = {
      {"empty_file", "", "empty document"},
      {"empty_header", "\n1,2\n", "empty header"},
      {"ragged_long", "a,b\n1,2,3\n", "ragged row"},
      {"ragged_short", "a,b\n1\n", "ragged row"},
      {"trailing_comma", "a,b\n1,2,\n", "ragged row"},
      {"nonnumeric", "a,b\n1,x\n", "non-numeric cell"},
      {"empty_cell", "a,b\n1,\n2,3\n", "ragged row"},
      {"nan_cell", "a,b\nnan,2\n", "non-finite cell"},
      {"inf_cell", "a,b\n1,inf\n", "non-finite cell"},
      {"neg_inf_cell", "a,b\n-inf,0\n", "non-finite cell"},
      {"trailing_junk", "a,b\n1.5x,2\n", "trailing junk"},
      {"space_junk", "a,b\n1 2,3\n", "trailing junk"},
  };
  for (const CsvCase& c : cases) {
    std::istringstream in(c.content);
    expect_error_containing([&] { (void)csv::parse(in, c.tag); },
                            c.expect_substring, c.tag);
  }
}

TEST(MalformedCsv, OversizedCellRejected) {
  const std::string big(csv::kMaxCellChars + 1, '1');
  std::istringstream in("a\n" + big + "\n");
  expect_error_containing([&] { (void)csv::parse(in, "oversized"); },
                          "oversized cell", "oversized");
}

TEST(MalformedCsv, TooManyColumnsRejected) {
  std::string header = "c0";
  for (std::size_t i = 1; i <= csv::kMaxColumns; ++i) {
    header += ",c" + std::to_string(i);
  }
  std::istringstream in(header + "\n");
  expect_error_containing([&] { (void)csv::parse(in, "wide"); },
                          "too many columns", "wide");
}

TEST(MalformedCsv, ReadRejectsMissingFile) {
  expect_error_containing(
      [] { (void)csv::read("/nonexistent/definitely/missing.csv"); },
      "cannot open", "missing file");
}

TEST(MalformedCsv, WriteRejectsBadPathAndRaggedRows) {
  expect_error_containing(
      [] { csv::write("/nonexistent/dir/out.csv", {"a"}, {}); },
      "cannot open", "bad path");
  const std::string path = write_temp("write_ragged", "");
  EXPECT_THROW(csv::write(path, {"a", "b"}, {{1.0}}), InvalidArgument);
  std::remove(path.c_str());
}

TEST(MalformedCsv, BlankLinesAreSkippedNotRagged) {
  std::istringstream in("a,b\n\n1,2\n\n");
  const csv::Document doc = csv::parse(in, "blank-lines");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0], (std::vector<double>{1.0, 2.0}));
}

constexpr const char* kImuHeader = "t,ax,ay,az,gx,gy,gz\n";

struct TraceCase {
  const char* tag;
  std::string content;
  const char* expect_substring;
};

TEST(MalformedTrace, LoadCsvRejectsEveryHostileShape) {
  const std::vector<TraceCase> cases = {
      {"bad_header", "time,ax,ay,az,gx,gy,gz\n100,0,0,0,0,0,0\n",
       "unexpected header"},
      {"missing_metadata", std::string(kImuHeader), "missing metadata row"},
      {"negative_fs", std::string(kImuHeader) + "-50,0,0,0,0,0,0\n",
       "non-positive fs"},
      {"zero_fs", std::string(kImuHeader) + "0,0,0,0,0,0,0\n",
       "non-positive fs"},
      {"implausible_fs",
       std::string(kImuHeader) + "1e9,0,0,0,0,0,0\n0,0,0,9.8,0,0,0\n",
       "implausible fs"},
      {"nan_fs", std::string(kImuHeader) + "nan,0,0,0,0,0,0\n",
       "non-finite cell"},  // rejected one layer down, in csv::parse
      {"nonmonotonic_t",
       std::string(kImuHeader) +
           "100,0,0,0,0,0,0\n0.02,0,0,9.8,0,0,0\n0.01,0,0,9.8,0,0,0\n",
       "non-monotonic timestamp"},
      {"truncated_mid_row",
       std::string(kImuHeader) + "100,0,0,0,0,0,0\n0.01,0,0,9.8\n",
       "ragged row"},
  };
  for (const TraceCase& c : cases) {
    const std::string path = write_temp(c.tag, c.content);
    expect_error_containing([&] { (void)imu::load_csv(path); },
                            c.expect_substring, c.tag);
    std::remove(path.c_str());
  }
}

TEST(MalformedTrace, DocumentLevelValidation) {
  // Shapes csv::parse cannot produce but a programmatic caller can.
  csv::Document doc;
  doc.header = {"t", "ax", "ay", "az", "gx", "gy", "gz"};
  doc.rows = {{std::nan(""), 0, 0, 0, 0, 0, 0}};
  expect_error_containing(
      [&] { (void)imu::trace_from_document(doc, "prog"); },
      "non-finite or non-positive fs", "nan fs via document");

  doc.rows = {{100, 0, 0, 0, 0, 0, 0},
              {std::nan(""), 0, 0, 9.8, 0, 0, 0}};
  expect_error_containing(
      [&] { (void)imu::trace_from_document(doc, "prog"); },
      "non-finite timestamp", "nan timestamp via document");
}

TEST(MalformedTrace, ValidTraceRoundTrips) {
  const std::string path = write_temp(
      "valid", std::string(kImuHeader) +
                   "100,0,0,0,0,0,0\n0,0,0,9.8,0.1,0,0\n0.01,0.1,0,9.7,0,0,0\n");
  const imu::Trace t = imu::load_csv(path);
  EXPECT_DOUBLE_EQ(t.fs(), 100.0);
  EXPECT_EQ(t.size(), 2u);
  std::remove(path.c_str());
}

const std::vector<cli::OptionSpec> kSpecs = {
    {"input", "input path", "", false},
    {"scale", "scale factor", "1.0", false},
    {"count", "repeat count", "3", false},
    {"verbose", "chatty output", "", true},
};

cli::Args parse_cli(std::vector<std::string> tokens) {
  tokens.insert(tokens.begin(), "prog");
  std::vector<const char*> argv;
  argv.reserve(tokens.size());
  for (const std::string& t : tokens) argv.push_back(t.c_str());
  return cli::Args(static_cast<int>(argv.size()), argv.data(), kSpecs);
}

TEST(MalformedCli, RejectsEveryHostileShape) {
  EXPECT_THROW((void)parse_cli({"--nope"}), InvalidArgument);
  EXPECT_THROW((void)parse_cli({"stray-positional"}), InvalidArgument);
  EXPECT_THROW((void)parse_cli({"--input"}), InvalidArgument);
  EXPECT_THROW((void)parse_cli({"--verbose=1"}), InvalidArgument);
  EXPECT_THROW((void)parse_cli({"--scale", "abc"}).get_double("scale"),
               InvalidArgument);
  EXPECT_THROW((void)parse_cli({"--count",
                                "999999999999999999999999"})
                   .get_int("count"),
               InvalidArgument);
  EXPECT_THROW((void)parse_cli({}).get_string("input"), InvalidArgument);
}

}  // namespace
