// Unit tests for cycle analysis (offset, half-cycle autocorrelation,
// quarter-period phase gate) and the Fig. 4 streak state machine.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "core/gait_id.hpp"

using namespace ptrack;
using core::CycleAnalysis;
using core::GaitIdentifier;
using core::GaitType;

namespace {

// Body-only stepping surrogate: vertical ~ cos at the step period (two
// periods per cycle), anterior ~ sin (quarter period behind).
void stepping_channels(std::size_t n, std::vector<double>& vertical,
                       std::vector<double>& anterior) {
  vertical.resize(n);
  anterior.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phi =
        2.0 * kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    vertical[i] = 3.0 * std::cos(phi);
    anterior[i] = 3.0 * std::sin(phi);
  }
}

// Rigid interference surrogate: both channels in phase.
void rigid_channels(std::size_t n, std::vector<double>& vertical,
                    std::vector<double>& anterior) {
  vertical.resize(n);
  anterior.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phi =
        2.0 * kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    vertical[i] = 2.0 * std::sin(phi);
    anterior[i] = 1.5 * std::sin(phi);
  }
}

}  // namespace

TEST(AnalyzeCycle, SteppingHasPositiveHalfCycleCorr) {
  std::vector<double> v;
  std::vector<double> a;
  stepping_channels(128, v, a);
  const CycleAnalysis res = core::analyze_cycle(v, a, {});
  EXPECT_GT(res.half_cycle_corr, 0.8);
}

TEST(AnalyzeCycle, SteppingPassesPhaseGate) {
  std::vector<double> v;
  std::vector<double> a;
  stepping_channels(128, v, a);
  const CycleAnalysis res = core::analyze_cycle(v, a, {});
  EXPECT_TRUE(res.phase_ok);
}

TEST(AnalyzeCycle, SteppingOffsetIsSmall) {
  std::vector<double> v;
  std::vector<double> a;
  stepping_channels(128, v, a);
  core::StepCounterConfig cfg;
  const CycleAnalysis res = core::analyze_cycle(v, a, cfg);
  EXPECT_LT(res.offset, cfg.delta);
}

TEST(AnalyzeCycle, RigidInPhaseFailsPhaseGate) {
  std::vector<double> v;
  std::vector<double> a;
  rigid_channels(128, v, a);
  const CycleAnalysis res = core::analyze_cycle(v, a, {});
  EXPECT_GT(res.half_cycle_corr, 0.8);  // periodic, so C is positive...
  EXPECT_FALSE(res.phase_ok);           // ...but the phase gate rejects it
}

TEST(AnalyzeCycle, ArmGestureNegativeHalfCycleCorr) {
  // An arm gesture's anterior pattern has the period of the *full* cycle:
  // its autocorrelation at the half-cycle lag is negative.
  const std::size_t n = 128;
  std::vector<double> v(n);
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phi = kTwoPi * static_cast<double>(i) / static_cast<double>(n);
    v[i] = std::cos(2.0 * phi);
    a[i] = std::sin(phi);  // one period per cycle
  }
  const CycleAnalysis res = core::analyze_cycle(v, a, {});
  EXPECT_LT(res.half_cycle_corr, -0.5);
}

TEST(AnalyzeCycle, PhaseGateDisabledAlwaysPasses) {
  std::vector<double> v;
  std::vector<double> a;
  rigid_channels(128, v, a);
  core::StepCounterConfig cfg;
  cfg.use_phase_gate = false;
  EXPECT_TRUE(core::analyze_cycle(v, a, cfg).phase_ok);
}

TEST(AnalyzeCycle, Preconditions) {
  const std::vector<double> v(32, 0.0);
  const std::vector<double> a(16, 0.0);
  EXPECT_THROW(core::analyze_cycle(v, a, {}), InvalidArgument);
  const std::vector<double> tiny(4, 0.0);
  EXPECT_THROW(core::analyze_cycle(tiny, tiny, {}), InvalidArgument);
}

namespace {

CycleAnalysis walking_analysis() {
  CycleAnalysis a;
  a.offset = 0.08;  // above delta
  a.half_cycle_corr = -0.3;
  a.phase_ok = false;
  return a;
}

CycleAnalysis stepping_analysis() {
  CycleAnalysis a;
  a.offset = 0.004;
  a.half_cycle_corr = 0.9;
  a.phase_ok = true;
  return a;
}

CycleAnalysis interference_analysis() {
  CycleAnalysis a;
  a.offset = 0.004;
  a.half_cycle_corr = -0.8;
  a.phase_ok = false;
  return a;
}

core::StepCounterConfig no_hysteresis() {
  core::StepCounterConfig cfg;
  cfg.walking_hysteresis = false;
  return cfg;
}

}  // namespace

TEST(GaitIdentifier, WalkingImmediatelyAccepted) {
  GaitIdentifier id(no_hysteresis());
  const auto d = id.classify(walking_analysis());
  EXPECT_EQ(d.type, GaitType::Walking);
  EXPECT_EQ(d.confirmed_backlog, 0u);
}

TEST(GaitIdentifier, SteppingNeedsThreeConsecutive) {
  GaitIdentifier id(no_hysteresis());
  const auto d1 = id.classify(stepping_analysis());
  EXPECT_EQ(d1.type, GaitType::Interference);  // withheld
  const auto d2 = id.classify(stepping_analysis());
  EXPECT_EQ(d2.type, GaitType::Interference);  // withheld
  const auto d3 = id.classify(stepping_analysis());
  EXPECT_EQ(d3.type, GaitType::Stepping);
  EXPECT_EQ(d3.confirmed_backlog, 2u);  // the paper's "+6": 2 backlog + this
}

TEST(GaitIdentifier, StreakContinuesAfterConfirmation) {
  GaitIdentifier id(no_hysteresis());
  id.classify(stepping_analysis());
  id.classify(stepping_analysis());
  id.classify(stepping_analysis());
  const auto d4 = id.classify(stepping_analysis());
  EXPECT_EQ(d4.type, GaitType::Stepping);
  EXPECT_EQ(d4.confirmed_backlog, 0u);  // "+2" from here on
}

TEST(GaitIdentifier, InterferenceBreaksStreak) {
  GaitIdentifier id(no_hysteresis());
  id.classify(stepping_analysis());
  id.classify(stepping_analysis());
  id.classify(interference_analysis());  // breaks the pending streak
  const auto d = id.classify(stepping_analysis());
  EXPECT_EQ(d.type, GaitType::Interference);  // must start over
}

TEST(GaitIdentifier, WalkingBreaksActiveSteppingStreak) {
  GaitIdentifier id(no_hysteresis());
  id.classify(stepping_analysis());
  id.classify(stepping_analysis());
  id.classify(stepping_analysis());  // streak active
  id.classify(walking_analysis());   // walking resets it
  const auto d = id.classify(stepping_analysis());
  EXPECT_EQ(d.type, GaitType::Interference);
}

TEST(GaitIdentifier, ResetClearsState) {
  GaitIdentifier id(no_hysteresis());
  id.classify(stepping_analysis());
  id.classify(stepping_analysis());
  id.reset();
  const auto d = id.classify(stepping_analysis());
  EXPECT_EQ(d.type, GaitType::Interference);
}

TEST(GaitIdentifier, StreakOfOneAcceptsImmediately) {
  core::StepCounterConfig cfg = no_hysteresis();
  cfg.streak = 1;
  GaitIdentifier id(cfg);
  const auto d = id.classify(stepping_analysis());
  EXPECT_EQ(d.type, GaitType::Stepping);
  EXPECT_EQ(d.confirmed_backlog, 0u);
}

TEST(GaitIdentifier, WalkingHysteresisAcceptsBorderlineInsideRun) {
  core::StepCounterConfig cfg;  // hysteresis on by default
  GaitIdentifier id(cfg);
  id.classify(walking_analysis());
  id.classify(walking_analysis());  // opens the gate
  CycleAnalysis borderline;
  borderline.offset = cfg.delta * 0.8;  // below delta, above 0.5*delta
  borderline.half_cycle_corr = -0.5;
  borderline.phase_ok = false;
  const auto d = id.classify(borderline);
  EXPECT_EQ(d.type, GaitType::Walking);
}

TEST(GaitIdentifier, WalkingHysteresisCreditRunsOut) {
  core::StepCounterConfig cfg;
  GaitIdentifier id(cfg);
  id.classify(walking_analysis());
  id.classify(walking_analysis());
  CycleAnalysis borderline;
  borderline.offset = cfg.delta * 0.8;
  borderline.half_cycle_corr = -0.5;
  borderline.phase_ok = false;
  id.classify(borderline);
  id.classify(borderline);
  const auto d3 = id.classify(borderline);  // credit (2) exhausted
  EXPECT_EQ(d3.type, GaitType::Interference);
}

TEST(GaitIdentifier, HysteresisNeverOpensForInterference) {
  core::StepCounterConfig cfg;
  GaitIdentifier id(cfg);
  CycleAnalysis borderline;
  borderline.offset = cfg.delta * 0.8;
  borderline.half_cycle_corr = -0.5;
  borderline.phase_ok = false;
  // No strict walking cycles ever: borderline stays interference.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(id.classify(borderline).type, GaitType::Interference);
  }
}

TEST(GaitIdentifier, InvalidConfigThrows) {
  core::StepCounterConfig cfg;
  cfg.streak = 0;
  EXPECT_THROW(GaitIdentifier{cfg}, InvalidArgument);
}
