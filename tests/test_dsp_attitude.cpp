// Tests for the complementary attitude filter.

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/mat3.hpp"
#include "common/rng.hpp"
#include "dsp/attitude.hpp"

using namespace ptrack;

TEST(Attitude, InitializesFromFirstAccel) {
  dsp::AttitudeEstimator est;
  const Vec3 up = est.update({0, 0, 0}, {0, 0, kGravity}, 0.01);
  EXPECT_NEAR(up.z, 1.0, 1e-9);
}

TEST(Attitude, ConvergesOnStaticTiltedDevice) {
  dsp::AttitudeEstimator est;
  // Device tilted: gravity reads along a fixed non-z direction.
  const Vec3 g_dir = Vec3{0.3, -0.2, 0.93}.normalized();
  for (int i = 0; i < 1000; ++i) {
    est.update({0, 0, 0}, g_dir * kGravity, 0.01);
  }
  EXPECT_NEAR(est.up().dot(g_dir), 1.0, 1e-6);
}

TEST(Attitude, GyroTracksRotationWithoutAccel) {
  dsp::AttitudeEstimator est;
  est.reset({0, 0, kGravity});
  // Rotate the device about x at 1 rad/s for 0.5 s; feed dynamic (gated
  // out) accel so only the gyro drives the estimate.
  const Vec3 omega{1.0, 0.0, 0.0};
  const double dt = 0.001;
  for (int i = 0; i < 500; ++i) {
    est.update(omega, {0, 0, 3.0 * kGravity}, dt);  // gated: |a| far from g
  }
  // After rotating the device by +0.5 rad about x, the world-up direction
  // expressed in the device frame has rotated by -0.5 rad about x.
  const Vec3 expected = Mat3::rot_x(-0.5).apply(kVertical);
  EXPECT_NEAR(est.up().dot(expected), 1.0, 1e-3);
}

TEST(Attitude, AccelCorrectionCancelsGyroBias) {
  dsp::AttitudeConfig cfg;
  cfg.tau = 0.5;
  dsp::AttitudeEstimator est(cfg);
  est.reset({0, 0, kGravity});
  // A constant gyro bias would drift the estimate; the accel reference
  // (device static) holds it near truth.
  const Vec3 bias{0.02, -0.015, 0.01};
  for (int i = 0; i < 5000; ++i) {
    est.update(bias, {0, 0, kGravity}, 0.01);
  }
  EXPECT_GT(est.up().z, 0.995);
}

TEST(Attitude, EstimateStaysUnit) {
  dsp::AttitudeEstimator est;
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const Vec3 gyro{rng.normal(0, 0.5), rng.normal(0, 0.5), rng.normal(0, 0.5)};
    const Vec3 accel{rng.normal(0, 3), rng.normal(0, 3),
                     kGravity + rng.normal(0, 3)};
    est.update(gyro, accel, 0.01);
    EXPECT_NEAR(est.up().norm(), 1.0, 1e-9);
  }
}

TEST(Attitude, InvalidInputsThrow) {
  dsp::AttitudeConfig bad;
  bad.tau = 0.0;
  EXPECT_THROW(dsp::AttitudeEstimator{bad}, InvalidArgument);
  dsp::AttitudeEstimator est;
  EXPECT_THROW(est.update({0, 0, 0}, {0, 0, kGravity}, 0.0), InvalidArgument);
}
