// Tests for adaptive delta tuning (the paper's stated future work).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/adaptive_delta.hpp"
#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

TEST(Otsu, SplitsTwoClusters) {
  std::vector<double> offsets;
  Rng rng(11);
  for (int i = 0; i < 60; ++i) offsets.push_back(rng.normal(0.010, 0.002));
  for (int i = 0; i < 60; ++i) offsets.push_back(rng.normal(0.060, 0.008));
  const auto res = core::otsu_threshold(offsets);
  EXPECT_GT(res.delta, 0.014);
  EXPECT_LT(res.delta, 0.05);
  EXPECT_GT(res.separation, 0.7);  // strongly bimodal
  EXPECT_EQ(res.cycles, offsets.size());
}

TEST(Otsu, UnimodalHasLowSeparation) {
  std::vector<double> offsets;
  Rng rng(12);
  for (int i = 0; i < 100; ++i) offsets.push_back(rng.normal(0.04, 0.01));
  const auto res = core::otsu_threshold(offsets);
  EXPECT_LT(res.separation, 0.7);
}

TEST(Otsu, ConstantInput) {
  const std::vector<double> offsets(20, 0.03);
  const auto res = core::otsu_threshold(offsets);
  EXPECT_DOUBLE_EQ(res.delta, 0.03);
  EXPECT_DOUBLE_EQ(res.separation, 0.0);
}

TEST(Otsu, Preconditions) {
  const std::vector<double> tiny(4, 0.1);
  EXPECT_THROW(core::otsu_threshold(tiny), InvalidArgument);
}

TEST(TuneDelta, SessionWithBothClassesIsBimodal) {
  // A session mixing walking with rigid interference: the offsets separate
  // and the tuned delta lands between the clusters — in the same decade as
  // the paper's empirical 0.0325.
  Rng rng(13);
  synth::UserProfile user;
  synth::Scenario session;
  session.walk(60.0)
      .activity(synth::ActivityKind::Spoofer, 60.0)
      .walk(30.0);
  const auto r = synth::synthesize(session, user, synth::SynthOptions{}, rng);
  const auto tuned = core::tune_delta(r.trace);
  EXPECT_GT(tuned.cycles, 40u);
  EXPECT_GT(tuned.separation, 0.5);
  EXPECT_GT(tuned.delta, 0.01);
  EXPECT_LT(tuned.delta, 0.08);
}

TEST(TuneDelta, TunedDeltaKeepsCountingAccurate) {
  Rng rng(14);
  synth::UserProfile user;
  synth::Scenario session;
  session.walk(60.0).activity(synth::ActivityKind::Spoofer, 60.0);
  const auto cal = synth::synthesize(session, user, synth::SynthOptions{}, rng);
  const auto tuned = core::tune_delta(cal.trace);

  const auto eval =
      synth::synthesize(session, user, synth::SynthOptions{}, rng);
  core::PTrackConfig cfg;
  cfg.counter.delta = tuned.delta;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack tracker(cfg);
  const auto res = tracker.process(eval.trace);
  const double truth = static_cast<double>(eval.truth.step_count());
  EXPECT_NEAR(static_cast<double>(res.steps), truth, 0.12 * truth);
}

TEST(TuneDelta, FallsBackWithoutBimodality) {
  // Walking-only session: not separable, keep the configured threshold.
  Rng rng(15);
  synth::UserProfile user;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(60.0), user,
                                   synth::SynthOptions{}, rng);
  core::StepCounterConfig cfg;
  const auto tuned = core::tune_delta(r.trace, cfg);
  if (tuned.separation < 0.5) {
    EXPECT_DOUBLE_EQ(tuned.delta, cfg.delta);
  }
}

TEST(TuneDelta, TinyTraceFallsBack) {
  Rng rng(16);
  synth::UserProfile user;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(3.0), user,
                                   synth::SynthOptions{}, rng);
  core::StepCounterConfig cfg;
  const auto tuned = core::tune_delta(r.trace.slice(0, 8), cfg);
  EXPECT_DOUBLE_EQ(tuned.delta, cfg.delta);
}
