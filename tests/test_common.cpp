// Unit tests for the common substrate: Vec3/Mat3, angles, stats, CDF, RNG,
// CSV and table rendering, error types.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/angles.hpp"
#include "common/cdf.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/mat3.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/vec3.hpp"

using namespace ptrack;

TEST(Vec3, BasicArithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vec3, CrossProductRightHanded) {
  EXPECT_EQ(kAnterior.cross(kLateral), kVertical);
  EXPECT_EQ(kLateral.cross(kVertical), kAnterior);
  EXPECT_EQ(kVertical.cross(kAnterior), kLateral);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  EXPECT_EQ((Vec3{}).normalized(), Vec3{});
}

TEST(Mat3, RotZQuarterTurn) {
  const Mat3 r = Mat3::rot_z(kPi / 2);
  const Vec3 v = r.apply({1, 0, 0});
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Mat3, TransposeIsInverseForRotations) {
  const Mat3 r = Mat3::from_euler(0.3, -0.5, 1.1);
  const Vec3 v{0.2, -0.7, 1.5};
  const Vec3 roundtrip = r.transposed().apply(r.apply(v));
  EXPECT_NEAR(roundtrip.x, v.x, 1e-12);
  EXPECT_NEAR(roundtrip.y, v.y, 1e-12);
  EXPECT_NEAR(roundtrip.z, v.z, 1e-12);
}

TEST(Mat3, AxisAngleMatchesElementaryRotations) {
  const Mat3 a = Mat3::axis_angle({0, 0, 1}, 0.7);
  const Mat3 b = Mat3::rot_z(0.7);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(a.m[i][j], b.m[i][j], 1e-12);
}

TEST(Mat3, AxisAnglePreservesAxis) {
  const Vec3 axis = Vec3{1, 2, -1}.normalized();
  const Mat3 r = Mat3::axis_angle(axis, 1.2345);
  const Vec3 rotated = r.apply(axis);
  EXPECT_NEAR(rotated.x, axis.x, 1e-12);
  EXPECT_NEAR(rotated.y, axis.y, 1e-12);
  EXPECT_NEAR(rotated.z, axis.z, 1e-12);
}

TEST(Angles, Conversions) {
  EXPECT_DOUBLE_EQ(deg2rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad2deg(kPi / 2), 90.0);
}

TEST(Angles, WrapPi) {
  EXPECT_NEAR(wrap_pi(3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(-3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(0.5), 0.5, 1e-12);
}

TEST(Angles, Wrap2Pi) {
  EXPECT_NEAR(wrap_2pi(-0.1), kTwoPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_2pi(kTwoPi + 0.1), 0.1, 1e-12);
}

TEST(Angles, AngleDiff) {
  EXPECT_NEAR(angle_diff(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(-0.1, 0.1), -0.2, 1e-12);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(stats::sample_variance(xs), 2.5);
  EXPECT_NEAR(stats::stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Stats, MedianAndPercentile) {
  const std::vector<double> odd{5, 1, 3};
  EXPECT_DOUBLE_EQ(stats::median(odd), 3.0);
  const std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
  EXPECT_DOUBLE_EQ(stats::percentile(even, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(even, 100.0), 4.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(stats::pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSignalIsZero) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> c{7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(stats::pearson(a, c), 0.0);
}

TEST(Stats, DemeanedHasZeroMean) {
  const std::vector<double> xs{10, 20, 30};
  const auto d = stats::demeaned(xs);
  EXPECT_NEAR(stats::mean(d), 0.0, 1e-12);
}

TEST(Stats, PreconditionsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(stats::mean(empty), InvalidArgument);
  EXPECT_THROW(stats::percentile(std::vector<double>{1.0}, 120.0),
               InvalidArgument);
  EXPECT_THROW(stats::sample_variance(std::vector<double>{1.0}),
               InvalidArgument);
}

TEST(Stats, RunningMatchesBatch) {
  const std::vector<double> xs{0.5, -1.5, 2.0, 4.5, -3.0, 0.0};
  stats::Running r;
  for (double x : xs) r.add(x);
  EXPECT_EQ(r.count(), xs.size());
  EXPECT_NEAR(r.mean(), stats::mean(xs), 1e-12);
  EXPECT_NEAR(r.variance(), stats::variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(r.min(), -3.0);
  EXPECT_DOUBLE_EQ(r.max(), 4.5);
}

TEST(Stats, RunningEmptyThrows) {
  stats::Running r;
  EXPECT_THROW((void)r.mean(), InvalidArgument);
}

TEST(Cdf, QuantilesAndAt) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 10.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 5.5);
  EXPECT_DOUBLE_EQ(cdf.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 0.5);
  EXPECT_NEAR(cdf.quantile(0.5), 5.5, 1e-12);
}

TEST(Cdf, SeriesIsMonotone) {
  const std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  const EmpiricalCdf cdf(xs);
  const auto series = cdf.series(10);
  ASSERT_EQ(series.size(), 10u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
    EXPECT_GE(series[i].first, series[i - 1].first);
  }
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalZeroStddevIsMean) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, ForkDecouplesStreams) {
  Rng a(7);
  Rng fork = a.fork();
  // The fork and the parent produce different streams.
  EXPECT_NE(a.uniform(0, 1), fork.uniform(0, 1));
}

TEST(Csv, RoundTrip) {
  const std::string path = "/tmp/ptrack_test_roundtrip.csv";
  const std::vector<std::string> header{"a", "b"};
  const std::vector<std::vector<double>> rows{{1.5, 2.5}, {-3.25, 1e-6}};
  csv::write(path, header, rows);
  const csv::Document doc = csv::read(path);
  EXPECT_EQ(doc.header, header);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.rows[1][0], -3.25);
  EXPECT_DOUBLE_EQ(doc.rows[1][1], 1e-6);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(csv::read("/nonexistent/definitely/missing.csv"), Error);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
  EXPECT_EQ(Table::pct(0.937, 1), "93.7%");
}

TEST(Error, CheckThrowsWithLocation) {
  try {
    check(false, "should fail");
    FAIL() << "check did not throw";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("should fail"), std::string::npos);
  }
}

TEST(Error, ExpectsThrowsInvalidArgument) {
  EXPECT_THROW(expects(false, "bad arg"), InvalidArgument);
  EXPECT_NO_THROW(expects(true, "fine"));
}
