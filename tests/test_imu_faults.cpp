// Tests for sensor fault injection and PTrack's robustness under faults.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/ptrack.hpp"
#include "imu/faults.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult walking(std::uint64_t seed, double seconds = 60.0) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(synth::Scenario::pure_walking(seconds), user,
                           synth::SynthOptions{}, rng);
}

}  // namespace

TEST(Faults, DropoutsHoldLastValue) {
  const auto r = walking(21, 20.0);
  Rng rng(1);
  const auto faulty = imu::inject_dropouts(r.trace, 30.0, 5, 10, rng);
  ASSERT_EQ(faulty.size(), r.trace.size());
  // At least one run of >= 3 identical consecutive accel values exists.
  std::size_t longest = 0;
  std::size_t run = 1;
  for (std::size_t i = 1; i < faulty.size(); ++i) {
    run = faulty[i].accel == faulty[i - 1].accel ? run + 1 : 1;
    longest = std::max(longest, run);
  }
  EXPECT_GE(longest, 3u);
}

TEST(Faults, ZeroRateIsIdentity) {
  const auto r = walking(22, 10.0);
  Rng rng(2);
  const auto out = imu::inject_dropouts(r.trace, 0.0, 5, 10, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].accel, r.trace[i].accel);
  }
}

TEST(Faults, ClipBoundsComponents) {
  const auto r = walking(23, 10.0);
  const double limit = 2.0 * kGravity;
  const auto clipped = imu::clip_acceleration(r.trace, limit);
  for (const auto& s : clipped.samples()) {
    EXPECT_LE(std::abs(s.accel.x), limit);
    EXPECT_LE(std::abs(s.accel.y), limit);
    EXPECT_LE(std::abs(s.accel.z), limit);
  }
}

TEST(Faults, SpikesLandSomewhere) {
  const auto r = walking(24, 30.0);
  Rng rng(3);
  const auto spiked = imu::inject_spikes(r.trace, 20.0, 8.0, rng);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < spiked.size(); ++i) {
    if (!(spiked[i].accel == r.trace[i].accel)) ++hits;
  }
  EXPECT_GE(hits, 5u);
}

TEST(Faults, AccelSpikesLeaveGyroUntouched) {
  // The historical default corrupts the accelerometer only.
  const auto r = walking(30, 30.0);
  Rng rng(8);
  const auto spiked =
      imu::inject_spikes(r.trace, 20.0, 8.0, rng, imu::FaultChannels::Accel);
  for (std::size_t i = 0; i < spiked.size(); ++i) {
    EXPECT_EQ(spiked[i].gyro, r.trace[i].gyro);
  }
}

TEST(Faults, GyroSpikesHitGyroOnly) {
  const auto r = walking(31, 30.0);
  Rng rng(9);
  const auto spiked =
      imu::inject_spikes(r.trace, 20.0, 8.0, rng, imu::FaultChannels::Gyro);
  std::size_t gyro_hits = 0;
  for (std::size_t i = 0; i < spiked.size(); ++i) {
    EXPECT_EQ(spiked[i].accel, r.trace[i].accel);
    if (!(spiked[i].gyro == r.trace[i].gyro)) ++gyro_hits;
  }
  EXPECT_GE(gyro_hits, 5u);
}

TEST(Faults, BothChannelsSpreadsAcrossSensors) {
  const auto r = walking(32, 60.0);
  Rng rng(10);
  const auto spiked =
      imu::inject_spikes(r.trace, 40.0, 8.0, rng, imu::FaultChannels::Both);
  std::size_t accel_hits = 0;
  std::size_t gyro_hits = 0;
  for (std::size_t i = 0; i < spiked.size(); ++i) {
    if (!(spiked[i].accel == r.trace[i].accel)) ++accel_hits;
    if (!(spiked[i].gyro == r.trace[i].gyro)) ++gyro_hits;
  }
  // With a fair coin per spike and ~40 spikes, both sensors get hit.
  EXPECT_GE(accel_hits, 3u);
  EXPECT_GE(gyro_hits, 3u);
}

TEST(Faults, ClipGyroBoundsComponents) {
  const auto r = walking(33, 10.0);
  const double limit = 1.5;
  const auto clipped = imu::clip_gyro(r.trace, limit);
  for (const auto& s : clipped.samples()) {
    EXPECT_LE(std::abs(s.gyro.x), limit);
    EXPECT_LE(std::abs(s.gyro.y), limit);
    EXPECT_LE(std::abs(s.gyro.z), limit);
  }
  // Accelerations pass through untouched.
  for (std::size_t i = 0; i < clipped.size(); ++i) {
    EXPECT_EQ(clipped[i].accel, r.trace[i].accel);
  }
}

TEST(Faults, Preconditions) {
  const auto r = walking(25, 5.0);
  Rng rng(4);
  EXPECT_THROW(imu::inject_dropouts(r.trace, -1.0, 5, 10, rng),
               InvalidArgument);
  EXPECT_THROW(imu::inject_dropouts(r.trace, 1.0, 10, 5, rng),
               InvalidArgument);
  EXPECT_THROW(imu::clip_acceleration(r.trace, 0.0), InvalidArgument);
  EXPECT_THROW(imu::clip_gyro(r.trace, 0.0), InvalidArgument);
}

// --------------------------------------------------------------------------
// Robustness: the pipeline must degrade gracefully, not fall over.

TEST(FaultRobustness, CountingSurvivesModerateDropouts) {
  const auto r = walking(26);
  Rng rng(5);
  const auto faulty = imu::inject_dropouts(r.trace, 20.0, 3, 8, rng);
  core::PTrack tracker;
  const double truth = static_cast<double>(r.truth.step_count());
  const double counted = static_cast<double>(tracker.process(faulty).steps);
  EXPECT_NEAR(counted, truth, 0.15 * truth);
}

TEST(FaultRobustness, CountingSurvivesClipping) {
  // +-4g headroom clips only the sharpest wrist transients.
  const auto r = walking(27);
  const auto clipped = imu::clip_acceleration(r.trace, 4.0 * kGravity);
  core::PTrack tracker;
  const double truth = static_cast<double>(r.truth.step_count());
  const double counted = static_cast<double>(tracker.process(clipped).steps);
  EXPECT_NEAR(counted, truth, 0.15 * truth);
}

TEST(FaultRobustness, CountingSurvivesSpikes) {
  const auto r = walking(28);
  Rng rng(6);
  const auto spiked = imu::inject_spikes(r.trace, 30.0, 8.0, rng);
  core::PTrack tracker;
  const double truth = static_cast<double>(r.truth.step_count());
  const double counted = static_cast<double>(tracker.process(spiked).steps);
  EXPECT_NEAR(counted, truth, 0.2 * truth);
}

TEST(FaultRobustness, SpooferStillRejectedUnderFaults) {
  Rng rng(29);
  synth::UserProfile user;
  const auto r = synth::synthesize(
      synth::Scenario::interference(synth::ActivityKind::Spoofer, 60.0,
                                    synth::Posture::Standing),
      user, synth::SynthOptions{}, rng);
  Rng frng(7);
  const auto faulty = imu::inject_spikes(
      imu::inject_dropouts(r.trace, 10.0, 3, 6, frng), 10.0, 6.0, frng);
  core::PTrack tracker;
  EXPECT_LE(tracker.process(faulty).steps, 4u);
}
