// Tests for user-profile self-training (paper SIII-C2 reconstruction).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/ptrack.hpp"
#include "core/self_training.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult calibration_trace(const synth::UserProfile& user,
                                     std::uint64_t seed) {
  Rng rng(seed);
  // Mixed gait: stepping segments provide the direct bounce anchor.
  return synth::synthesize(synth::Scenario::mixed_gait(120.0), user,
                           synth::SynthOptions{}, rng);
}

}  // namespace

TEST(SelfTraining, LegLengthRecoveredWithTrueArm) {
  synth::UserProfile user;
  const auto cal = calibration_trace(user, 91);
  const double leg = core::train_leg_length(cal.trace, user.arm_length,
                                            cal.truth.total_distance());
  EXPECT_NEAR(leg, user.leg_length, 0.12);
}

TEST(SelfTraining, ArmLengthInPlausibleRange) {
  synth::UserProfile user;
  const auto cal = calibration_trace(user, 92);
  const double arm = core::train_arm_length(cal.trace);
  EXPECT_GE(arm, 0.5);
  EXPECT_LE(arm, 0.95);
  EXPECT_NEAR(arm, user.arm_length, 0.20);
}

TEST(SelfTraining, FullPassProducesConsistentDistance) {
  synth::UserProfile user;
  const auto cal = calibration_trace(user, 93);
  const core::SelfTrainingResult res =
      core::self_train(cal.trace, cal.truth.total_distance());
  EXPECT_GT(res.walking_cycles, 8u);
  // The trained profile reproduces the calibration distance closely.
  EXPECT_LT(res.leg_objective, 0.30);
}

TEST(SelfTraining, ThrowsWithoutWalking) {
  synth::UserProfile user;
  Rng rng(94);
  const auto idle = synth::synthesize(
      synth::Scenario::interference(synth::ActivityKind::Idle, 60.0,
                                    synth::Posture::Seated),
      user, synth::SynthOptions{}, rng);
  EXPECT_THROW(core::train_arm_length(idle.trace), Error);
}

TEST(SelfTraining, InvalidInputsThrow) {
  synth::UserProfile user;
  const auto cal = calibration_trace(user, 95);
  EXPECT_THROW(core::train_leg_length(cal.trace, 0.0, 100.0), InvalidArgument);
  EXPECT_THROW(core::train_leg_length(cal.trace, 0.7, -5.0), InvalidArgument);
  core::SelfTrainingConfig bad;
  bad.arm_min = 0.9;
  bad.arm_max = 0.5;
  EXPECT_THROW(core::train_arm_length(cal.trace, bad), InvalidArgument);
}

TEST(SelfTraining, TrainedProfileBeatsWildGuess) {
  synth::UserProfile user;
  const auto cal = calibration_trace(user, 96);
  const core::SelfTrainingResult trained =
      core::self_train(cal.trace, cal.truth.total_distance());

  // Evaluate both profiles on a fresh walk.
  Rng rng(97);
  const auto eval = synth::synthesize(synth::Scenario::pure_walking(60.0),
                                      user, synth::SynthOptions{}, rng);
  const auto distance_error = [&](double arm, double leg) {
    core::PTrackConfig cfg;
    cfg.stride.profile = {arm, leg, 2.0};
    core::PTrack tracker(cfg);
    const double d = tracker.process(eval.trace).distance();
    return std::abs(d - eval.truth.total_distance());
  };
  const double err_trained =
      distance_error(trained.arm_length, trained.leg_length);
  const double err_guess = distance_error(0.55, 0.70);  // a poor guess
  EXPECT_LT(err_trained, err_guess);
}
