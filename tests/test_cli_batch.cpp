// End-to-end batch-mode CLI test: a trace directory mixing healthy traces,
// a corrupt CSV (fails at load) and a nonphysical-values CSV (loads fine,
// throws in the pipeline) must still produce results for the healthy
// traces, list both failures, exit 0 by default and exit 2 under --strict.
//
// The binary under test is located via the PTRACK_CLI_PATH compile
// definition ($<TARGET_FILE:ptrack_cli>, resolved at generate time) and
// driven through std::system — the same code path a shell user exercises,
// exit codes and all.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "imu/trace_io.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

namespace fs = std::filesystem;

int run_cli(const std::string& args) {
  const std::string cmd = std::string(PTRACK_CLI_PATH) + " " + args;
  const int status = std::system(cmd.c_str());
#ifdef _WIN32
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_text(const fs::path& p, const std::string& text) {
  std::ofstream out(p);
  ASSERT_TRUE(out.is_open());
  out << text;
}

/// Builds the mixed directory: two healthy walks, one unparseable CSV, one
/// parseable CSV whose nonphysical magnitudes make PTrack::process throw.
/// `tag` keeps concurrently running tests (ctest -j) out of each other's
/// directories.
fs::path make_mixed_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() / ("ptrack_test_cli_batch_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);

  for (int i = 0; i < 2; ++i) {
    Rng rng(0xc11 + static_cast<std::uint64_t>(i));
    synth::UserProfile user;
    const auto scenario = synth::Scenario::pure_walking(20.0);
    const auto synth =
        synth::synthesize(scenario, user, synth::SynthOptions{}, rng);
    imu::save_csv(synth.trace,
                  (dir / ("walk_" + std::to_string(i) + ".csv")).string());
  }

  write_text(dir / "corrupt.csv", "t,ax\nnot,numbers\n");

  // Finite cells (the CSV boundary accepts it) but register-garbage
  // magnitudes: the quality layer declares the trace unusable and the
  // pipeline throws at process time.
  std::ostringstream poison;
  poison << "t,ax,ay,az,gx,gy,gz\n100,0,0,0,0,0,0\n";
  for (int i = 0; i < 256; ++i) {
    poison << (0.01 * i) << ",1e9,-1e9,1e9,1e9,1e9,-1e9\n";
  }
  write_text(dir / "poison.csv", poison.str());
  return dir;
}

}  // namespace

TEST(CliBatch, SkipsFailedTracesAndReportsThemInJson) {
  const fs::path dir = make_mixed_dir("json");
  const fs::path json = dir / "out.json";

  const int rc = run_cli("--batch " + dir.string() + " --threads 2 --quiet" +
                         " --json " + json.string() + " 2>/dev/null");
  EXPECT_EQ(rc, 0);  // default mode: failures are reported, not fatal

  const std::string doc = slurp(json);
  // Healthy traces made it through...
  EXPECT_NE(doc.find("walk_0.csv"), std::string::npos);
  EXPECT_NE(doc.find("walk_1.csv"), std::string::npos);
  EXPECT_NE(doc.find("\"clean_fraction\""), std::string::npos);
  // ...and both failures are attributed with their stage.
  EXPECT_NE(doc.find("\"errors\""), std::string::npos);
  EXPECT_NE(doc.find("corrupt.csv"), std::string::npos);
  EXPECT_NE(doc.find("poison.csv"), std::string::npos);
  EXPECT_NE(doc.find("\"load\""), std::string::npos);
  EXPECT_NE(doc.find("\"process\""), std::string::npos);

  fs::remove_all(dir);
}

TEST(CliBatch, StrictModeExitsTwoOnAnyFailure) {
  const fs::path dir = make_mixed_dir("strict");
  const int rc = run_cli("--batch " + dir.string() +
                         " --threads 2 --quiet --strict 2>/dev/null");
  EXPECT_EQ(rc, 2);
  fs::remove_all(dir);
}

TEST(CliBatch, CleanDirectoryIsStrictClean) {
  const fs::path dir = make_mixed_dir("clean");
  fs::remove(dir / "corrupt.csv");
  fs::remove(dir / "poison.csv");
  const int rc = run_cli("--batch " + dir.string() +
                         " --threads 2 --quiet --strict 2>/dev/null");
  EXPECT_EQ(rc, 0);
  fs::remove_all(dir);
}
