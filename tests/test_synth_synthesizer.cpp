// Unit tests for the full wrist-IMU synthesizer.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "imu/noise.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthOptions clean_options() {
  synth::SynthOptions opt;
  opt.noise = imu::noiseless();
  opt.random_mount = false;
  opt.attitude_leak = 0.0;
  return opt;
}

}  // namespace

TEST(Synthesizer, TraceSizeMatchesDuration) {
  Rng rng(1);
  synth::UserProfile user;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(10.0), user,
                                   clean_options(), rng);
  EXPECT_NEAR(static_cast<double>(r.trace.size()), 10.0 * 100.0, 5.0);
  EXPECT_DOUBLE_EQ(r.trace.fs(), 100.0);
  EXPECT_EQ(r.body_path.size(), r.trace.size());
}

TEST(Synthesizer, TruthSegmentsMatchScenario) {
  Rng rng(2);
  synth::UserProfile user;
  synth::Scenario scenario;
  scenario.walk(5.0).activity(synth::ActivityKind::Eating, 4.0).step(6.0);
  const auto r = synth::synthesize(scenario, user, clean_options(), rng);
  ASSERT_EQ(r.truth.segments.size(), 3u);
  EXPECT_EQ(r.truth.segments[0].kind, synth::ActivityKind::Walking);
  EXPECT_EQ(r.truth.segments[1].kind, synth::ActivityKind::Eating);
  EXPECT_EQ(r.truth.segments[2].kind, synth::ActivityKind::Stepping);
  EXPECT_DOUBLE_EQ(r.truth.segments[0].t_begin, 0.0);
  EXPECT_DOUBLE_EQ(r.truth.segments[1].t_begin, 5.0);
  EXPECT_DOUBLE_EQ(r.truth.segments[2].t_end, 15.0);
}

TEST(Synthesizer, StepsOnlyDuringGaitSegments) {
  Rng rng(3);
  synth::UserProfile user;
  synth::Scenario scenario;
  scenario.walk(8.0).activity(synth::ActivityKind::Poker, 8.0);
  const auto r = synth::synthesize(scenario, user, clean_options(), rng);
  EXPECT_GT(r.truth.steps_in(0.0, 8.0), 10u);
  EXPECT_EQ(r.truth.steps_in(8.0, 16.0), 0u);
}

TEST(Synthesizer, GravityBaselinePresent) {
  Rng rng(4);
  synth::UserProfile user;
  const auto r = synth::synthesize(
      synth::Scenario::interference(synth::ActivityKind::Idle, 5.0,
                                    synth::Posture::Seated),
      user, clean_options(), rng);
  const auto mag = r.trace.accel_magnitude();
  EXPECT_NEAR(stats::mean(mag), kGravity, 0.1);
}

TEST(Synthesizer, DeterministicGivenSeed) {
  synth::UserProfile user;
  Rng a(42);
  Rng b(42);
  const auto ra = synth::synthesize(synth::Scenario::pure_walking(5.0), user,
                                    synth::SynthOptions{}, a);
  const auto rb = synth::synthesize(synth::Scenario::pure_walking(5.0), user,
                                    synth::SynthOptions{}, b);
  ASSERT_EQ(ra.trace.size(), rb.trace.size());
  for (std::size_t i = 0; i < ra.trace.size(); ++i) {
    EXPECT_EQ(ra.trace[i].accel, rb.trace[i].accel);
  }
  EXPECT_EQ(ra.truth.step_count(), rb.truth.step_count());
}

TEST(Synthesizer, MountRotationPreservesMagnitude) {
  synth::UserProfile user;
  synth::SynthOptions mounted = clean_options();
  mounted.random_mount = true;
  Rng a(7);
  Rng b(7);
  const auto plain = synth::synthesize(synth::Scenario::pure_walking(6.0),
                                       user, clean_options(), a);
  const auto rotated =
      synth::synthesize(synth::Scenario::pure_walking(6.0), user, mounted, b);
  // A constant rotation cannot change the specific-force magnitude.
  const auto m0 = plain.trace.accel_magnitude();
  const auto m1 = rotated.trace.accel_magnitude();
  ASSERT_EQ(m0.size(), m1.size());
  for (std::size_t i = 0; i < m0.size(); ++i) {
    EXPECT_NEAR(m0[i], m1[i], 1e-6);
  }
}

TEST(Synthesizer, AttitudeLeakChangesChannelsNotEnergyMuch) {
  synth::UserProfile user;
  synth::SynthOptions leak = clean_options();
  leak.attitude_leak = 0.2;
  Rng a(9);
  Rng b(9);
  const auto plain = synth::synthesize(synth::Scenario::pure_walking(6.0),
                                       user, clean_options(), a);
  const auto leaked =
      synth::synthesize(synth::Scenario::pure_walking(6.0), user, leak, b);
  // The leak rotates the specific force per sample: magnitudes equal,
  // components differ.
  const auto m0 = plain.trace.accel_magnitude();
  const auto m1 = leaked.trace.accel_magnitude();
  double max_component_diff = 0.0;
  for (std::size_t i = 0; i < m0.size(); ++i) {
    EXPECT_NEAR(m0[i], m1[i], 1e-6);
    max_component_diff =
        std::max(max_component_diff,
                 (plain.trace[i].accel - leaked.trace[i].accel).norm());
  }
  EXPECT_GT(max_component_diff, 0.5);
}

TEST(Synthesizer, BodyPathAdvancesWhenWalking) {
  Rng rng(10);
  synth::UserProfile user;
  const auto r = synth::synthesize(synth::Scenario::pure_walking(10.0), user,
                                   clean_options(), rng);
  const double travel =
      (r.body_path.back() - r.body_path.front()).norm();
  EXPECT_NEAR(travel, user.speed * 10.0, 1.5);
}

TEST(Synthesizer, EmptyScenarioThrows) {
  Rng rng(1);
  synth::UserProfile user;
  EXPECT_THROW(
      synth::synthesize(synth::Scenario{}, user, synth::SynthOptions{}, rng),
      InvalidArgument);
}

TEST(Synthesizer, InvalidOptionsThrow) {
  Rng rng(1);
  synth::UserProfile user;
  synth::SynthOptions opt;
  opt.internal_fs = 50.0;  // below device_fs
  EXPECT_THROW(synth::synthesize(synth::Scenario::pure_walking(1.0), user, opt,
                                 rng),
               InvalidArgument);
}

TEST(Synthesizer, MultiSegmentContinuity) {
  // Accelerations at the segment seam must stay physical (no teleporting):
  // bounded by a generous multiple of gravity.
  Rng rng(11);
  synth::UserProfile user;
  synth::Scenario scenario;
  scenario.walk(5.0).activity(synth::ActivityKind::Eating, 5.0).walk(5.0);
  const auto r = synth::synthesize(scenario, user, clean_options(), rng);
  for (const auto& s : r.trace.samples()) {
    EXPECT_LT(s.accel.norm(), 6.0 * kGravity);
  }
}
