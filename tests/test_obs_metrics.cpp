// Tests for the observability metrics registry: counter/gauge/histogram
// semantics, the naming scheme, JSON snapshot shape (validated by parsing
// it back with common/json), the runtime kill switch, and — most
// importantly — the concurrency contract: many writer threads hammering
// sharded cells while a scraper aggregates. The hammer test is the one the
// TSan CI job exists for.
//
// The registry is a process-wide singleton shared by every test in this
// binary (and by the pipeline code some tests run), so each test uses its
// own `ptrack.test.*` metric names and asserts deltas, not absolutes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/metrics.hpp"

using namespace ptrack;

namespace {

/// Scrapes the registry into a parsed JSON document.
json::Value snapshot() {
  std::ostringstream os;
  json::Writer w(os);
  obs::Registry::instance().write_json(w);
  return json::parse(os.str());
}

}  // namespace

TEST(ObsMetrics, CounterAccumulates) {
  auto& c = obs::Registry::instance().counter("ptrack.test.counter_basic");
  const std::uint64_t before = c.value();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name returns the same handle.
  auto& again = obs::Registry::instance().counter("ptrack.test.counter_basic");
  EXPECT_EQ(&again, &c);
}

TEST(ObsMetrics, GaugeIsLastWriteWins) {
  auto& g = obs::Registry::instance().gauge("ptrack.test.gauge_basic");
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(ObsMetrics, HistogramBucketsObservations) {
  const double bounds[] = {10.0, 100.0, 1000.0};
  auto& h = obs::Registry::instance().histogram("ptrack.test.hist_basic",
                                                bounds);
  h.observe(5.0);     // bucket 0 (<= 10)
  h.observe(10.0);    // bucket 0 (boundary is inclusive)
  h.observe(50.0);    // bucket 1
  h.observe(5000.0);  // overflow
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 0u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 5065.0);
}

TEST(ObsMetrics, HistogramReboundsThrow) {
  const double bounds[] = {1.0, 2.0};
  obs::Registry::instance().histogram("ptrack.test.hist_rebound", bounds);
  const double other[] = {1.0, 3.0};
  EXPECT_THROW(obs::Registry::instance().histogram("ptrack.test.hist_rebound",
                                                   other),
               InvalidArgument);
  // Identical bounds are fine (same call site pattern after reset()).
  EXPECT_NO_THROW(obs::Registry::instance().histogram(
      "ptrack.test.hist_rebound", bounds));
}

TEST(ObsMetrics, NameSchemeIsEnforced) {
  auto& reg = obs::Registry::instance();
  EXPECT_THROW(reg.counter(""), InvalidArgument);
  EXPECT_THROW(reg.counter("bad"), InvalidArgument);
  EXPECT_THROW(reg.counter("ptrack.x"), InvalidArgument);       // 2 segments
  EXPECT_THROW(reg.counter("other.layer.name"), InvalidArgument);
  EXPECT_THROW(reg.counter("ptrack.Test.upper"), InvalidArgument);
  EXPECT_THROW(reg.counter("ptrack..empty_seg"), InvalidArgument);
  EXPECT_THROW(reg.counter("ptrack.test.trailing."), InvalidArgument);
  EXPECT_THROW(reg.gauge("ptrack.test.sp ace"), InvalidArgument);
  EXPECT_NO_THROW(reg.counter("ptrack.test.ok_name_1"));
  EXPECT_NO_THROW(reg.counter("ptrack.test.deep.ok"));
}

TEST(ObsMetrics, SnapshotJsonParsesAndMatchesValues) {
  auto& reg = obs::Registry::instance();
  auto& c = reg.counter("ptrack.test.snap_counter");
  const double base = static_cast<double>(c.value());
  c.inc(7);
  reg.gauge("ptrack.test.snap_gauge").set(1.5);
  const double bounds[] = {10.0};
  auto& h = reg.histogram("ptrack.test.snap_hist", bounds);
  h.observe(3.0);
  h.observe(30.0);

  const json::Value v = snapshot();
  EXPECT_DOUBLE_EQ(
      v.at("counters").at("ptrack.test.snap_counter").as_number(), base + 7);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("ptrack.test.snap_gauge").as_number(),
                   1.5);
  const json::Value& hist = v.at("histograms").at("ptrack.test.snap_hist");
  EXPECT_GE(hist.at("count").as_number(), 2.0);
  EXPECT_GE(hist.at("overflow").as_number(), 1.0);
  const auto& buckets = hist.at("buckets").items();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(buckets[0].at("le").as_number(), 10.0);
  EXPECT_GE(buckets[0].at("count").as_number(), 1.0);
}

TEST(ObsMetrics, MacrosRespectRuntimeKillSwitch) {
  auto& c = obs::Registry::instance().counter("ptrack.test.kill_switch");
  const std::uint64_t before = c.value();

  obs::set_enabled(false);
  PTRACK_COUNT("ptrack.test.kill_switch");
  EXPECT_EQ(c.value(), before);  // no-op while disabled

  obs::set_enabled(true);
  PTRACK_COUNT("ptrack.test.kill_switch");
  PTRACK_COUNT_N("ptrack.test.kill_switch", 4);
#if PTRACK_OBS_ENABLED
  EXPECT_EQ(c.value(), before + 5);
#else
  EXPECT_EQ(c.value(), before);  // compiled out entirely
#endif
}

TEST(ObsMetrics, ResetZeroesEverything) {
  auto& reg = obs::Registry::instance();
  auto& c = reg.counter("ptrack.test.reset_counter");
  c.inc(9);
  const double bounds[] = {1.0};
  auto& h = reg.histogram("ptrack.test.reset_hist", bounds);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().sum, 0.0);
}

// The TSan target: writers on every shard plus a concurrent scraper. The
// assertions are deliberately weak while threads run (monotone growth,
// bucket-sum consistency is only checked after the join) — the point is
// that the interleaving itself is clean under the sanitizer.
TEST(ObsMetrics, ConcurrentHammerWithScraper) {
  auto& reg = obs::Registry::instance();
  auto& c = reg.counter("ptrack.test.hammer_counter");
  const double bounds[] = {10.0, 100.0};
  auto& h = reg.histogram("ptrack.test.hammer_hist", bounds);
  auto& g = reg.gauge("ptrack.test.hammer_gauge");
  const std::uint64_t c_before = c.value();
  const std::uint64_t h_before = h.snapshot().count;

  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kIters = 20000;
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    std::uint64_t last = c_before;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t now = c.value();
      EXPECT_GE(now, last);  // monotone even mid-flight
      last = now;
      std::ostringstream os;
      json::Writer w(os);
      reg.write_json(w);  // full scrape concurrent with writers
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(static_cast<double>((i + t) % 200));
        if (i % 1024 == 0) g.set(static_cast<double>(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  // Writers joined: sums are exact now.
  EXPECT_EQ(c.value(), c_before + kThreads * kIters);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, h_before + kThreads * kIters);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t n : s.counts) bucket_sum += n;
  EXPECT_EQ(bucket_sum, s.count);
}
