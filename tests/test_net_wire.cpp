// Wire-protocol unit tests: payload codec round trips, the FrameDecoder's
// strict bounded parsing (truncation/resume, oversize, bad magic/version,
// nonzero flags, unknown types) and its poison-permanently contract.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/types.hpp"
#include "imu/sample.hpp"
#include "net/wire.hpp"

using namespace ptrack;
using namespace ptrack::net;

namespace {

std::vector<imu::Sample> make_samples(std::size_t n) {
  std::vector<imu::Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    imu::Sample s;
    s.accel = {0.1 * x, -0.2 * x, 9.81 + 0.01 * x};
    s.gyro = {0.001 * x, -0.002 * x, 0.003 * x};
    out.push_back(s);
  }
  return out;
}

std::vector<core::StepEvent> make_events(std::size_t n) {
  std::vector<core::StepEvent> out;
  for (std::size_t i = 0; i < n; ++i) {
    core::StepEvent e;
    e.t = 0.51 * static_cast<double>(i + 1);
    e.stride = 0.7 + 0.001 * static_cast<double>(i);
    e.quality = 1.0 - 0.03125 * static_cast<double>(i % 8);  // f32-exact
    e.type = i % 2 == 0 ? core::GaitType::Walking : core::GaitType::Stepping;
    e.degraded = i % 3 == 0;
    out.push_back(e);
  }
  return out;
}

/// Decodes exactly one frame out of `bytes` and asserts nothing trails it.
Frame decode_one(FrameDecoder& dec, const std::vector<std::uint8_t>& bytes) {
  dec.feed(bytes);
  Frame frame;
  EXPECT_EQ(dec.next(frame), DecodeStatus::kFrame);
  Frame trailing;
  EXPECT_EQ(dec.next(trailing), DecodeStatus::kNeedMore);
  return frame;
}

}  // namespace

TEST(NetWire, HelloRoundTrip) {
  std::vector<std::uint8_t> bytes;
  append_hello(bytes, Hello{0xDEADBEEFCAFE1234ull, 104.0, 1});
  FrameDecoder dec;
  const Frame frame = decode_one(dec, bytes);
  EXPECT_EQ(frame.type, FrameType::kHello);
  Hello hello;
  ASSERT_TRUE(parse_hello(frame.payload, hello));
  EXPECT_EQ(hello.session_id, 0xDEADBEEFCAFE1234ull);
  EXPECT_DOUBLE_EQ(hello.fs, 104.0);
  EXPECT_EQ(hello.precision, 1);
}

TEST(NetWire, HelloRejectsNonzeroReservedBytes) {
  std::vector<std::uint8_t> bytes;
  append_hello(bytes, Hello{1, 100.0, 0});
  bytes.back() = 0x5A;  // last reserved byte
  FrameDecoder dec;
  const Frame frame = decode_one(dec, bytes);
  Hello hello;
  EXPECT_FALSE(parse_hello(frame.payload, hello));
}

TEST(NetWire, HelloAckRoundTrip) {
  std::vector<std::uint8_t> bytes;
  HelloAck ack;
  ack.session_id = 42;
  ack.max_samples_per_frame = 1024;
  ack.version = kProtocolVersion;
  append_hello_ack(bytes, ack);
  FrameDecoder dec;
  const Frame frame = decode_one(dec, bytes);
  EXPECT_EQ(frame.type, FrameType::kHelloAck);
  HelloAck parsed;
  ASSERT_TRUE(parse_hello_ack(frame.payload, parsed));
  EXPECT_EQ(parsed.session_id, 42u);
  EXPECT_EQ(parsed.max_samples_per_frame, 1024u);
  EXPECT_EQ(parsed.version, static_cast<std::uint32_t>(kProtocolVersion));
}

TEST(NetWire, SamplesRoundTripBitExact) {
  const auto samples = make_samples(37);
  std::vector<std::uint8_t> bytes;
  append_samples(bytes, samples);
  FrameDecoder dec;
  const Frame frame = decode_one(dec, bytes);
  EXPECT_EQ(frame.type, FrameType::kSamples);
  SampleBlockView block;
  ASSERT_TRUE(parse_samples(frame.payload, block));
  ASSERT_EQ(block.count, 37u);
  for (std::size_t i = 0; i < block.count; ++i) {
    const imu::Sample s = sample_at(block, i);
    EXPECT_EQ(s.accel.x, samples[i].accel.x);
    EXPECT_EQ(s.accel.y, samples[i].accel.y);
    EXPECT_EQ(s.accel.z, samples[i].accel.z);
    EXPECT_EQ(s.gyro.x, samples[i].gyro.x);
    EXPECT_EQ(s.gyro.y, samples[i].gyro.y);
    EXPECT_EQ(s.gyro.z, samples[i].gyro.z);
    EXPECT_EQ(s.t, 0.0);  // the receiving session owns the time base
  }
}

TEST(NetWire, SamplesCountMismatchRejected) {
  const auto samples = make_samples(4);
  std::vector<std::uint8_t> bytes;
  append_samples(bytes, samples);
  // Flip the count field (first payload byte after the 12-byte header).
  bytes[kHeaderBytes] = 5;
  FrameDecoder dec;
  dec.feed(bytes);
  Frame frame;
  ASSERT_EQ(dec.next(frame), DecodeStatus::kFrame);
  SampleBlockView block;
  EXPECT_FALSE(parse_samples(frame.payload, block));
}

TEST(NetWire, EventsRoundTrip) {
  const auto events = make_events(9);
  std::vector<std::uint8_t> bytes;
  append_events(bytes, events);
  FrameDecoder dec;
  const Frame frame = decode_one(dec, bytes);
  EXPECT_EQ(frame.type, FrameType::kEvent);
  std::vector<core::StepEvent> parsed;
  ASSERT_TRUE(parse_events(frame.payload, parsed));
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].t, events[i].t);            // f64 on the wire
    EXPECT_EQ(parsed[i].stride, events[i].stride);  // f64 on the wire
    EXPECT_EQ(static_cast<float>(parsed[i].quality),
              static_cast<float>(events[i].quality));  // f32 on the wire
    EXPECT_EQ(parsed[i].type, events[i].type);
    EXPECT_EQ(parsed[i].degraded, events[i].degraded);
  }
}

TEST(NetWire, ErrorRoundTrip) {
  std::vector<std::uint8_t> bytes;
  append_error(bytes, ErrorCode::kOverloaded, 7, "come back later");
  FrameDecoder dec;
  const Frame frame = decode_one(dec, bytes);
  EXPECT_EQ(frame.type, FrameType::kError);
  WireError err;
  ASSERT_TRUE(parse_error(frame.payload, err));
  EXPECT_EQ(err.code, ErrorCode::kOverloaded);
  EXPECT_EQ(err.retry_after_s, 7);
  EXPECT_EQ(err.detail, "come back later");
}

TEST(NetWire, DrainedRoundTrip) {
  std::vector<std::uint8_t> bytes;
  append_drained(bytes, Drained{123, 456789});
  FrameDecoder dec;
  const Frame frame = decode_one(dec, bytes);
  Drained d;
  ASSERT_TRUE(parse_drained(frame.payload, d));
  EXPECT_EQ(d.events_total, 123u);
  EXPECT_EQ(d.samples_total, 456789u);
}

TEST(NetWire, DecoderResumesAcrossArbitrarySplits) {
  // One HELLO + one SAMPLES frame, fed a byte at a time: every prefix is
  // kNeedMore, the full stream yields exactly the two frames.
  std::vector<std::uint8_t> bytes;
  append_hello(bytes, Hello{9, 128.0, 0});
  append_samples(bytes, make_samples(3));
  FrameDecoder dec;
  std::size_t frames = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    dec.feed({&bytes[i], 1});
    Frame frame;
    while (dec.next(frame) == DecodeStatus::kFrame) {
      ++frames;
      EXPECT_EQ(frame.type,
                frames == 1 ? FrameType::kHello : FrameType::kSamples);
    }
    if (i + 1 < bytes.size()) {
      EXPECT_EQ(dec.error(), ErrorCode::kNone);
    }
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_EQ(dec.buffered(), 0u);
  EXPECT_FALSE(dec.mid_frame());
}

TEST(NetWire, MidFrameReportsTricklingPayload) {
  std::vector<std::uint8_t> bytes;
  append_samples(bytes, make_samples(8));
  FrameDecoder dec;
  EXPECT_FALSE(dec.mid_frame());
  dec.feed({bytes.data(), kHeaderBytes + 5});  // header + partial payload
  Frame frame;
  EXPECT_EQ(dec.next(frame), DecodeStatus::kNeedMore);
  EXPECT_TRUE(dec.mid_frame());
  dec.feed({bytes.data() + kHeaderBytes + 5, bytes.size() - kHeaderBytes - 5});
  EXPECT_EQ(dec.next(frame), DecodeStatus::kFrame);
  EXPECT_FALSE(dec.mid_frame());
}

TEST(NetWire, BadMagicPoisons) {
  std::vector<std::uint8_t> bytes;
  append_bye(bytes);
  bytes[0] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(bytes);
  Frame frame;
  EXPECT_EQ(dec.next(frame), DecodeStatus::kError);
  EXPECT_EQ(dec.error(), ErrorCode::kBadMagic);
}

TEST(NetWire, BadVersionPoisons) {
  std::vector<std::uint8_t> bytes;
  append_bye(bytes);
  bytes[4] = 99;
  FrameDecoder dec;
  dec.feed(bytes);
  Frame frame;
  EXPECT_EQ(dec.next(frame), DecodeStatus::kError);
  EXPECT_EQ(dec.error(), ErrorCode::kBadVersion);
}

TEST(NetWire, NonzeroFlagsPoison) {
  std::vector<std::uint8_t> bytes;
  append_bye(bytes);
  bytes[6] = 1;
  FrameDecoder dec;
  dec.feed(bytes);
  Frame frame;
  EXPECT_EQ(dec.next(frame), DecodeStatus::kError);
  EXPECT_EQ(dec.error(), ErrorCode::kMalformedFrame);
}

TEST(NetWire, UnknownTypePoisons) {
  std::vector<std::uint8_t> bytes;
  append_bye(bytes);
  bytes[5] = 0x7F;
  FrameDecoder dec;
  dec.feed(bytes);
  Frame frame;
  EXPECT_EQ(dec.next(frame), DecodeStatus::kError);
  EXPECT_EQ(dec.error(), ErrorCode::kMalformedFrame);
}

TEST(NetWire, OversizedPayloadLengthPoisons) {
  std::vector<std::uint8_t> bytes;
  append_bye(bytes);
  const std::uint32_t too_big =
      static_cast<std::uint32_t>(kMaxPayloadBytes + 1);
  for (std::size_t i = 0; i < 4; ++i) {  // little-endian length field
    bytes[8 + i] = static_cast<std::uint8_t>((too_big >> (8 * i)) & 0xFF);
  }
  FrameDecoder dec;
  dec.feed(bytes);
  Frame frame;
  EXPECT_EQ(dec.next(frame), DecodeStatus::kError);
  EXPECT_EQ(dec.error(), ErrorCode::kOversizedFrame);
}

TEST(NetWire, PoisonIsPermanent) {
  std::vector<std::uint8_t> bad;
  append_bye(bad);
  bad[0] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(bad);
  Frame frame;
  ASSERT_EQ(dec.next(frame), DecodeStatus::kError);
  // A perfectly valid frame afterwards must NOT resynchronize the stream.
  std::vector<std::uint8_t> good;
  append_bye(good);
  dec.feed(good);
  EXPECT_EQ(dec.next(frame), DecodeStatus::kError);
  EXPECT_EQ(dec.error(), ErrorCode::kBadMagic);
}

TEST(NetWire, FeedBeyondCapacityPoisonsInsteadOfGrowing) {
  FrameDecoder dec(/*max_payload=*/64, /*read_chunk_hint=*/16);
  // An undisciplined owner feeding far past header+max_payload+chunk.
  const std::vector<std::uint8_t> blob(1024, 0xAB);
  dec.feed(blob);
  Frame frame;
  EXPECT_EQ(dec.next(frame), DecodeStatus::kError);
  EXPECT_EQ(dec.error(), ErrorCode::kOversizedFrame);
}

TEST(NetWire, ToStringCoversAllCodes) {
  for (std::uint16_t c = 0;
       c <= static_cast<std::uint16_t>(ErrorCode::kShuttingDown); ++c) {
    EXPECT_STRNE(to_string(static_cast<ErrorCode>(c)), "unknown");
  }
  EXPECT_STRNE(to_string(FrameType::kHello), "unknown");
  EXPECT_STRNE(to_string(FrameType::kDrained), "unknown");
}
