// Behavior of the PTRACK_CHECK contract layer (src/common/check.hpp) and a
// sample of the invariants threaded through the libraries. The macro tests
// adapt to the build's contract mode via ptrack::checks_enabled(), so this
// file passes in every configuration (Debug, sanitizer, Release).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/error.hpp"
#include "core/critical_points.hpp"
#include "core/offset_metric.hpp"
#include "dsp/workspace.hpp"

namespace {

using namespace ptrack;

TEST(ContractMacro, PassingCheckIsSilent) {
  EXPECT_NO_THROW(PTRACK_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(PTRACK_CHECK_MSG(true, "never shown"));
}

TEST(ContractMacro, FailingCheckThrowsWhenEnabled) {
  if constexpr (checks_enabled()) {
    EXPECT_THROW(PTRACK_CHECK(false), InvariantViolation);
    EXPECT_THROW(PTRACK_CHECK_MSG(false, "broken"), InvariantViolation);
  } else {
    EXPECT_NO_THROW(PTRACK_CHECK(false));
    EXPECT_NO_THROW(PTRACK_CHECK_MSG(false, "broken"));
  }
}

TEST(ContractMacro, MessageCarriesExpressionAndLocation) {
  if constexpr (!checks_enabled()) GTEST_SKIP() << "checks compiled out";
  try {
    PTRACK_CHECK_MSG(2 < 1, "two is not less than one");
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos)
        << what;
  }
}

TEST(ContractMacro, DisabledChecksDoNotEvaluateTheCondition) {
  // The condition must be side-effect free by contract; verify the macro
  // keeps that promise when compiled out, and evaluates exactly once when
  // compiled in.
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  PTRACK_CHECK(touch());
  EXPECT_EQ(evaluations, checks_enabled() ? 1 : 0);
}

TEST(ContractsInLibraries, UnsortedCriticalPointsAreCaught) {
  if constexpr (!checks_enabled()) GTEST_SKIP() << "checks compiled out";
  // cycle_offset's weighting assumes time-ordered points; feed it a
  // deliberately unsorted set and expect the contract to fire instead of a
  // silent size_t underflow in the gap computation.
  const std::vector<core::CriticalPoint> unsorted = {
      {40, core::CriticalKind::Maximum}, {10, core::CriticalKind::Minimum}};
  const std::vector<core::CriticalPoint> anterior = {
      {5, core::CriticalKind::Maximum}};
  EXPECT_THROW((void)core::cycle_offset(unsorted, anterior, 100),
               InvariantViolation);
}

TEST(ContractsInLibraries, WeightedOffsetStaysNormalized) {
  // Dense, ordered point sets: the weighted Eq. (1) score must stay within
  // [0, 1] (the contract inside cycle_offset double-checks this on every
  // call made by the suite).
  std::vector<core::CriticalPoint> vertical;
  std::vector<core::CriticalPoint> anterior;
  for (std::size_t i = 0; i < 50; ++i) {
    vertical.push_back({2 * i, core::CriticalKind::Maximum});
    anterior.push_back({2 * i + 1, core::CriticalKind::Minimum});
  }
  const double offset = core::cycle_offset(vertical, anterior, 100);
  EXPECT_GE(offset, 0.0);
  EXPECT_LE(offset, 1.0);
}

TEST(ContractsInLibraries, WorkspaceRejectsNonPowerOfTwoPlan) {
  dsp::Workspace ws;
  EXPECT_THROW((void)ws.fft_plan(12), InvalidArgument);
  EXPECT_NO_THROW((void)ws.fft_plan(16));
}

}  // namespace
