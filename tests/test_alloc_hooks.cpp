// Unit contract of the allocation-discipline instrumentation
// (common/alloc_hooks.hpp): per-thread counters move with operator
// new/delete, live gauges balance, and NoAllocScope counts — or, when
// enforcement is armed, throws at the offending allocation site.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/alloc_hooks.hpp"
#include "common/error.hpp"

using namespace ptrack;

namespace {

// Forces a genuine heap round-trip the optimizer cannot elide.
void churn_heap(std::size_t n) {
  auto p = std::make_unique<volatile std::uint8_t[]>(n);
  p[0] = 1;
  p[n - 1] = p[0];
}

}  // namespace

TEST(AllocHooks, ThreadCountersMoveWithNewAndDelete) {
  if (!alloc::hooks_enabled()) GTEST_SKIP() << "hooks compiled out";
  const alloc::ThreadStats before = alloc::thread_stats();
  churn_heap(512);
  const alloc::ThreadStats after = alloc::thread_stats();
  EXPECT_GE(after.allocations, before.allocations + 1);
  EXPECT_GE(after.deallocations, before.deallocations + 1);
  EXPECT_GE(after.bytes, before.bytes + 512);
}

TEST(AllocHooks, LiveGaugesBalance) {
  if (!alloc::hooks_enabled()) GTEST_SKIP() << "hooks compiled out";
  const std::uint64_t live_before = alloc::live_allocations();
  {
    auto p = std::make_unique<volatile std::uint8_t[]>(1024);
    p[0] = 1;
    EXPECT_GE(alloc::live_allocations(), live_before + 1);
    EXPECT_GE(alloc::live_bytes(), 1024u);
  }
  // The matching delete returns the block: live count falls back.
  EXPECT_EQ(alloc::live_allocations(), live_before);
}

TEST(AllocHooks, CountingScopeObservesAllocations) {
  if (!alloc::hooks_enabled()) GTEST_SKIP() << "hooks compiled out";
  alloc::NoAllocScope scope("test-count", alloc::NoAllocScope::Mode::kCount);
  EXPECT_EQ(scope.observed(), 0u);
  churn_heap(256);
  EXPECT_GE(scope.observed(), 1u);
}

TEST(AllocHooks, CountingScopeNeverThrows) {
  alloc::NoAllocScope scope("test-count-quiet");
  std::vector<int> v(4096, 7);  // allocations are fine in kCount mode
  EXPECT_EQ(v.back(), 7);
}

TEST(AllocHooks, EnforcedScopeThrowsAtTheAllocationSite) {
  if (!alloc::NoAllocScope::enforcement_available()) {
    GTEST_SKIP() << "hooks or contract checks compiled out";
  }
  alloc::NoAllocScope scope("test-enforce",
                            alloc::NoAllocScope::Mode::kEnforce);
  EXPECT_THROW(churn_heap(128), InvariantViolation);
}

TEST(AllocHooks, EnforcedScopeDisarmsOnExit) {
  if (!alloc::NoAllocScope::enforcement_available()) {
    GTEST_SKIP() << "hooks or contract checks compiled out";
  }
  {
    alloc::NoAllocScope scope("test-enforce-exit",
                              alloc::NoAllocScope::Mode::kEnforce);
    EXPECT_THROW(churn_heap(128), InvariantViolation);
  }
  EXPECT_NO_THROW(churn_heap(128));
}

TEST(AllocHooks, NestedScopesStayArmed) {
  if (!alloc::NoAllocScope::enforcement_available()) {
    GTEST_SKIP() << "hooks or contract checks compiled out";
  }
  alloc::NoAllocScope outer("outer", alloc::NoAllocScope::Mode::kEnforce);
  {
    alloc::NoAllocScope inner("inner", alloc::NoAllocScope::Mode::kEnforce);
    EXPECT_THROW(churn_heap(64), InvariantViolation);
  }
  // The outer scope still enforces after the inner one unwinds.
  EXPECT_THROW(churn_heap(64), InvariantViolation);
}
