// Float32 streaming fast path vs. the batch-double oracle.
//
// StreamingConfig::precision == kFloat32 swaps the per-hop projection
// frontend onto the f32 SIMD kernels (core::Precision); everything
// downstream of projection stays double. The accuracy contract is that the
// f32 stream's events track the *batch double* pipeline within the same
// envelope the double incremental stream already meets, plus float
// rounding in the projections and zero-phase filters — which moves event
// *times* by at most a sample or two and strides by well under a percent.
// Tolerances below encode that envelope:
//   - event count within 8% + 2 of the oracle (the double stream's gate);
//   - >= 90% of events within 60 ms of an oracle event (same gate);
//   - total distance within 10% + 1 m of the oracle (same gate);
//   - f32 vs. double *streams* agree to within 2 events and 2% + 0.5 m of
//     distance — the pure precision delta, tighter than the seam envelope.
// The sweep reuses the scenario set of test_streaming_equivalence.cpp:
// walking, stepping, mixed gait, interference (expect quiet) and a faulted
// walking trace with dropouts and clipping through the quality layer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/ptrack.hpp"
#include "core/streaming.hpp"
#include "imu/faults.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct NamedTrace {
  std::string name;
  imu::Trace trace;
  bool expect_quiet = false;  ///< interference: the oracle emits ~nothing
};

std::vector<NamedTrace> scenarios() {
  synth::UserProfile user;
  const auto make = [&](const synth::Scenario& sc, std::uint64_t seed) {
    Rng rng(seed);
    return synth::synthesize(sc, user, synth::SynthOptions{}, rng).trace;
  };
  std::vector<NamedTrace> out;
  out.push_back({"walking", make(synth::Scenario::pure_walking(45.0), 701)});
  out.push_back({"stepping", make(synth::Scenario::pure_stepping(45.0), 702)});
  out.push_back({"mixed", make(synth::Scenario::mixed_gait(60.0), 703)});
  out.push_back({"interference",
                 make(synth::Scenario::interference(synth::ActivityKind::Gaming,
                                                    45.0,
                                                    synth::Posture::Standing),
                      704),
                 /*expect_quiet=*/true});
  {
    imu::Trace faulty = make(synth::Scenario::pure_walking(45.0), 705);
    Rng rng(706);
    faulty = imu::inject_dropouts(faulty, 4.0, 10, 60, rng);
    faulty = imu::clip_acceleration(faulty, 25.0);
    out.push_back({"faulted", std::move(faulty)});
  }
  return out;
}

core::StreamingConfig base_config(core::Precision precision) {
  synth::UserProfile user;
  core::StreamingConfig cfg;
  cfg.pipeline.stride.profile = {user.arm_length, user.leg_length, 2.0};
  cfg.precision = precision;
  return cfg;
}

std::vector<core::StepEvent> run_stream(const imu::Trace& trace,
                                        const core::StreamingConfig& cfg) {
  core::StreamingTracker stream(trace.fs(), cfg);
  std::vector<core::StepEvent> events;
  std::size_t i = 0, chunk = 137;
  while (i < trace.size()) {
    const std::size_t n = std::min(chunk, trace.size() - i);
    for (std::size_t j = 0; j < n; ++j) stream.push(trace[i + j]);
    i += n;
    chunk = chunk == 137 ? 411 : 137;
    for (const auto& e : stream.poll()) events.push_back(e);
  }
  for (const auto& e : stream.finish()) events.push_back(e);
  return events;
}

double total_distance(const std::vector<core::StepEvent>& events) {
  double d = 0.0;
  for (const auto& e : events) d += e.stride;
  return d;
}

}  // namespace

class Float32Oracle : public ::testing::TestWithParam<double> {};

TEST_P(Float32Oracle, TracksBatchDoubleAcrossScenarios) {
  const double hop_s = GetParam();
  for (const NamedTrace& s : scenarios()) {
    SCOPED_TRACE(s.name);
    core::StreamingConfig cfg = base_config(core::Precision::kFloat32);
    cfg.hop_s = hop_s;

    core::PTrack batch(cfg.pipeline);
    const core::TrackResult oracle = batch.process(s.trace);
    const auto events = run_stream(s.trace, cfg);

    // Chronological, never retracted, never duplicated.
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_GT(events[i].t, events[i - 1].t);
    }
    const double b = static_cast<double>(oracle.events.size());
    EXPECT_NEAR(static_cast<double>(events.size()), b, 0.08 * b + 2.0);
    if (s.expect_quiet) {
      EXPECT_LE(events.size(), oracle.events.size() + 2);
      continue;
    }
    std::size_t matched = 0;
    for (const core::StepEvent& e : events) {
      for (const core::StepEvent& o : oracle.events) {
        if (std::abs(o.t - e.t) <= 0.06) {
          ++matched;
          break;
        }
      }
    }
    EXPECT_GE(static_cast<double>(matched),
              0.9 * static_cast<double>(events.size()));
    EXPECT_NEAR(total_distance(events), total_distance(oracle.events),
                0.10 * total_distance(oracle.events) + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(HopSweep, Float32Oracle,
                         ::testing::Values(1.0, 2.0),
                         [](const auto& pinfo) {
                           return "hop_" +
                                  std::to_string(static_cast<int>(
                                      pinfo.param * 10.0)) +
                                  "ds";
                         });

TEST(Float32Stream, StaysCloseToDoubleStream) {
  // The pure precision delta, isolated: identical hops, identical seams,
  // only the projection arithmetic differs. Much tighter than the
  // batch-oracle envelope.
  for (const NamedTrace& s : scenarios()) {
    SCOPED_TRACE(s.name);
    const auto f32 =
        run_stream(s.trace, base_config(core::Precision::kFloat32));
    const auto f64 =
        run_stream(s.trace, base_config(core::Precision::kDouble));
    EXPECT_NEAR(static_cast<double>(f32.size()),
                static_cast<double>(f64.size()), 2.0);
    EXPECT_NEAR(total_distance(f32), total_distance(f64),
                0.02 * std::abs(total_distance(f64)) + 0.5);
  }
}

TEST(Float32Stream, DeterministicAcrossRuns) {
  // Same stream twice -> bit-identical events (the f32 path shares the
  // double pipeline's no-hidden-state property).
  synth::UserProfile user;
  Rng rng(710);
  const auto r = synth::synthesize(synth::Scenario::pure_walking(40.0), user,
                                   synth::SynthOptions{}, rng);
  const core::StreamingConfig cfg = base_config(core::Precision::kFloat32);
  const auto a = run_stream(r.trace, cfg);
  const auto b = run_stream(r.trace, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(a[i].stride, b[i].stride);
  }
}

TEST(Float32Stream, RejectsUnsupportedConfigurations) {
  // No f32 recompute baseline (it re-runs the double batch pipeline by
  // definition) and no f32 attitude-filter path (double-only).
  {
    core::StreamingConfig cfg = base_config(core::Precision::kFloat32);
    cfg.mode = core::StreamingConfig::Mode::kRecompute;
    EXPECT_THROW(core::StreamingTracker(100.0, cfg), InvalidArgument);
  }
  {
    core::StreamingConfig cfg = base_config(core::Precision::kFloat32);
    cfg.pipeline.counter.use_attitude_filter = true;
    EXPECT_THROW(core::StreamingTracker(100.0, cfg), InvalidArgument);
  }
}
