// Ingest-server integration tests over real Unix domain sockets: healthy
// round trips checked bit-for-bit (at wire precision) against a local
// StreamingTracker oracle, the chaos soak (faulty clients must not harm
// healthy neighbors and every session must be reclaimed), admission
// shedding, slow-consumer eviction, stall eviction, and the graceful
// server-initiated drain.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/streaming.hpp"
#include "net/chaos.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;
using namespace ptrack::net;

namespace {

imu::Trace walking_trace(double seconds, std::uint64_t seed) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(synth::Scenario::pure_walking(seconds), user,
                           synth::SynthOptions{}, rng)
      .trace;
}

/// What a healthy client must receive: the same pipeline run locally,
/// never polled until the end so one drain captures every event.
std::vector<core::StepEvent> oracle_events(const imu::Trace& trace,
                                           const core::StreamingConfig& cfg) {
  core::StreamingTracker tracker(trace.fs(), cfg);
  for (const imu::Sample& s : trace.samples()) tracker.push(s);
  std::vector<core::StepEvent> out;
  tracker.drain_into(out);
  return out;
}

/// Wire precision: t/stride travel as f64 (exact), quality as f32.
void expect_wire_equal(const std::vector<core::StepEvent>& wire,
                       const std::vector<core::StepEvent>& oracle) {
  ASSERT_EQ(wire.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(wire[i].t, oracle[i].t) << "event " << i;
    EXPECT_EQ(wire[i].stride, oracle[i].stride) << "event " << i;
    EXPECT_EQ(static_cast<float>(wire[i].quality),
              static_cast<float>(oracle[i].quality))
        << "event " << i;
    EXPECT_EQ(wire[i].type, oracle[i].type) << "event " << i;
    EXPECT_EQ(wire[i].degraded, oracle[i].degraded) << "event " << i;
  }
}

template <typename Pred>
bool wait_for(Pred pred, double timeout_s) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < timeout_s) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// Server on a private UDS path + its reactor thread, torn down with the
/// fixture. request_stop in the destructor keeps failures from hanging.
/// with_admin additionally binds the read-only telemetry listener so soak
/// tests can scrape the server while it is under fire.
struct ServerRunner {
  Server server;
  Endpoint ep;
  Endpoint admin_ep;
  std::thread thread;

  ServerRunner(ServerConfig cfg, const std::string& name,
               bool with_admin = false)
      : server(std::move(cfg)),
        ep(Endpoint::uds("/tmp/ptsrv_" + std::to_string(::getpid()) + "_" +
                         name + ".sock")),
        admin_ep(Endpoint::uds("/tmp/ptsrv_" + std::to_string(::getpid()) +
                               "_" + name + ".admin.sock")) {
    server.listen(ep);
    if (with_admin) server.listen_admin(admin_ep);
    thread = std::thread([this] { server.run(); });
    EXPECT_TRUE(wait_for([this] { return server.running(); }, 5.0));
  }

  ~ServerRunner() {
    server.request_stop();
    if (thread.joinable()) thread.join();
  }
};

}  // namespace

TEST(NetServer, HealthyClientMatchesOracle) {
  ServerRunner runner(ServerConfig{}, "healthy");
  const imu::Trace trace = walking_trace(30.0, 1001);

  ClientConfig ccfg;
  ccfg.session_id = 7;
  ccfg.fs = trace.fs();
  const ClientResult res =
      run_healthy_client(runner.ep, ccfg, trace.samples());
  ASSERT_TRUE(res.ok) << res.detail;

  const auto oracle = oracle_events(trace, core::StreamingConfig{});
  ASSERT_GT(oracle.size(), 20u);  // ~55 steps in 30 s
  expect_wire_equal(res.events, oracle);
  EXPECT_EQ(res.drained.samples_total, trace.size());
  EXPECT_EQ(res.drained.events_total, oracle.size());

  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().sessions_active == 0; }, 5.0));
  const ServerStats s = runner.server.stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.closed, 1u);
  EXPECT_EQ(s.session_errors, 0u);
  EXPECT_EQ(s.samples_in, trace.size());
  EXPECT_EQ(s.memory_charged_bytes, 0u);
}

TEST(NetServer, SoakChaosCannotHarmHealthyNeighbors) {
  ServerConfig cfg;
  cfg.stall_timeout_s = 1.0;  // reclaim slowloris/truncation quickly
  cfg.idle_timeout_s = 20.0;
  ServerRunner runner(std::move(cfg), "soak", /*with_admin=*/true);

  constexpr std::size_t kHealthy = 8;
  const ChaosMode kModes[] = {
      ChaosMode::kTruncatedFrame,      ChaosMode::kCorruptMagic,
      ChaosMode::kCorruptPayload,      ChaosMode::kOversizedFrame,
      ChaosMode::kBadVersion,          ChaosMode::kSlowloris,
      ChaosMode::kMidStreamDisconnect, ChaosMode::kSamplesBeforeHello,
  };

  std::vector<imu::Trace> traces;
  for (std::size_t i = 0; i < kHealthy; ++i) {
    traces.push_back(walking_trace(20.0, 2000 + i));
  }

  std::vector<ClientResult> healthy(kHealthy);
  std::vector<ChaosResult> chaos(std::size(kModes));
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kHealthy; ++i) {
    threads.emplace_back([&, i] {
      ClientConfig ccfg;
      ccfg.session_id = 100 + i;
      ccfg.fs = traces[i].fs();
      ccfg.timeout_s = 60.0;
      healthy[i] = run_healthy_client(runner.ep, ccfg, traces[i].samples());
    });
  }
  for (std::size_t i = 0; i < std::size(kModes); ++i) {
    threads.emplace_back([&, i] {
      ChaosConfig ccfg;
      ccfg.mode = kModes[i];
      ccfg.session_id = 900 + i;
      ccfg.slowloris_duration_s = 10.0;  // server must evict well before
      chaos[i] = run_chaos_client(runner.ep, ccfg);
    });
  }

  // Meanwhile the telemetry plane must keep answering every endpoint —
  // scraping a server under chaos fire is exactly its job description.
  std::atomic<bool> soak_done{false};
  std::size_t scrapes = 0;
  std::vector<std::string> scrape_failures;
  std::thread scraper([&] {
    const char* kTargets[] = {"/metrics", "/metrics.json", "/healthz",
                              "/readyz", "/sessions"};
    std::size_t i = 0;
    while (!soak_done.load(std::memory_order_acquire)) {
      const char* target = kTargets[i++ % std::size(kTargets)];
      const HttpGetResult r = http_get(runner.admin_ep, target, 10.0);
      ++scrapes;
      if (!r.ok || r.status != 200 || r.body.empty()) {
        scrape_failures.push_back(std::string(target) + ": " +
                                  (r.ok ? "status " + std::to_string(r.status)
                                        : r.error));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  for (std::thread& t : threads) t.join();
  soak_done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GE(scrapes, 10u);
  EXPECT_TRUE(scrape_failures.empty())
      << scrape_failures.size() << " failed scrapes, first: "
      << scrape_failures.front();
  EXPECT_GE(runner.server.stats().admin_requests, scrapes);

  // Every healthy client completed and matches its oracle exactly.
  for (std::size_t i = 0; i < kHealthy; ++i) {
    ASSERT_TRUE(healthy[i].ok)
        << "healthy client " << i << ": " << healthy[i].detail;
    expect_wire_equal(healthy[i].events,
                      oracle_events(traces[i], core::StreamingConfig{}));
    EXPECT_EQ(healthy[i].drained.samples_total, traces[i].size());
  }
  // Every chaos client saw the server react instead of hang.
  for (std::size_t i = 0; i < std::size(kModes); ++i) {
    EXPECT_TRUE(chaos[i].server_contained)
        << to_string(kModes[i]) << ": " << chaos[i].detail;
  }

  // No session leaks: the table and the memory accounting return to zero.
  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().sessions_active == 0; }, 10.0));
  const ServerStats s = runner.server.stats();
  EXPECT_EQ(s.memory_charged_bytes, 0u);
  EXPECT_EQ(s.session_errors, 0u);
  EXPECT_GE(s.accepted, kHealthy + std::size(kModes) - 1);  // storm-free
  EXPECT_GE(s.frames_rejected, 5u);  // the malformed-frame chaos family
}

TEST(NetServer, ChaosGetsTypedErrors) {
  ServerRunner runner(ServerConfig{}, "typed");
  const auto run = [&](ChaosMode mode) {
    ChaosConfig ccfg;
    ccfg.mode = mode;
    return run_chaos_client(runner.ep, ccfg);
  };
  ChaosResult r = run(ChaosMode::kCorruptMagic);
  EXPECT_TRUE(r.server_contained) << r.detail;
  EXPECT_EQ(r.error, ErrorCode::kBadMagic);

  r = run(ChaosMode::kBadVersion);
  EXPECT_TRUE(r.server_contained) << r.detail;
  EXPECT_EQ(r.error, ErrorCode::kBadVersion);

  r = run(ChaosMode::kOversizedFrame);
  EXPECT_TRUE(r.server_contained) << r.detail;
  EXPECT_EQ(r.error, ErrorCode::kOversizedFrame);

  r = run(ChaosMode::kSamplesBeforeHello);
  EXPECT_TRUE(r.server_contained) << r.detail;
  EXPECT_EQ(r.error, ErrorCode::kProtocol);

  r = run(ChaosMode::kReHello);
  EXPECT_TRUE(r.server_contained) << r.detail;
  EXPECT_EQ(r.error, ErrorCode::kProtocol);

  r = run(ChaosMode::kCorruptPayload);
  EXPECT_TRUE(r.server_contained) << r.detail;
  EXPECT_EQ(r.error, ErrorCode::kMalformedFrame);
}

TEST(NetServer, StalledFrameIsEvicted) {
  ServerConfig cfg;
  cfg.stall_timeout_s = 0.3;
  ServerRunner runner(std::move(cfg), "stall");
  ChaosConfig ccfg;
  ccfg.mode = ChaosMode::kTruncatedFrame;
  ccfg.response_timeout_s = 5.0;
  const ChaosResult r = run_chaos_client(runner.ep, ccfg);
  EXPECT_TRUE(r.server_contained) << r.detail;
  EXPECT_EQ(r.error, ErrorCode::kIdleTimeout);
  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().evicted_stall >= 1; }, 5.0));
}

TEST(NetServer, AdmissionShedsWhenTableFull) {
  ServerConfig cfg;
  cfg.max_sessions = 1;
  cfg.retry_after_s = 9;
  ServerRunner runner(std::move(cfg), "shed");

  // Occupy the single slot with a raw connection.
  Socket holder = connect_to(runner.ep);
  ASSERT_TRUE(wait_for(
      [&] { return runner.server.stats().sessions_active == 1; }, 5.0));

  const imu::Trace trace = walking_trace(5.0, 1003);
  ClientConfig ccfg;
  ccfg.fs = trace.fs();
  ccfg.timeout_s = 10.0;
  const ClientResult res =
      run_healthy_client(runner.ep, ccfg, trace.samples());
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error, ErrorCode::kOverloaded);
  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().shed >= 1; }, 5.0));

  holder.close();
  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().sessions_active == 0; }, 5.0));
}

TEST(NetServer, SlowConsumerIsEvicted) {
  ServerConfig cfg;
  cfg.session.out_buf_limit = 8 * 1024;
  cfg.sndbuf_bytes = 4 * 1024;  // make the socket fill without megabytes
  cfg.slow_consumer_timeout_s = 0.5;
  cfg.idle_timeout_s = 30.0;
  ServerRunner runner(std::move(cfg), "slow");

  const imu::Trace trace = walking_trace(60.0, 1004);
  Socket sock = connect_to(runner.ep);
  sock.set_nonblocking(true);

  std::vector<std::uint8_t> tx;
  append_hello(tx, Hello{31, trace.fs(), 0});
  // Replay the minute of walking ten times without ever reading: the event
  // backlog must fill the shrunken socket buffer and trip the eviction.
  for (int rep = 0; rep < 10; ++rep) {
    std::size_t i = 0;
    while (i < trace.size()) {
      const std::size_t n = std::min<std::size_t>(1024, trace.size() - i);
      append_samples(tx, std::span<const imu::Sample>(
                             trace.samples().data() + i, n));
      i += n;
    }
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::span<const std::uint8_t> rest(tx);
  bool evicted_mid_write = false;
  while (!rest.empty() && std::chrono::steady_clock::now() < deadline) {
    std::size_t w = 0;
    try {
      w = sock.write_some(rest);
    } catch (const Error&) {
      evicted_mid_write = true;  // server hung up on us: also a pass
      break;
    }
    rest = rest.subspan(w);
    if (w == 0) {
      // Backpressured — exactly the state the eviction deadline watches.
      if (runner.server.stats().evicted_slow >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().evicted_slow >= 1; }, 10.0));

  if (!evicted_mid_write) {
    // Drain everything the server managed to send; the stream must stay
    // decodable end-to-end and finish with the slow-consumer ERROR.
    FrameDecoder dec;
    std::vector<std::uint8_t> rx(16 * 1024);
    ErrorCode last_error = ErrorCode::kNone;
    const auto read_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < read_deadline) {
      std::ptrdiff_t n = 0;
      try {
        n = sock.read_some(rx);
      } catch (const Error&) {
        break;
      }
      if (n == 0) break;
      if (n < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      dec.feed({rx.data(), static_cast<std::size_t>(n)});
      Frame frame;
      while (dec.next(frame) == DecodeStatus::kFrame) {
        if (frame.type == FrameType::kError) {
          WireError err;
          ASSERT_TRUE(parse_error(frame.payload, err));
          last_error = err.code;
        }
      }
      ASSERT_EQ(dec.error(), ErrorCode::kNone);
    }
    EXPECT_EQ(last_error, ErrorCode::kSlowConsumer);
  }
  sock.close();
  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().sessions_active == 0; }, 5.0));
}

TEST(NetServer, ConnectionStormLeavesServerServing) {
  ServerRunner runner(ServerConfig{}, "storm");
  ChaosConfig ccfg;
  ccfg.mode = ChaosMode::kConnectionStorm;
  ccfg.storm_connections = 64;
  const ChaosResult r = run_chaos_client(runner.ep, ccfg);
  EXPECT_TRUE(r.server_contained) << r.detail;

  // The server is still fully functional for a healthy client.
  const imu::Trace trace = walking_trace(10.0, 1005);
  ClientConfig hcfg;
  hcfg.fs = trace.fs();
  const ClientResult res =
      run_healthy_client(runner.ep, hcfg, trace.samples());
  EXPECT_TRUE(res.ok) << res.detail;
  EXPECT_TRUE(wait_for(
      [&] { return runner.server.stats().sessions_active == 0; }, 10.0));
  EXPECT_EQ(runner.server.stats().memory_charged_bytes, 0u);
}

TEST(NetServer, DrainFlushesEveryLiveSession) {
  ServerConfig cfg;
  cfg.drain_deadline_s = 5.0;
  ServerRunner runner(std::move(cfg), "drain");
  const imu::Trace trace = walking_trace(20.0, 1006);

  ClientResult res;
  std::thread client([&] {
    ClientConfig ccfg;
    ccfg.session_id = 55;
    ccfg.fs = trace.fs();
    ccfg.send_bye = false;  // the *server* must initiate the flush
    ccfg.timeout_s = 30.0;
    res = run_healthy_client(runner.ep, ccfg, trace.samples());
  });

  // Wait until every sample is ingested, then drain (the SIGTERM path).
  ASSERT_TRUE(wait_for(
      [&] { return runner.server.stats().samples_in >= trace.size(); },
      20.0));
  runner.server.request_drain();
  client.join();

  ASSERT_TRUE(res.ok) << res.detail;
  expect_wire_equal(res.events,
                    oracle_events(trace, core::StreamingConfig{}));
  EXPECT_EQ(res.drained.samples_total, trace.size());

  // run() returns once the drain completes; the runner's stop is a no-op.
  EXPECT_TRUE(wait_for([&] { return !runner.server.running(); }, 10.0));
  EXPECT_EQ(runner.server.stats().sessions_active, 0u);
}
