// Quality-layer tests: every injector in imu/faults.hpp is detected by its
// dual detector at default thresholds, a clean synthesized trace produces
// zero flags (false-positive guard), the repair pass touches only flagged
// samples, and the pipeline's quality propagation reaches TrackResult.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/ptrack.hpp"
#include "imu/faults.hpp"
#include "imu/quality.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

synth::SynthResult walking(std::uint64_t seed, double seconds = 30.0) {
  Rng rng(seed);
  synth::UserProfile user;
  return synth::synthesize(synth::Scenario::pure_walking(seconds), user,
                           synth::SynthOptions{}, rng);
}

/// Deterministic per-sample jitter (no <random>, reproducible everywhere).
/// A pure sine repeats its sampled maximum exactly every period, which the
/// saturation auto-detector rightly reads as a clipping plateau — real
/// sensors never do that, so the fixture adds sensor-scale noise.
double jitter(std::size_t i) {
  const double x = std::sin(12.9898 * static_cast<double>(i + 1)) * 43758.5453;
  return x - std::floor(x) - 0.5;  // [-0.5, 0.5)
}

/// Oscillating trace (z-accel sine over gravity, small gyro sine) with a
/// known amplitude — handy when a test needs to reason about exact rails
/// and plateaus.
imu::Trace sine_trace(double seconds = 10.0, double fs = 100.0,
                      double amp = 5.0) {
  std::vector<imu::Sample> samples;
  const auto n = static_cast<std::size_t>(seconds * fs);
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    imu::Sample s;
    s.t = t;
    const double jd = 0.01 * jitter(i);
    s.accel = {0.3 * amp * std::sin(2.0 * M_PI * 1.7 * t + 0.3) + jd,
               0.2 * amp * std::sin(2.0 * M_PI * 2.3 * t + 1.1) + jd,
               kGravity + amp * std::sin(2.0 * M_PI * 2.0 * t) + jd};
    s.gyro = {0.8 * std::sin(2.0 * M_PI * 2.0 * t) + 0.1 * jd, 0.0,
              0.5 * std::cos(2.0 * M_PI * 1.3 * t) + 0.1 * jd};
    samples.push_back(s);
  }
  return imu::Trace(fs, std::move(samples));
}

}  // namespace

// --------------------------------------------------------------------------
// False-positive guard: clean traces must produce zero flags.

TEST(Quality, CleanSynthesizedTraceHasNoFlags) {
  const auto r = walking(101);
  const auto report = imu::assess(r.trace);
  EXPECT_FALSE(report.any_fault());
  EXPECT_EQ(report.repaired_samples, 0u);
  EXPECT_EQ(report.masked_samples, 0u);
  EXPECT_DOUBLE_EQ(report.clean_fraction, 1.0);
  EXPECT_TRUE(report.usable);
  for (const auto f : report.window_flags) EXPECT_EQ(f, imu::kFlagClean);
}

TEST(Quality, CleanTraceRepairIsIdentity) {
  const auto r = walking(102);
  const auto repaired = imu::assess_and_repair(r.trace);
  ASSERT_EQ(repaired.trace.size(), r.trace.size());
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    EXPECT_EQ(repaired.trace[i].accel, r.trace[i].accel);
    EXPECT_EQ(repaired.trace[i].gyro, r.trace[i].gyro);
  }
}

TEST(Quality, PipelineUnchangedOnCleanTraces) {
  // With quality enabled (the default), a clean trace must produce the
  // bit-identical result of the quality-disabled pipeline: repair only
  // touches flagged samples, and a clean trace has none.
  const auto r = walking(103);
  core::PTrackConfig off;
  off.quality.enabled = false;
  core::PTrack with_quality;
  core::PTrack without(off);
  const auto a = with_quality.process(r.trace);
  const auto b = without.process(r.trace);
  EXPECT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].t, b.events[i].t);
    EXPECT_EQ(a.events[i].stride, b.events[i].stride);
  }
  EXPECT_DOUBLE_EQ(a.quality.clean_fraction, 1.0);
  EXPECT_EQ(a.degraded_steps(), 0u);
}

// --------------------------------------------------------------------------
// Detector duality with imu/faults.hpp.

TEST(Quality, DetectsInjectedDropouts) {
  const auto r = walking(104);
  Rng rng(11);
  const auto faulty = imu::inject_dropouts(r.trace, 30.0, 5, 12, rng);
  const auto report = imu::assess(faulty);
  EXPECT_GT(report.dropout_samples, 0u);
  // Every flagged dropout sample really is inside a held run.
  for (std::size_t i = 1; i < faulty.size(); ++i) {
    if (report.flags[i] & imu::kFlagDropout) {
      const bool matches_prev = faulty[i].accel == faulty[i - 1].accel &&
                                faulty[i].gyro == faulty[i - 1].gyro;
      const bool matches_next = i + 1 < faulty.size() &&
                                faulty[i].accel == faulty[i + 1].accel &&
                                faulty[i].gyro == faulty[i + 1].gyro;
      EXPECT_TRUE(matches_prev || matches_next) << "sample " << i;
    }
  }
}

TEST(Quality, ShortHoldsAreNotDropouts) {
  // Two identical consecutive samples sit below the default run threshold
  // (a quantized sensor can legitimately repeat once).
  auto trace = sine_trace(5.0);
  auto& samples = trace.samples();
  samples[100] = samples[99];
  samples[100].t = 100.0 / trace.fs();
  const auto report = imu::assess(trace);
  EXPECT_EQ(report.dropout_samples, 0u);
}

TEST(Quality, AutoDetectsSaturationPlateau) {
  const double limit = 12.0;  // clips the 5 m/s^2 sine around gravity
  const auto clipped = imu::clip_acceleration(sine_trace(), limit);
  const auto report = imu::assess(clipped);
  EXPECT_GT(report.saturated_samples, 10u);
  for (std::size_t i = 0; i < clipped.size(); ++i) {
    if (report.flags[i] & imu::kFlagSaturated) {
      const double m = std::max({std::abs(clipped[i].accel.x),
                                 std::abs(clipped[i].accel.y),
                                 std::abs(clipped[i].accel.z)});
      EXPECT_GE(m, limit * (1.0 - 1e-9));
    }
  }
}

TEST(Quality, ExplicitSaturationLimitFlagsTheRail) {
  // A known full-scale range flags the clipped plateau; a range the signal
  // never reaches flags nothing.
  const auto base = sine_trace();  // z peaks near 14.8 m/s^2
  imu::QualityConfig cfg;
  cfg.saturation_limit = 12.0;
  const auto clipped = imu::clip_acceleration(base, 12.0);
  EXPECT_GT(imu::assess(clipped, cfg).saturated_samples, 10u);

  imu::QualityConfig roomy;
  roomy.saturation_limit = 20.0;
  EXPECT_EQ(imu::assess(base, roomy).saturated_samples, 0u);
}

TEST(Quality, GyroSaturationLimitFlagsTheRail) {
  const auto base = sine_trace();  // gyro.x peaks near 0.8 rad/s
  const auto clipped = imu::clip_gyro(base, 0.6);
  imu::QualityConfig cfg;
  cfg.gyro_saturation_limit = 0.6;
  EXPECT_GT(imu::assess(clipped, cfg).saturated_samples, 10u);
  // Gyro saturation is explicit-only: without the limit, no auto-detect.
  EXPECT_EQ(imu::assess(clipped).saturated_samples, 0u);
}

TEST(Quality, DetectsInjectedAccelAndGyroSpikes) {
  const auto base = sine_trace(30.0);
  Rng rng(12);
  const auto spiked = imu::inject_spikes(base, 20.0, 8.0, rng,
                                         imu::FaultChannels::Both);
  const auto report = imu::assess(spiked);
  EXPECT_GT(report.spike_samples, 0u);
  // A spiked sample must differ from the clean base at that index.
  for (std::size_t i = 0; i < spiked.size(); ++i) {
    if (report.flags[i] & imu::kFlagSpike) {
      EXPECT_TRUE(!(spiked[i].accel == base[i].accel) ||
                  !(spiked[i].gyro == base[i].gyro))
          << "sample " << i;
    }
  }
}

TEST(Quality, FlagsNonFiniteAndNonphysicalCells) {
  auto trace = sine_trace(5.0);
  auto& samples = trace.samples();
  samples[50].accel.y = std::numeric_limits<double>::quiet_NaN();
  samples[120].gyro.z = std::numeric_limits<double>::infinity();
  samples[200].accel.x = 5.0e6;  // finite but ~500,000 g
  const auto report = imu::assess(trace);
  EXPECT_EQ(report.nonfinite_samples, 3u);
  EXPECT_TRUE(report.flags[50] & imu::kFlagNonFinite);
  EXPECT_TRUE(report.flags[120] & imu::kFlagNonFinite);
  EXPECT_TRUE(report.flags[200] & imu::kFlagNonFinite);
  EXPECT_TRUE(report.usable);  // three bad cells out of 500
}

// --------------------------------------------------------------------------
// Repair pass.

TEST(Quality, RepairTouchesOnlyFlaggedSamples) {
  const auto r = walking(106);
  Rng rng(13);
  const auto faulty = imu::inject_dropouts(r.trace, 20.0, 4, 10, rng);
  const auto repaired = imu::assess_and_repair(faulty);
  ASSERT_EQ(repaired.trace.size(), faulty.size());
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    if (repaired.report.flags[i] == imu::kFlagClean) {
      EXPECT_EQ(repaired.trace[i].accel, faulty[i].accel) << "sample " << i;
      EXPECT_EQ(repaired.trace[i].gyro, faulty[i].gyro) << "sample " << i;
    }
  }
  EXPECT_EQ(repaired.report.repaired_samples + repaired.report.masked_samples,
            repaired.report.dropout_samples);
}

TEST(Quality, ShortGapsInterpolatedLongGapsMasked) {
  auto trace = sine_trace(20.0);  // fs=100 -> max_fill 25 samples
  auto& samples = trace.samples();
  // Short held run: 10 samples (repairable).
  for (std::size_t i = 300; i < 310; ++i) {
    samples[i].accel = samples[299].accel;
    samples[i].gyro = samples[299].gyro;
  }
  // Long held run: 120 samples (must be masked, not bridged).
  for (std::size_t i = 800; i < 920; ++i) {
    samples[i].accel = samples[799].accel;
    samples[i].gyro = samples[799].gyro;
  }
  const auto repaired = imu::assess_and_repair(trace);
  EXPECT_GE(repaired.report.repaired_samples, 9u);
  EXPECT_GE(repaired.report.masked_samples, 119u);
  EXPECT_TRUE(repaired.report.flags[305] & imu::kFlagRepaired);
  EXPECT_TRUE(repaired.report.flags[850] & imu::kFlagMasked);

  // Interpolation reconstructs the sine reasonably inside the short gap...
  const auto clean = sine_trace(20.0);
  EXPECT_NEAR(repaired.trace[305].accel.z, clean[305].accel.z, 1.5);
  // ...while the masked stretch holds the neutral (≈ mean) value, far from
  // any attempt to extrapolate 1.2 s of oscillation.
  const double masked_z = repaired.trace[850].accel.z;
  EXPECT_NEAR(masked_z, kGravity, 1.5);
  EXPECT_EQ(repaired.trace[850].accel, repaired.trace[900].accel);
}

TEST(Quality, UnusableTraceIsReported) {
  std::vector<imu::Sample> samples(256);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i].t = static_cast<double>(i) / 100.0;
    samples[i].accel = {1.0e9, -1.0e9, 1.0e9};
    samples[i].gyro = {1.0e9, 1.0e9, -1.0e9};
  }
  const imu::Trace garbage(100.0, std::move(samples));
  const auto report = imu::assess(garbage);
  EXPECT_FALSE(report.usable);
  EXPECT_EQ(report.nonfinite_samples, garbage.size());

  // And the pipeline refuses it loudly instead of emitting fiction.
  core::PTrack tracker;
  EXPECT_THROW(tracker.process(garbage), Error);
}

TEST(Quality, DisabledConfigIsIdentityAndClean) {
  const auto r = walking(107, 10.0);
  Rng rng(14);
  const auto faulty = imu::inject_spikes(r.trace, 30.0, 8.0, rng);
  imu::QualityConfig cfg;
  cfg.enabled = false;
  const auto repaired = imu::assess_and_repair(faulty, cfg);
  EXPECT_FALSE(repaired.report.any_fault());
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    EXPECT_EQ(repaired.trace[i].accel, faulty[i].accel);
  }
}

// --------------------------------------------------------------------------
// Windows and interval queries.

TEST(Quality, WindowFlagsLocalizeFaults) {
  auto trace = sine_trace(10.0);  // 10 windows of 1 s at fs=100
  auto& samples = trace.samples();
  for (std::size_t i = 320; i < 330; ++i) {  // fault inside window 3 only
    samples[i].accel = samples[319].accel;
    samples[i].gyro = samples[319].gyro;
  }
  const auto report = imu::assess(trace);
  ASSERT_EQ(report.window_flags.size(), 10u);
  for (std::size_t w = 0; w < report.window_flags.size(); ++w) {
    if (w == 3) {
      EXPECT_NE(report.window_flags[w], imu::kFlagClean);
    } else {
      EXPECT_EQ(report.window_flags[w], imu::kFlagClean) << "window " << w;
    }
  }
  EXPECT_GT(report.fraction_flagged(300, 400), 0.0);
  EXPECT_DOUBLE_EQ(report.fraction_flagged(0, 300), 0.0);
  EXPECT_DOUBLE_EQ(report.fraction_flagged(400, 400), 0.0);  // empty
  EXPECT_DOUBLE_EQ(report.fraction_masked(300, 400), 0.0);   // repaired, not
}

// --------------------------------------------------------------------------
// Quality propagation into TrackResult.

TEST(Quality, TrackResultCarriesDegradationFractions) {
  const auto r = walking(108, 60.0);
  Rng rng(15);
  const auto faulty = imu::inject_dropouts(r.trace, 30.0, 5, 15, rng);
  core::PTrack tracker;
  const auto result = tracker.process(faulty);
  EXPECT_LT(result.quality.clean_fraction, 1.0);
  EXPECT_GT(result.quality.repaired_fraction + result.quality.masked_fraction,
            0.0);
  EXPECT_GT(result.quality.dropout_samples, 0u);
  EXPECT_TRUE(result.quality.degraded());
  for (const auto& e : result.events) {
    EXPECT_GE(e.quality, 0.0);
    EXPECT_LE(e.quality, 1.0);
  }
}

TEST(Quality, Preconditions) {
  const auto trace = sine_trace(2.0);
  imu::QualityConfig cfg;
  cfg.min_dropout_run = 0;
  EXPECT_THROW(imu::assess(trace, cfg), InvalidArgument);
  cfg = {};
  cfg.spike_delta = 0.0;
  EXPECT_THROW(imu::assess(trace, cfg), InvalidArgument);
  cfg = {};
  cfg.min_usable_fraction = 1.5;
  EXPECT_THROW(imu::assess(trace, cfg), InvalidArgument);
  cfg = {};
  cfg.window_s = 0.0;
  EXPECT_THROW(imu::assess(trace, cfg), InvalidArgument);
}
