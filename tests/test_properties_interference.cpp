// Property sweep: PTrack's interference rejection must hold for every
// interference class, in both postures, across users — and the baselines'
// vulnerability (the paper's premise) must hold too, or the comparison
// benches would be measuring a strawman.

#include <gtest/gtest.h>

#include <tuple>

#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

namespace {

struct Case {
  synth::ActivityKind kind;
  synth::Posture posture;
  std::uint64_t user_seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name(synth::to_string(info.param.kind));
  name += info.param.posture == synth::Posture::Standing ? "_stand" : "_seat";
  name += "_u" + std::to_string(info.param.user_seed);
  return name;
}

}  // namespace

class InterferenceSweep : public ::testing::TestWithParam<Case> {};

TEST_P(InterferenceSweep, PTrackStaysQuiet) {
  const Case& c = GetParam();
  Rng rng(9000 + c.user_seed);
  const synth::UserProfile user = synth::random_user(rng);
  const auto r = synth::synthesize(
      synth::Scenario::interference(c.kind, 60.0, c.posture), user,
      synth::SynthOptions{}, rng);
  core::PTrack tracker;
  EXPECT_LE(tracker.process(r.trace).steps, 8u);
}

TEST_P(InterferenceSweep, CommercialCounterIsFooled) {
  // The premise of Figs. 1 and 7: threshold peak counters mis-tick on
  // every one of these activities (otherwise PTrack's robustness would be
  // vacuous). Idle is the exception — nothing moves.
  const Case& c = GetParam();
  if (c.kind == synth::ActivityKind::Idle) GTEST_SKIP();
  Rng rng(9100 + c.user_seed);
  const synth::UserProfile user = synth::random_user(rng);
  const auto r = synth::synthesize(
      synth::Scenario::interference(c.kind, 120.0, c.posture), user,
      synth::SynthOptions{}, rng);
  models::PeakCounter counter(models::gfit_watch_config());
  EXPECT_GT(counter.count_steps(r.trace).count, 10u)
      << synth::to_string(c.kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, InterferenceSweep,
    ::testing::Values(
        Case{synth::ActivityKind::Eating, synth::Posture::Standing, 0},
        Case{synth::ActivityKind::Eating, synth::Posture::Seated, 1},
        Case{synth::ActivityKind::Poker, synth::Posture::Standing, 2},
        Case{synth::ActivityKind::Poker, synth::Posture::Seated, 3},
        Case{synth::ActivityKind::Photo, synth::Posture::Standing, 4},
        Case{synth::ActivityKind::Photo, synth::Posture::Seated, 5},
        Case{synth::ActivityKind::Gaming, synth::Posture::Standing, 6},
        Case{synth::ActivityKind::Gaming, synth::Posture::Seated, 7},
        Case{synth::ActivityKind::Spoofer, synth::Posture::Standing, 8},
        Case{synth::ActivityKind::Idle, synth::Posture::Seated, 9}),
    case_name);

// --------------------------------------------------------------------------
// Mixed-session invariant: interleaving gait with interference never
// inflates the count beyond the gait-only truth by more than a small margin.

class MixedSessionSweep : public ::testing::TestWithParam<int> {};

TEST_P(MixedSessionSweep, CountBoundedByGaitTruth) {
  Rng rng(9200 + static_cast<std::uint64_t>(GetParam()));
  const synth::UserProfile user = synth::random_user(rng);
  synth::Scenario session;
  session.walk(30.0)
      .activity(synth::ActivityKind::Poker, 30.0, synth::Posture::Seated)
      .step(30.0)
      .activity(synth::ActivityKind::Photo, 30.0, synth::Posture::Standing)
      .walk(30.0);
  const auto r = synth::synthesize(session, user, synth::SynthOptions{}, rng);
  core::PTrack tracker;
  const double truth = static_cast<double>(r.truth.step_count());
  const double counted = static_cast<double>(tracker.process(r.trace).steps);
  EXPECT_LT(counted, truth * 1.1 + 8.0);
  EXPECT_GT(counted, truth * 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedSessionSweep, ::testing::Range(0, 6));
