// Streaming scenario: the on-watch operating mode. Samples arrive one at a
// time; the application polls every few seconds and updates its display —
// no trace is ever stored. The example simulates a walk with an eating
// break and prints the live step/distance readout.

#include <iostream>

#include "core/streaming.hpp"
#include "core/summary.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  synth::UserProfile user;
  Rng rng(1212);
  synth::Scenario scenario;
  scenario.walk(40.0)
      .activity(synth::ActivityKind::Eating, 30.0, synth::Posture::Seated)
      .walk(40.0);
  const synth::SynthResult recording = synth::synthesize(scenario, user, rng);

  core::StreamingConfig config;
  config.pipeline.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::StreamingTracker tracker(recording.trace.fs(), config);

  std::cout << "live readout (polled every 5 s):\n";
  const auto poll_every =
      static_cast<std::size_t>(5.0 * recording.trace.fs());
  for (std::size_t i = 0; i < recording.trace.size(); ++i) {
    tracker.push(recording.trace[i]);
    if ((i + 1) % poll_every == 0) {
      const auto fresh = tracker.poll();
      std::cout << "  t=" << recording.trace[i].t << "s  +" << fresh.size()
                << " steps -> total " << tracker.steps() << " steps, "
                << tracker.distance() << " m\n";
    }
  }
  tracker.finish();
  tracker.poll();  // drain the flush (finish() already accounted for it)

  std::cout << "\nfinal: " << tracker.steps() << " steps, "
            << tracker.distance() << " m  (truth: "
            << recording.truth.step_count() << " steps, "
            << recording.truth.total_distance() << " m)\n";
  std::cout << "note: the eating break (t in [40, 70)) adds no steps.\n";
  return 0;
}
