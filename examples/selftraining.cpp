// Self-training scenario: onboarding a new user with no manual
// measurements (the paper's SIII-C2 usability contribution). A calibration
// trace of everyday mixed gait plus one known distance (a GPS-measured
// outdoor stretch) yields the arm and leg lengths; PTrack then tracks a
// fresh walk with the learned profile.

#include <iostream>

#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "core/self_training.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  Rng rng(42424);
  const synth::UserProfile user = synth::random_user(rng);

  std::cout << "new user (true profile hidden from the tracker): arm "
            << user.arm_length << " m, leg " << user.leg_length << " m\n\n";

  // Calibration: two minutes of everyday mixed gait with a known total
  // distance (in deployment: any GPS-covered outdoor walk).
  const synth::SynthResult calibration =
      synth::synthesize(synth::Scenario::mixed_gait(120.0), user, rng);
  const double known_distance = calibration.truth.total_distance();
  std::cout << "calibration trace: " << calibration.trace.duration()
            << " s, known distance " << known_distance << " m\n";

  const core::SelfTrainingResult trained =
      core::self_train(calibration.trace, known_distance);

  Table profile({"parameter", "self-trained", "true", "error"});
  profile.add_row({"arm length m", Table::num(trained.arm_length, 3),
                   Table::num(user.arm_length, 3),
                   Table::num(std::abs(trained.arm_length - user.arm_length) *
                                  100.0, 1) + " cm"});
  profile.add_row({"leg length l", Table::num(trained.leg_length, 3),
                   Table::num(user.leg_length, 3),
                   Table::num(std::abs(trained.leg_length - user.leg_length) *
                                  100.0, 1) + " cm"});
  profile.print(std::cout);

  // Evaluation: a fresh walk with the learned profile.
  const synth::SynthResult walk =
      synth::synthesize(synth::Scenario::pure_walking(90.0), user, rng);
  core::PTrackConfig cfg;
  cfg.stride.profile.arm_length = trained.arm_length;
  cfg.stride.profile.leg_length = trained.leg_length;
  core::PTrack tracker(cfg);
  const core::TrackResult result = tracker.process(walk.trace);

  std::cout << "\nfresh 90 s walk with the learned profile:\n";
  std::cout << "  steps:    " << result.steps << " (truth "
            << walk.truth.step_count() << ")\n";
  std::cout << "  distance: " << result.distance() << " m (truth "
            << walk.truth.total_distance() << " m)\n";
  return 0;
}
