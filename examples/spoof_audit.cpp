// Trustworthy-counting scenario: an insurance/fitness-rewards audit.
// A motorized rocker ("unfitbits"-style) tries to farm steps; the audit
// compares how many fake steps each counter design credits — the paper's
// argument for why only an interference-robust counter is usable where
// money rides on the count.

#include <iostream>

#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "models/montage.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  synth::UserProfile user;
  Rng rng(303);

  // Ten minutes "in the rocker", then a genuine five-minute walk: the
  // honest walk must still be credited.
  synth::Scenario session;
  session.activity(synth::ActivityKind::Spoofer, 600.0).walk(300.0);
  const synth::SynthResult recording = synth::synthesize(session, user, rng);

  models::PeakCounter watch(models::gfit_watch_config());
  models::MontageCounter montage;
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack ptrack(cfg);

  const double t_walk_begin = 600.0;
  const auto split_counts = [&](const std::vector<double>& times) {
    std::pair<std::size_t, std::size_t> counts{0, 0};
    for (double t : times) {
      (t < t_walk_begin ? counts.first : counts.second) += 1;
    }
    return counts;
  };

  const auto watch_det = watch.count_steps(recording.trace);
  const auto montage_det = montage.count_steps(recording.trace);
  const core::TrackResult ptrack_res = ptrack.process(recording.trace);
  std::vector<double> ptrack_times;
  for (const core::StepEvent& e : ptrack_res.events) {
    ptrack_times.push_back(e.t);
  }

  const auto [watch_fake, watch_real] = split_counts(watch_det.step_times);
  const auto [mtage_fake, mtage_real] = split_counts(montage_det.step_times);
  const auto [ptrack_fake, ptrack_real] = split_counts(ptrack_times);

  const std::size_t true_steps = recording.truth.step_count();
  std::cout << "10 min on the spoofing rig + 5 min genuine walk ("
            << true_steps << " true steps):\n\n";
  Table table({"counter", "fake steps credited", "real steps credited",
               "verdict"});
  const auto verdict = [&](std::size_t fake) {
    return fake > 20 ? "spoofable" : "trustworthy";
  };
  table.add_row({"Watch (peak detection)",
                 Table::num(static_cast<long long>(watch_fake)),
                 Table::num(static_cast<long long>(watch_real)),
                 verdict(watch_fake)});
  table.add_row({"Montage",
                 Table::num(static_cast<long long>(mtage_fake)),
                 Table::num(static_cast<long long>(mtage_real)),
                 verdict(mtage_fake)});
  table.add_row({"PTrack",
                 Table::num(static_cast<long long>(ptrack_fake)),
                 Table::num(static_cast<long long>(ptrack_real)),
                 verdict(ptrack_fake)});
  table.print(std::cout);

  std::cout << "\nwhy PTrack rejects the rig: a rigid single-DOF motion\n"
               "keeps its two projected acceleration channels synchronized\n"
               "(offset << delta), and its in-phase channels fail the\n"
               "quarter-period phase gate of the stepping test.\n";
  return 0;
}
