// Indoor navigation scenario (the paper's Fig. 9 case study as an
// application): dead-reckon a walker along the shopping-center route using
// PTrack's step/stride events plus a heading source, and report how close
// the tracked trajectory stays to the suggested route.

#include <iostream>

#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "nav/dead_reckoning.hpp"
#include "nav/route.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  const nav::Route route = nav::shopping_center_route();
  synth::UserProfile user;
  Rng rng(5150);

  // Script the walk leg by leg.
  synth::Scenario walkthrough;
  std::vector<double> leg_end_time;
  double t_acc = 0.0;
  for (std::size_t leg = 0; leg < route.legs(); ++leg) {
    const double duration = route.leg_length(leg) / user.speed;
    walkthrough.walk(duration, 0.0, route.leg_heading(leg));
    t_acc += duration;
    leg_end_time.push_back(t_acc);
  }
  const synth::SynthResult recording =
      synth::synthesize(walkthrough, user, rng);

  // Track.
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack tracker(cfg);
  const core::TrackResult result = tracker.process(recording.trace);

  // Dead-reckon with a compass-grade heading (script + noise).
  Rng heading_noise = rng.fork();
  nav::DeadReckoner reckoner({0.0, 0.0}, [&](double t) {
    std::size_t leg = route.legs() - 1;
    for (std::size_t i = 0; i < leg_end_time.size(); ++i) {
      if (t <= leg_end_time[i]) {
        leg = i;
        break;
      }
    }
    return route.leg_heading(leg) + heading_noise.normal(0.0, 0.03);
  });
  for (const core::StepEvent& e : result.events) reckoner.advance(e);

  const nav::RouteErrorStats score =
      nav::score_trajectory(route, reckoner.trajectory());

  std::cout << "Route A -> G through the mall (" << route.length()
            << " m, with the 4 m corridor double-crossing):\n\n";
  Table table({"metric", "value"});
  table.add_row({"true route length", Table::num(route.length(), 1) + " m"});
  table.add_row({"steps counted",
                 Table::num(static_cast<long long>(result.steps))});
  table.add_row({"tracked distance", Table::num(reckoner.traveled(), 1) + " m"});
  table.add_row({"mean cross-track error",
                 Table::num(score.mean_cross_track, 2) + " m"});
  table.add_row({"max cross-track error",
                 Table::num(score.max_cross_track, 2) + " m"});
  table.add_row({"arrival error at G", Table::num(score.end_error, 2) + " m"});
  table.print(std::cout);

  // A few trajectory fixes to eyeball.
  std::cout << "\ntrajectory samples (x, y):\n  ";
  const auto& traj = reckoner.trajectory();
  for (std::size_t i = 0; i < traj.size(); i += traj.size() / 8 + 1) {
    std::cout << "(" << Table::num(traj[i].x, 1) << ", "
              << Table::num(traj[i].y, 1) << ") ";
  }
  std::cout << "-> (" << Table::num(traj.back().x, 1) << ", "
            << Table::num(traj.back().y, 1) << ")\n";
  return 0;
}
