// Quickstart: synthesize one minute of walking, run the full PTrack
// pipeline, and print what a downstream application sees.
//
//   $ ./examples/quickstart
//
// In a real deployment the trace would come from a wearable's accelerometer
// (see imu::load_csv for the interchange format); here the bundled
// synthesizer stands in for the hardware so the example is self-contained.

#include <iostream>

#include "core/ptrack.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  // 1. A user. In production you'd take these from the profile store or
  //    let core::self_train() discover them (see the selftraining example).
  synth::UserProfile user;
  user.arm_length = 0.72;   // shoulder-to-wrist, metres
  user.leg_length = 0.93;   // hip-to-ground, metres

  // 2. One minute of walking, recorded by the (simulated) watch.
  Rng rng(2024);
  const synth::SynthResult recording =
      synth::synthesize(synth::Scenario::pure_walking(60.0), user, rng);

  // 3. Configure PTrack with the user's profile and process the trace.
  core::PTrackConfig config;
  config.stride.profile.arm_length = user.arm_length;
  config.stride.profile.leg_length = user.leg_length;
  core::PTrack tracker(config);
  const core::TrackResult result = tracker.process(recording.trace);

  // 4. Consume the results.
  std::cout << "steps counted:   " << result.steps << "  (truth "
            << recording.truth.step_count() << ")\n";
  std::cout << "distance walked: " << result.distance() << " m  (truth "
            << recording.truth.total_distance() << " m)\n";

  std::cout << "\nfirst five steps:\n";
  for (std::size_t i = 0; i < result.events.size() && i < 5; ++i) {
    const core::StepEvent& e = result.events[i];
    std::cout << "  t=" << e.t << " s  stride=" << e.stride << " m  ("
              << to_string(e.type) << ")\n";
  }

  std::cout << "\ncycle classification: ";
  std::size_t walking = 0;
  std::size_t others = 0;
  for (const core::CycleRecord& c : result.cycles) {
    (c.type == core::GaitType::Interference ? others : walking) += 1;
  }
  std::cout << walking << " gait cycles, " << others
            << " excluded as interference\n";
  return 0;
}
