// Fitness scenario: a day fragment mixing real walking with the arm
// activities that fool commercial pedometers (the paper's healthcare
// motivation — a counter that credits poker as exercise produces useless
// fitness statistics and uninsurable data).
//
// The example scripts: morning walk -> desk (gaming) -> lunch (eating) ->
// walk with the hand in a pocket (stepping) -> photos -> evening walk,
// then compares a GFit-style commercial counter against PTrack.

#include <iostream>

#include "common/table.hpp"
#include "core/ptrack.hpp"
#include "models/gfit.hpp"
#include "synth/synthesizer.hpp"

using namespace ptrack;

int main() {
  synth::UserProfile user;
  Rng rng(77);

  synth::Scenario day;
  day.walk(90.0)
      .activity(synth::ActivityKind::Gaming, 120.0, synth::Posture::Seated)
      .activity(synth::ActivityKind::Eating, 120.0, synth::Posture::Seated)
      .step(60.0)  // hand in pocket
      .activity(synth::ActivityKind::Photo, 60.0, synth::Posture::Standing)
      .walk(90.0);

  const synth::SynthResult recording = synth::synthesize(day, user, rng);

  models::PeakCounter commercial(models::gfit_watch_config());
  core::PTrackConfig cfg;
  cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
  core::PTrack ptrack(cfg);

  const auto commercial_result = commercial.count_steps(recording.trace);
  const core::TrackResult ptrack_result = ptrack.process(recording.trace);

  std::cout << "A " << recording.trace.duration() / 60.0
            << "-minute day fragment with " << recording.truth.step_count()
            << " true steps over " << recording.truth.total_distance()
            << " m:\n\n";

  Table table({"counter", "steps", "error vs truth"});
  const auto err = [&](std::size_t counted) {
    const double t = static_cast<double>(recording.truth.step_count());
    return Table::pct(std::abs(static_cast<double>(counted) - t) / t);
  };
  table.add_row({"commercial (peak detection)",
                 Table::num(static_cast<long long>(commercial_result.count)),
                 err(commercial_result.count)});
  table.add_row({"PTrack",
                 Table::num(static_cast<long long>(ptrack_result.steps)),
                 err(ptrack_result.steps)});
  table.print(std::cout);

  // Per-interval truth vs PTrack events: where did the steps happen?
  std::cout << "\nsteps by activity window:\n";
  Table windows({"window", "activity", "true steps", "PTrack steps"});
  for (const synth::SegmentTruth& seg : recording.truth.segments) {
    std::size_t counted = 0;
    for (const core::StepEvent& e : ptrack_result.events) {
      counted += e.t >= seg.t_begin && e.t < seg.t_end;
    }
    windows.add_row(
        {Table::num(seg.t_begin, 0) + "-" + Table::num(seg.t_end, 0) + " s",
         std::string(to_string(seg.kind)),
         Table::num(static_cast<long long>(
             recording.truth.steps_in(seg.t_begin, seg.t_end))),
         Table::num(static_cast<long long>(counted))});
  }
  windows.print(std::cout);
  std::cout << "\nPTrack distance estimate: " << ptrack_result.distance()
            << " m\n";
  return 0;
}
