// Standalone corpus-replay driver for the fuzz targets.
//
// libFuzzer provides its own main(); this file is linked instead when the
// toolchain has no fuzzer runtime (e.g. GCC), turning each harness into a
// deterministic regression runner:
//
//   fuzz_<target> <file-or-directory>...
//
// Every file argument (and every regular file inside a directory argument,
// in sorted order) is fed to LLVMFuzzerTestOneInput once. Exit 0 when all
// inputs were processed; a harness bug aborts the process, which is what
// the `fuzz_regression` CTest entry detects.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "replay: cannot open " << path << "\n";
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <corpus-file-or-dir>...\n";
    return 2;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    std::vector<fs::path> files;
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
    } else {
      files.push_back(arg);
    }
    for (const fs::path& f : files) {
      if (replay_file(f) != 0) return 1;
      ++replayed;
    }
  }
  std::cout << "replayed " << replayed << " corpus input(s) clean\n";
  return 0;
}
