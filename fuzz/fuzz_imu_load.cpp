// Fuzz target: the full trace-ingest path, csv::parse + trace_from_document.
//
// Exercises the hostile-input hardening of imu::trace_from_document:
// non-finite / non-positive / implausible fs, non-monotonic timestamps and
// absurd sample counts must all surface as ptrack::Error, and any trace
// that survives must satisfy the Trace invariants (fs > 0, ordered times).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "imu/trace_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const ptrack::csv::Document doc = ptrack::csv::parse(in, "fuzz-input");
    const ptrack::imu::Trace trace =
        ptrack::imu::trace_from_document(doc, "fuzz-input");
    if (trace.fs() <= 0.0) __builtin_trap();
    for (std::size_t i = 1; i < trace.size(); ++i) {
      if (trace[i].t < trace[i - 1].t) __builtin_trap();
    }
  } catch (const ptrack::Error&) {
    // Rejecting malformed input is the expected behavior.
  }
  return 0;
}
