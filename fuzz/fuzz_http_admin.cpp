// Fuzz target: the admin plane's HTTP request parser and router.
//
// net::HttpRequestParser is the trust boundary of the telemetry listener —
// any local process (or anything that can reach the admin TCP port) can
// write arbitrary bytes at it. The parser must stay strictly bounded
// (request and target caps), terminal states must be sticky (more bytes
// after kDone/kError change nothing), and the router must total-function
// over any target string. None of it may crash, loop or allocate without
// bound regardless of input.
//
// The first input byte seeds the feed chunk size so the corpus exercises
// incremental parsing (request lines split at arbitrary byte boundaries),
// not just whole-buffer parsing.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "net/admin.hpp"
#include "net/http.hpp"

using namespace ptrack;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::size_t chunk = 1 + static_cast<std::size_t>(data[0] % 64) * 29;
  std::span<const std::uint8_t> rest(data + 1, size - 1);

  net::HttpRequestParser parser;
  net::HttpParseStatus status = net::HttpParseStatus::kNeedMore;
  std::size_t fed = 0;
  while (!rest.empty()) {
    const std::size_t n = rest.size() < chunk ? rest.size() : chunk;
    status = parser.feed(rest.subspan(0, n));
    fed += n;
    rest = rest.subspan(n);
    if (status != net::HttpParseStatus::kNeedMore) break;
  }

  if (status == net::HttpParseStatus::kNeedMore) {
    // The parser may only keep asking for more while under its cap.
    if (fed >= net::kMaxHttpRequestBytes) __builtin_trap();
    if (parser.done() || parser.failed()) __builtin_trap();
  }
  if (parser.done()) {
    const net::HttpRequest& req = parser.request();
    if (req.method.empty() || req.method.size() > 16) __builtin_trap();
    if (req.target.empty() || req.target.front() != '/') __builtin_trap();
    if (req.target.size() > net::kMaxHttpTargetBytes) __builtin_trap();
    if (req.minor_version != 0 && req.minor_version != 1) __builtin_trap();
    static_cast<void>(net::admin_route(req.target));
  }
  if (parser.failed() && parser.error() == nullptr) __builtin_trap();

  // Terminal states are sticky: feeding more bytes changes nothing.
  if (status != net::HttpParseStatus::kNeedMore) {
    const std::uint8_t more = 'x';
    const net::HttpParseStatus again = parser.feed({&more, 1});
    if (again != status) __builtin_trap();
  }

  // The router is a total function over arbitrary target strings.
  const std::string_view raw(reinterpret_cast<const char*>(data + 1),
                             size - 1);
  static_cast<void>(net::admin_route(raw));
  return 0;
}
