// Fuzz target: csv::parse on arbitrary bytes.
//
// The parser is the trust boundary for every on-disk artifact, so it must
// reject arbitrary garbage with ptrack::Error — never crash, loop, or hand
// non-finite/ragged data to a caller. Built two ways (see CMakeLists.txt):
// with libFuzzer under Clang, and with the replay driver everywhere else so
// the committed corpus runs as the deterministic `fuzz_regression` test.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/csv.hpp"
#include "common/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const ptrack::csv::Document doc = ptrack::csv::parse(in, "fuzz-input");
    // Surviving documents must honor the rectangularity postcondition.
    for (const auto& row : doc.rows) {
      if (row.size() != doc.header.size()) __builtin_trap();
    }
  } catch (const ptrack::Error&) {
    // Rejecting malformed input is the expected behavior.
  }
  return 0;
}
