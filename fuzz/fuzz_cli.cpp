// Fuzz target: cli::Args parsing over an arbitrary argv vector.
//
// The input bytes are split on newlines into argv tokens and parsed against
// a spec set covering every option flavor (boolean, valued, defaulted).
// Unknown flags, missing values and malformed numbers must surface as
// ptrack::Error; nothing may crash or read out of bounds.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // argv[0] is the program name; tokens follow, one per input line.
  std::vector<std::string> tokens = {"fuzz_cli"};
  std::string current;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(current);
      current.clear();
    } else if (c != '\0') {
      current += c;
    }
    if (tokens.size() > 64) break;  // bound argv growth, not a parse error
  }
  if (!current.empty()) tokens.push_back(current);

  std::vector<const char*> argv;
  argv.reserve(tokens.size());
  for (const std::string& t : tokens) argv.push_back(t.c_str());

  const std::vector<ptrack::cli::OptionSpec> specs = {
      {"input", "input path", "", false},
      {"scale", "scale factor", "1.0", false},
      {"count", "repeat count", "3", false},
      {"verbose", "chatty output", "", true},
  };
  try {
    const ptrack::cli::Args args(static_cast<int>(argv.size()), argv.data(),
                                 specs);
    if (args.has("scale")) (void)args.get_double("scale");
    if (args.has("count")) (void)args.get_int("count");
    if (args.has("input")) (void)args.get_string("input");
    (void)args.get_bool("verbose");
  } catch (const ptrack::Error&) {
    // Rejecting malformed command lines is the expected behavior.
  }
  return 0;
}
