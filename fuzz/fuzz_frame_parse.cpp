// Fuzz target: the ingest wire-protocol frame parser on arbitrary bytes.
//
// net::FrameDecoder is the trust boundary of ptrack_serve — every byte a
// device (or an attacker) sends crosses it before anything else runs. The
// decoder must stay strictly bounded: never allocate past its reservation,
// never produce a payload beyond kMaxPayloadBytes, poison permanently on
// the first malformed header, and never crash or loop regardless of input.
// The typed payload parsers behind it must reject garbage with `false`,
// never with UB.
//
// The first input byte seeds the feed chunk size so the corpus exercises
// the incremental resume paths (headers and payloads split at arbitrary
// byte boundaries), not just whole-buffer parsing.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "imu/sample.hpp"
#include "net/wire.hpp"

using namespace ptrack;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::size_t chunk = 1 + static_cast<std::size_t>(data[0] % 64) * 37;
  std::span<const std::uint8_t> rest(data + 1, size - 1);

  net::FrameDecoder decoder;
  std::vector<core::StepEvent> events;
  while (!rest.empty()) {
    const std::size_t n = rest.size() < chunk ? rest.size() : chunk;
    decoder.feed(rest.subspan(0, n));
    rest = rest.subspan(n);

    net::Frame frame;
    net::DecodeStatus status;
    while ((status = decoder.next(frame)) == net::DecodeStatus::kFrame) {
      if (frame.payload.size() > net::kMaxPayloadBytes) __builtin_trap();
      // Run every typed parser over the payload: each must either accept
      // within its documented bounds or reject with false — never crash.
      net::Hello hello;
      if (net::parse_hello(frame.payload, hello)) {
        if (frame.payload.size() != net::kHelloPayloadBytes)
          __builtin_trap();
      }
      net::HelloAck ack;
      static_cast<void>(net::parse_hello_ack(frame.payload, ack));
      net::SampleBlockView block;
      if (net::parse_samples(frame.payload, block)) {
        if (block.count == 0 || block.count > net::kMaxSamplesPerFrame) {
          __builtin_trap();
        }
        // Decoding the first and last sample must stay in bounds.
        static_cast<void>(net::sample_at(block, 0));
        static_cast<void>(net::sample_at(block, block.count - 1));
      }
      events.clear();
      if (net::parse_events(frame.payload, events)) {
        if (events.size() * net::kEventWireBytes + 4 != frame.payload.size())
          __builtin_trap();
      }
      net::WireError err;
      if (net::parse_error(frame.payload, err)) {
        if (err.detail.size() > net::kMaxErrorDetailBytes) __builtin_trap();
      }
      net::Drained drained;
      static_cast<void>(net::parse_drained(frame.payload, drained));
    }
    if (status == net::DecodeStatus::kError) {
      // Poison is permanent: the same typed error forever after, and no
      // more frames can ever be produced.
      if (decoder.error() == net::ErrorCode::kNone) __builtin_trap();
      const net::ErrorCode first = decoder.error();
      decoder.feed(rest.subspan(0, rest.size() < 16 ? rest.size() : 16));
      if (decoder.next(frame) != net::DecodeStatus::kError) __builtin_trap();
      if (decoder.error() != first) __builtin_trap();
      break;
    }
  }
  return 0;
}
